"""Chaos-fuzz campaigns over the (config × workload × schedule) space.

A fuzz **case** is a fully-serialised scenario: a small system
configuration, per-core traces, and optionally one deterministic
engine fault (:mod:`repro.robustness.faults`).  The generator is seeded
and biased toward the boundary regions where the paper's analysis is
most fragile — 1-set partitions, tiny associativity, ``m = M``
crossovers (private capacity vs partition capacity), ``n = 1``
degenerate sharing, permuted 1S-TDM orders, all-write conflict storms
that keep the PRB/PWB at full occupancy.

Every case runs with event recording on and is judged by the
differential oracle (:mod:`repro.robustness.oracle`).  Campaigns go
through the crash-tolerant :class:`~repro.robustness.runner.CampaignRunner`,
so fuzzing inherits per-case timeouts, quarantine, manifest resume and
``--jobs`` parallelism; the report is rebuilt from the manifest and is
therefore bit-identical for any job count and across resumes.

Dimensions intentionally **pinned** (the analytical bounds assume
them): round-robin PRB/PWB arbitration, in-slot self write-backs, an
unlimited sequencer QLT, hit/miss latencies that fit the slot.  Chaos
mode injects only slot-level faults (dropped / duplicated grants),
which fire deterministically and are always oracle-visible.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.common.errors import FuzzError, ReproError
from repro.common.fileio import Durability, persist_text
from repro.common.types import CoreId
from repro.cpu.private_stack import PrivateStackConfig
from repro.llc.partition import PartitionSpec
from repro.robustness.faults import FaultKind, FaultPlan, install_fault_plan
from repro.robustness.oracle import OracleReport, check_run
from repro.robustness.runner import CampaignRunner, RetryPolicy, Task
from repro.sim.config import SystemConfig
from repro.sim.simulator import Simulator
from repro.workloads.trace import MemoryTrace, TraceRecord

#: Schema version of serialised fuzz cases (repro artifacts embed it).
FUZZ_CASE_VERSION = 1

#: Cache line size used by every generated case.
FUZZ_LINE_SIZE = 64

#: Slot cap of generated cases: generous enough that no analytically
#: bounded case can legitimately hit it (a timeout under finite bounds
#: is an oracle violation, so this must never clip a healthy run).
FUZZ_MAX_SLOTS = 100_000

#: Chaos faults are restricted to the slot-level kinds: they fire
#: unconditionally (no LLC-state precondition) and are always visible
#: to the oracle's slot accounting.
CHAOS_FAULT_KINDS = (FaultKind.DUPLICATED_SLOT, FaultKind.DROPPED_SLOT)


# ----------------------------------------------------------------------
# Case description (fully JSON-serialisable)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzCase:
    """One self-contained scenario: config + traces + optional fault."""

    case_id: str
    seed: int
    #: JSON description of the :class:`SystemConfig` (see
    #: :func:`config_from_dict`).
    config: Dict[str, Any]
    #: Per-core trace lines in the text format of
    #: :mod:`repro.workloads.trace`.
    traces: Dict[CoreId, Tuple[str, ...]]
    #: Optional fault: ``{"kind", "slot", "core", "set_index", "block"}``.
    fault: Optional[Dict[str, Any]] = None

    @property
    def total_requests(self) -> int:
        """Trace records across all cores."""
        return sum(len(lines) for lines in self.traces.values())

    def to_dict(self) -> Dict[str, Any]:
        """JSON form (trace keys stringified for JSON object keys)."""
        return {
            "case_version": FUZZ_CASE_VERSION,
            "case_id": self.case_id,
            "seed": self.seed,
            "config": self.config,
            "traces": {
                str(core): list(lines)
                for core, lines in sorted(self.traces.items())
            },
            "fault": self.fault,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzCase":
        """Parse the JSON form back (inverse of :meth:`to_dict`)."""
        version = data.get("case_version")
        if version != FUZZ_CASE_VERSION:
            raise FuzzError(
                f"fuzz case has version {version!r}; this build reads "
                f"version {FUZZ_CASE_VERSION}"
            )
        try:
            return cls(
                case_id=str(data["case_id"]),
                seed=int(data["seed"]),
                config=dict(data["config"]),
                traces={
                    int(core): tuple(lines)
                    for core, lines in data["traces"].items()
                },
                fault=data.get("fault"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FuzzError(f"malformed fuzz case: {exc}") from exc


def config_from_dict(data: Dict[str, Any]) -> SystemConfig:
    """Build the :class:`SystemConfig` a case dict describes.

    Events are always recorded — the oracle replays them.
    """
    partitions = [
        PartitionSpec(
            name=part["name"],
            sets=list(part["sets"]),
            way_range=(part["way_range"][0], part["way_range"][1]),
            cores=list(part["cores"]),
            sequencer=bool(part.get("sequencer", False)),
        )
        for part in data["partitions"]
    ]
    order = data.get("schedule_order")
    return SystemConfig(
        num_cores=data["num_cores"],
        partitions=partitions,
        slot_width=data["slot_width"],
        schedule_order=tuple(order) if order is not None else None,
        line_size=FUZZ_LINE_SIZE,
        llc_sets=data["llc_sets"],
        llc_ways=data["llc_ways"],
        stack=PrivateStackConfig(
            l1_sets=0,
            l2_sets=data["l2_sets"],
            l2_ways=data["l2_ways"],
        ),
        max_slots=data.get("max_slots", FUZZ_MAX_SLOTS),
        record_events=True,
    )


def traces_from_case(case: FuzzCase) -> Dict[CoreId, MemoryTrace]:
    """Materialise the case's per-core traces."""
    return {
        core: MemoryTrace(
            [TraceRecord.from_line(line) for line in lines],
            name=f"{case.case_id}-core{core}",
        )
        for core, lines in case.traces.items()
    }


# ----------------------------------------------------------------------
# Boundary-biased generation
# ----------------------------------------------------------------------
def _partition_geometry(rng: random.Random) -> Tuple[int, int]:
    """(sets, ways) with heavy bias toward the 1-set boundary."""
    sets = rng.choice([1, 1, 1, 2, 4])
    ways = rng.choice([1, 1, 2, 4])
    return sets, ways


def _generate_partitions(
    rng: random.Random, num_cores: int
) -> Tuple[List[Dict[str, Any]], int, int]:
    """Carve partitions on disjoint set rows; returns (parts, S, W)."""
    if num_cores == 1:
        topology = "private"
    elif num_cores >= 3 and rng.random() < 0.25:
        topology = "mixed"
    else:
        topology = rng.choice(["shared", "shared", "shared", "private"])
    parts: List[Dict[str, Any]] = []
    next_row = 0
    max_ways = 1

    def add(name: str, cores: List[int], sequencer: bool) -> None:
        nonlocal next_row, max_ways
        sets, ways = _partition_geometry(rng)
        parts.append(
            {
                "name": name,
                "sets": list(range(next_row, next_row + sets)),
                "way_range": [0, ways],
                "cores": cores,
                "sequencer": sequencer,
            }
        )
        next_row += sets
        max_ways = max(max_ways, ways)

    if topology == "private":
        for core in range(num_cores):
            add(f"core{core}", [core], False)
    elif topology == "shared":
        add("shared", list(range(num_cores)), rng.random() < 0.5)
    else:  # mixed: one shared group plus private leftovers
        group = rng.randint(2, num_cores - 1)
        add("shared", list(range(group)), rng.random() < 0.5)
        for core in range(group, num_cores):
            add(f"core{core}", [core], False)
    return parts, next_row, max_ways


def _generate_trace(
    rng: random.Random, core: CoreId, slot_width: int
) -> Tuple[str, ...]:
    """One core's line-aligned stream over a tiny disjoint footprint."""
    length = rng.choice([0, 1, 2, 3, 4, 6, 8, 8, 12, 16, 20, 24])
    if length == 0:
        return ()
    footprint = rng.choice([1, 1, 2, 3, 4, 6, 8])
    write_bias = rng.choice([1.0, 1.0, 0.8, 0.5])
    thinky = rng.random() < 0.15
    base_block = 1 + core * 4096  # disjoint across cores (Section 5)
    records = []
    for _ in range(length):
        block = base_block + rng.randrange(footprint)
        access = "W" if rng.random() < write_bias else "R"
        think = rng.randint(0, 2 * slot_width) if thinky else 0
        line = f"{access} {block * FUZZ_LINE_SIZE:#x}"
        records.append(f"{line} +{think}" if think else line)
    return tuple(records)


def generate_case(
    rng: random.Random, index: int, fault_rate: float = 0.0
) -> FuzzCase:
    """Draw one boundary-biased case from ``rng``.

    The case's config is built (and therefore eagerly validated) before
    returning, so the generator can never hand the campaign an invalid
    scenario — a failing case always means the *engine* disagreed with
    the oracle, not that the generator drew garbage.
    """
    num_cores = rng.choice([1, 2, 2, 3, 4, 4])
    slot_width = rng.choice([45, 50, 50, 64])
    parts, llc_sets, llc_ways = _generate_partitions(rng, num_cores)
    order: Optional[List[int]] = None
    if num_cores > 1 and rng.random() < 0.3:
        order = list(range(num_cores))
        rng.shuffle(order)
    config_dict: Dict[str, Any] = {
        "num_cores": num_cores,
        "slot_width": slot_width,
        "llc_sets": llc_sets,
        "llc_ways": llc_ways,
        "l2_sets": rng.choice([1, 2, 4]),
        "l2_ways": rng.choice([1, 2]),
        "schedule_order": order,
        "max_slots": FUZZ_MAX_SLOTS,
        "partitions": parts,
    }
    traces = {
        core: _generate_trace(rng, core, slot_width)
        for core in range(num_cores)
    }
    fault: Optional[Dict[str, Any]] = None
    if fault_rate > 0 and rng.random() < fault_rate:
        kind = rng.choice(CHAOS_FAULT_KINDS)
        fault = {
            "kind": kind.value,
            "slot": rng.randint(0, 6),
            "core": None,
            "set_index": None,
            "block": None,
        }
    config_from_dict(config_dict)  # eager validation
    return FuzzCase(
        case_id=f"case-{index:05d}",
        seed=index,
        config=config_dict,
        traces=traces,
        fault=fault,
    )


# ----------------------------------------------------------------------
# Case execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzCaseResult:
    """Verdict of one executed case (JSON-able, crosses process pools)."""

    case_id: str
    passed: bool
    #: ``None`` when passed; ``"oracle:<checks>"`` or ``"error:<type>"``.
    signature: Optional[str]
    violations: Tuple[Dict[str, Any], ...]
    error: Optional[str]
    error_type: Optional[str]
    fault: Optional[Dict[str, Any]]
    fault_fired: bool
    total_requests: int
    completed_requests: int
    total_slots: int

    def to_payload(self) -> Dict[str, Any]:
        """Manifest payload: everything the campaign report needs."""
        return {
            "case_id": self.case_id,
            "passed": self.passed,
            "signature": self.signature,
            "violations": list(self.violations),
            "error": self.error,
            "error_type": self.error_type,
            "fault": self.fault,
            "fault_fired": self.fault_fired,
            "total_requests": self.total_requests,
            "completed_requests": self.completed_requests,
            "total_slots": self.total_slots,
        }


def failure_signature(
    error_type: Optional[str], oracle_report: Optional[OracleReport]
) -> Optional[str]:
    """Canonical failure label used for shrinking equivalence."""
    if error_type is not None:
        return f"error:{error_type}"
    if oracle_report is not None and not oracle_report.passed:
        return "oracle:" + "+".join(oracle_report.checks_failed())
    return None


def run_fuzz_case(case: FuzzCase) -> FuzzCaseResult:
    """Execute one case and judge it with the differential oracle.

    Engine model errors (:class:`~repro.common.errors.ReproError`) are
    themselves a failure verdict — a fuzz case must never crash the
    harness, only fail it.
    """
    config = config_from_dict(case.config)
    traces = traces_from_case(case)
    sim = Simulator(config, traces)
    injector = None
    if case.fault is not None:
        plan = FaultPlan.single(
            kind=FaultKind(case.fault["kind"]),
            slot=case.fault["slot"],
            core=case.fault.get("core"),
            set_index=case.fault.get("set_index"),
            block=case.fault.get("block"),
        )
        injector = install_fault_plan(sim.engine, plan)
    error = error_type = None
    oracle_report: Optional[OracleReport] = None
    completed = 0
    total_slots = 0
    try:
        report = sim.run()
    except ReproError as exc:
        error, error_type = str(exc), type(exc).__name__
    else:
        completed = len(report.requests)
        total_slots = report.total_slots
        # A clean (fault-free) case is re-runnable, which arms the
        # oracle's engine-differential check: every fuzz campaign then
        # exercises the fast engine against the reference loop.
        oracle_report = check_run(
            report, config, traces=traces if case.fault is None else None
        )
    signature = failure_signature(error_type, oracle_report)
    return FuzzCaseResult(
        case_id=case.case_id,
        passed=signature is None,
        signature=signature,
        violations=tuple(
            v.to_dict() for v in (oracle_report.violations if oracle_report else [])
        ),
        error=error,
        error_type=error_type,
        fault=case.fault,
        fault_fired=injector is not None and not injector.unfired(),
        total_requests=case.total_requests,
        completed_requests=completed,
        total_slots=total_slots,
    )


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------
@dataclass
class FuzzReport:
    """Deterministic outcome of one fuzz campaign.

    Built exclusively from manifest payloads (never from in-process
    timing), so a resumed campaign and any ``--jobs`` value produce the
    identical report.
    """

    budget: int
    seed: int
    fault_rate: float
    #: One payload per case, in case-id order.
    cases: List[Dict[str, Any]] = field(default_factory=list)
    #: Repro artifacts written for clean-case failures (relative names).
    artifacts: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[Dict[str, Any]]:
        """Failing cases with *no* injected fault — real findings."""
        return [
            c for c in self.cases if not c.get("passed") and not c.get("fault")
        ]

    @property
    def chaos_detected(self) -> int:
        """Injected faults that fired and were caught."""
        return sum(
            1
            for c in self.cases
            if c.get("fault") and c.get("fault_fired") and not c.get("passed")
        )

    @property
    def chaos_missed(self) -> List[str]:
        """Case ids whose injected fault fired yet went undetected."""
        return [
            c["case_id"]
            for c in self.cases
            if c.get("fault") and c.get("fault_fired") and c.get("passed")
        ]

    @property
    def chaos_unfired(self) -> int:
        """Injected faults whose slot the run never reached."""
        return sum(
            1
            for c in self.cases
            if c.get("fault") and not c.get("fault_fired")
        )

    @property
    def ok(self) -> bool:
        """No clean-case failure and no missed chaos fault."""
        return not self.failures and not self.chaos_missed

    def to_dict(self) -> Dict[str, Any]:
        """JSON form, stable for byte-level comparisons."""
        return {
            "fuzz_report_version": 1,
            "budget": self.budget,
            "seed": self.seed,
            "fault_rate": self.fault_rate,
            "summary": {
                "cases": len(self.cases),
                "failures": len(self.failures),
                "chaos_detected": self.chaos_detected,
                "chaos_missed": list(self.chaos_missed),
                "chaos_unfired": self.chaos_unfired,
                "ok": self.ok,
            },
            "artifacts": list(self.artifacts),
            "cases": list(self.cases),
        }

    def summary_lines(self) -> str:
        """Human-readable campaign summary."""
        lines = [
            f"fuzz: {len(self.cases)} case(s), seed {self.seed}, "
            f"{len(self.failures)} failure(s)"
        ]
        if self.fault_rate > 0:
            lines.append(
                f"chaos: {self.chaos_detected} detected, "
                f"{len(self.chaos_missed)} missed, "
                f"{self.chaos_unfired} unfired"
            )
        for case in self.failures:
            lines.append(f"FAIL {case['case_id']}: {case['signature']}")
        for case_id in self.chaos_missed:
            lines.append(f"MISSED {case_id}: injected fault went undetected")
        for artifact in self.artifacts:
            lines.append(f"repro artifact: {artifact}")
        return "\n".join(lines)


def _fuzz_payload(result: Any) -> Optional[Dict[str, Any]]:
    """Manifest payload extractor for fuzz tasks."""
    if isinstance(result, FuzzCaseResult):
        return result.to_payload()
    return None


def generate_cases(
    budget: int, seed: int, fault_rate: float = 0.0
) -> List[FuzzCase]:
    """The deterministic case list of a ``(budget, seed)`` campaign."""
    if budget < 1:
        raise FuzzError(f"fuzz budget must be >= 1, got {budget}")
    rng = random.Random(seed)
    return [generate_case(rng, index, fault_rate) for index in range(budget)]


def record_fuzz_metrics(registry: Any, report: FuzzReport) -> None:
    """Fill ``registry`` (a :class:`repro.obs.MetricsRegistry`) from a report."""
    for case in report.cases:
        status = "passed" if case.get("passed") else "failed"
        registry.counter("fuzz_cases_total", status=status).inc()
        if case.get("fault"):
            if not case.get("fault_fired"):
                result = "unfired"
            elif case.get("passed"):
                result = "missed"
            else:
                result = "detected"
            registry.counter("fuzz_chaos_total", result=result).inc()
        for violation in case.get("violations") or []:
            registry.counter(
                "fuzz_violations_total", check=violation.get("check")
            ).inc()


def run_fuzz(
    budget: int,
    seed: int = 0,
    out_dir: Optional[Union[str, Path]] = None,
    jobs: int = 1,
    fault_rate: float = 0.0,
    resume: bool = True,
    timeout: Optional[float] = None,
    shrink_failures: bool = True,
    max_shrink_evaluations: int = 300,
    progress: Optional[Callable[[str], None]] = None,
    registry: Optional[Any] = None,
    hung_after: Optional[float] = None,
    max_restarts: int = 0,
    rss_limit_bytes: Optional[int] = None,
) -> FuzzReport:
    """Run one fuzz campaign and return its deterministic report.

    With ``out_dir`` set, the campaign checkpoints to
    ``<out>/fuzz-manifest.json`` (resumable via ``resume=True``; use a
    fresh directory per ``(budget, seed, fault_rate)`` triple), writes
    the report to ``<out>/fuzz-report.json``, and — when
    ``shrink_failures`` is on — shrinks every clean-case failure to a
    minimal ``repro-<case>.json`` artifact replayable with
    ``repro-llc repro``.

    ``hung_after`` / ``max_restarts`` / ``rss_limit_bytes`` supervise
    the parallel workers (``jobs > 1``): silent workers are torn down
    and their case quarantined as hung, leaky ones as
    ``resource_exceeded`` (see :class:`repro.sim.parallel.TaskPool`).
    """
    cases = generate_cases(budget, seed, fault_rate)
    target = Path(out_dir) if out_dir is not None else None
    manifest_path = None
    if target is not None:
        target.mkdir(parents=True, exist_ok=True)
        manifest_path = target / "fuzz-manifest.json"
    runner = CampaignRunner(
        manifest_path=manifest_path,
        timeout=timeout,
        retry=RetryPolicy(max_attempts=1),
        payload_of=_fuzz_payload,
        jobs=jobs,
        hung_after=hung_after,
        max_restarts=max_restarts,
        rss_limit_bytes=rss_limit_bytes,
        registry=registry,
    )
    tasks: List[Task] = [
        (case.case_id, (lambda case=case: run_fuzz_case(case)))
        for case in cases
    ]
    campaign = runner.run(tasks, resume=resume, progress=progress)

    report = FuzzReport(budget=budget, seed=seed, fault_rate=fault_rate)
    manifest = campaign.manifest
    for case in cases:
        entry = manifest.tasks.get(case.case_id) if manifest else None
        if entry is None:  # checkpointing disabled: read the outcome
            outcome = next(
                o for o in campaign.outcomes if o.name == case.case_id
            )
            entry = {
                "status": outcome.status,
                "payload": _fuzz_payload(outcome.result),
                "error_type": outcome.error_type,
                "error": outcome.error,
            }
        if entry.get("status") == "done" and entry.get("payload"):
            # JSON round-trip so fresh and resumed campaigns agree on
            # types (tuples become lists either way).
            report.cases.append(json.loads(json.dumps(entry["payload"])))
        else:
            report.cases.append(
                {
                    "case_id": case.case_id,
                    "passed": False,
                    "signature": f"quarantined:{entry.get('error_type')}",
                    "violations": [],
                    "error": entry.get("error"),
                    "error_type": entry.get("error_type"),
                    "fault": case.fault,
                    "fault_fired": False,
                    "total_requests": case.total_requests,
                    "completed_requests": 0,
                    "total_slots": 0,
                }
            )

    if shrink_failures and target is not None and report.failures:
        from repro.robustness.shrink import shrink_case, write_artifact

        by_id = {case.case_id: case for case in cases}
        for failing in report.failures:
            case = by_id[failing["case_id"]]
            if failing["signature"].startswith("quarantined:"):
                continue  # harness-level failure; nothing to replay
            shrunk = shrink_case(
                case,
                signature=failing["signature"],
                max_evaluations=max_shrink_evaluations,
            )
            name = f"repro-{case.case_id}.json"
            write_artifact(target / name, shrunk)
            report.artifacts.append(name)
            if progress is not None:
                progress(
                    f"{case.case_id}: shrunk "
                    f"{shrunk.original_requests} -> "
                    f"{shrunk.minimized_requests} request(s) ({name})"
                )

    if registry is not None:
        record_fuzz_metrics(registry, report)
    if target is not None:
        persist_text(
            target / "fuzz-report.json",
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            site="fuzz-report",
            durability=Durability.ESSENTIAL,
        )
    return report
