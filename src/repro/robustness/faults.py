"""Deterministic fault injection: prove the invariant monitor fires.

A runtime monitor is only trustworthy if every failure mode it claims to
detect has been *demonstrated* to trip it.  This module injects model
faults — dropped TDM slots, spurious evictions, corrupted LLC entry
states, duplicated slot transactions, mutated traces — at precise slots
of a running simulation, via the engine's pre-slot hook.  Each fault
class maps to at least one invariant of
:mod:`repro.robustness.invariants` that catches it (the mapping is
enforced by ``tests/test_robustness_faults.py``):

================== ==========================================
fault kind          detecting invariant
================== ==========================================
``dropped-slot``    ``slot-sequence``
``duplicated-slot`` ``slot-accounting``
``spurious-evict``  ``inclusivity``
``corrupted-line``  ``llc-consistency``
``trace-mutation``  ``partition-routing`` / ``sequencer-fifo``
================== ==========================================

Fault plans are deterministic: a :class:`FaultSpec` names the slot (and,
where relevant, core / set / block) at which the corruption lands, so a
failing detection test replays exactly.  Injectors deliberately reach
into component internals — that is the point: they model hardware upsets
and software bugs that bypass the public API's own guards.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.types import BlockAddress, CoreId, SlotIndex
from repro.common.validation import require
from repro.workloads.trace import TraceRecord

if TYPE_CHECKING:
    from repro.sim.engine import SlotEngine


class FaultKind(enum.Enum):
    """The injectable fault classes."""

    #: The engine's slot counter jumps past a slot: the owner's TDM slot
    #: never happens (a lost bus grant).
    DROPPED_SLOT = "dropped-slot"
    #: The owner's slot transaction is performed twice within one slot
    #: (a duplicated bus grant — arbitration mutual exclusion broken).
    DUPLICATED_SLOT = "duplicated-slot"
    #: A VALID entry with private owners is freed without
    #: back-invalidation, leaving stale private copies (inclusivity
    #: broken).
    SPURIOUS_EVICTION = "spurious-eviction"
    #: A VALID entry's state field is flipped to FREE without clearing
    #: its block or indexes (a corrupted line state word).
    CORRUPTED_LINE_STATE = "corrupted-line-state"
    #: A core's remaining trace — including its in-flight request — is
    #: rewritten to a different block address (trace corruption).
    TRACE_MUTATION = "trace-mutation"


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what to inject, and exactly when and where.

    ``core``/``set_index``/``block`` narrow the target where the kind
    needs one: ``TRACE_MUTATION`` requires ``core`` and ``block``;
    ``SPURIOUS_EVICTION`` and ``CORRUPTED_LINE_STATE`` accept an
    optional ``set_index`` to pick the victim set (first suitable entry
    otherwise).
    """

    kind: FaultKind
    slot: SlotIndex
    core: Optional[CoreId] = None
    set_index: Optional[int] = None
    block: Optional[BlockAddress] = None

    def __post_init__(self) -> None:
        require(
            self.slot >= 0,
            f"fault slot must be non-negative, got {self.slot}",
            ConfigurationError,
        )
        if self.kind is FaultKind.TRACE_MUTATION:
            require(
                self.core is not None and self.block is not None,
                "TRACE_MUTATION needs both core and block",
                ConfigurationError,
            )

    def describe(self) -> str:
        """One-line human-readable form."""
        parts = [f"{self.kind.value}@slot{self.slot}"]
        if self.core is not None:
            parts.append(f"core={self.core}")
        if self.set_index is not None:
            parts.append(f"set={self.set_index}")
        if self.block is not None:
            parts.append(f"block={self.block:#x}")
        return " ".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults for one run."""

    faults: Tuple[FaultSpec, ...]

    @classmethod
    def single(
        cls,
        kind: FaultKind,
        slot: SlotIndex,
        core: Optional[CoreId] = None,
        set_index: Optional[int] = None,
        block: Optional[BlockAddress] = None,
    ) -> "FaultPlan":
        """A plan with one fault (the common test shape)."""
        return cls(
            faults=(
                FaultSpec(
                    kind=kind,
                    slot=slot,
                    core=core,
                    set_index=set_index,
                    block=block,
                ),
            )
        )

    def at_slot(self, slot: SlotIndex) -> List[FaultSpec]:
        """Faults scheduled for ``slot``."""
        return [spec for spec in self.faults if spec.slot == slot]


@dataclass(frozen=True)
class InjectedFault:
    """The record of one fault actually delivered."""

    spec: FaultSpec
    detail: str


class FaultInjector:
    """Delivers a :class:`FaultPlan` through the engine's pre-slot hook.

    Each fault fires once, at the first processed slot ``>= spec.slot``
    (a fault scheduled for a slot the engine never reaches — the run
    finished early — is reported by :meth:`unfired`).  Injection is
    intentionally invasive: injectors mutate private component state to
    model corruption the public API would reject.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.injected: List[InjectedFault] = []
        self._pending: List[FaultSpec] = sorted(
            plan.faults, key=lambda spec: spec.slot
        )

    def install(self, engine: "SlotEngine") -> "FaultInjector":
        """Register on ``engine``'s pre-slot hook."""
        engine.add_pre_slot_hook(self.on_slot)
        return self

    def unfired(self) -> List[FaultSpec]:
        """Faults whose slot was never reached."""
        return list(self._pending)

    def on_slot(self, engine: "SlotEngine", slot: SlotIndex) -> None:
        """Pre-slot hook: deliver every fault due at (or before) ``slot``."""
        while self._pending and self._pending[0].slot <= slot:
            spec = self._pending.pop(0)
            detail = self._inject(engine, spec)
            self.injected.append(InjectedFault(spec=spec, detail=detail))

    # ------------------------------------------------------------------
    # Injectors (one per FaultKind)
    # ------------------------------------------------------------------
    def _inject(self, engine: "SlotEngine", spec: FaultSpec) -> str:
        injector = {
            FaultKind.DROPPED_SLOT: self._inject_dropped_slot,
            FaultKind.DUPLICATED_SLOT: self._inject_duplicated_slot,
            FaultKind.SPURIOUS_EVICTION: self._inject_spurious_eviction,
            FaultKind.CORRUPTED_LINE_STATE: self._inject_corrupted_line,
            FaultKind.TRACE_MUTATION: self._inject_trace_mutation,
        }[spec.kind]
        return injector(engine, spec)

    def _inject_dropped_slot(self, engine: "SlotEngine", spec: FaultSpec) -> str:
        dropped = engine._slot
        # Jump the clock past this slot: its owner's bus grant is lost.
        engine._slot += 1
        return f"slot {dropped} dropped (owner never served)"

    def _inject_duplicated_slot(
        self, engine: "SlotEngine", spec: FaultSpec
    ) -> str:
        slot = engine._slot
        owner = engine.schedule.owner_of_slot(slot)
        slot_start = engine.schedule.slot_start(slot)
        # Serve the owner's slot here, on top of the engine's own
        # service of the same slot: two transactions in one slot.
        engine._do_slot(owner, slot_start)
        return f"slot {slot} served twice for core {owner}"

    def _pick_valid_entry(
        self, engine: "SlotEngine", spec: FaultSpec, need_owners: bool
    ):
        llc = engine.system.llc
        for set_row in range(llc.num_sets):
            if spec.set_index is not None and set_row != spec.set_index:
                continue
            for way in range(llc.num_ways):
                entry = llc.entry(set_row, way)
                if not entry.is_valid:
                    continue
                assert entry.block is not None
                if need_owners and not llc.directory.owners_of(entry.block):
                    continue
                return entry
        raise SimulationError(
            f"fault {spec.describe()}: no suitable VALID entry to corrupt "
            "(schedule the fault later, once the LLC has filled)"
        )

    def _inject_spurious_eviction(
        self, engine: "SlotEngine", spec: FaultSpec
    ) -> str:
        llc = engine.system.llc
        entry = self._pick_valid_entry(engine, spec, need_owners=True)
        block = entry.block
        assert block is not None
        owners = sorted(llc.directory.owners_of(block))
        # Evict without back-invalidating the private copies: the LLC
        # forgets the line while cores still cache it.
        del llc._valid_index[block]
        llc.directory.drop_block(block)
        entry.state = type(entry.state).FREE
        entry.block = None
        entry.dirty = False
        entry.pending_writers.clear()
        return (
            f"block {block:#x} spuriously evicted from set "
            f"{entry.set_index} way {entry.way}; stale owners {owners}"
        )

    def _inject_corrupted_line(
        self, engine: "SlotEngine", spec: FaultSpec
    ) -> str:
        entry = self._pick_valid_entry(engine, spec, need_owners=False)
        block = entry.block
        assert block is not None
        # Flip only the state word: block, dirty bit and the valid index
        # keep pointing at the entry — exactly what a corrupted state
        # encoding looks like.
        entry.state = type(entry.state).FREE
        return (
            f"entry at set {entry.set_index} way {entry.way} state "
            f"corrupted to FREE while holding block {block:#x}"
        )

    def _inject_trace_mutation(
        self, engine: "SlotEngine", spec: FaultSpec
    ) -> str:
        assert spec.core is not None and spec.block is not None
        core = engine.system.cores[spec.core]
        address = spec.block * engine.config.line_size
        remaining = len(core.trace) - core.position
        # Rewrite every not-yet-issued record to the target block…
        core.trace._records[core.position :] = [
            TraceRecord(address, record.access, record.compute_cycles)
            for record in core.trace._records[core.position :]
        ]
        # …and redirect the in-flight request, if any: the corruption
        # hits the address path, not just the stored trace.
        request = engine.system.prbs[spec.core].entry
        redirected = ""
        if request is not None:
            request.block = spec.block
            redirected = "; in-flight request redirected"
        return (
            f"core {spec.core}: {remaining} remaining trace record(s) "
            f"mutated to block {spec.block:#x}{redirected}"
        )


def install_fault_plan(engine: "SlotEngine", plan: FaultPlan) -> FaultInjector:
    """Attach ``plan`` to ``engine``; returns the injector for inspection."""
    return FaultInjector(plan).install(engine)
