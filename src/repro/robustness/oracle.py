"""Differential oracle: an independent referee for simulation runs.

The main engine is optimised around incremental state (indexes, folded
sets, per-slot dispatch).  This module deliberately is not: it rebuilds
what *must* have happened from first principles — the TDM schedule, a
dumb cell-by-cell LLC content model, FIFO sequencer queues and plain
per-request arithmetic — by replaying the run's recorded event stream,
and reports every place where the engine's story is inconsistent with
the paper's semantics or with its own report.  Dumb and O(n²)-ish on
purpose: the oracle's value is that it shares no code path (and
therefore no bug) with the machinery it checks.

Checks performed by :func:`check_run`:

``slot-accounting``
    Every bus slot in ``[0, total_slots)`` carries *exactly one* owner
    action (idle, request broadcast, or write-back) — a dropped TDM slot
    leaves a hole, a duplicated grant doubles up.
``slot-ownership``
    Every slot-owner action is attributed to the core the TDM schedule
    grants that slot to.
``slot-timing``
    Bus actions happen at their slot's start cycle; responses land
    within the slot (Lemma 4.4's completion rule).
``llc-contents``
    A replayed free/valid/pending cell model: hits must touch resident
    blocks, allocations must land in free cells, evictions and frees
    must match the lifecycle.  Spurious evictions and corrupted line
    states surface here when the engine reuses a cell the oracle still
    considers occupied.
``sequencer-fifo``
    Under SS, a free entry may only be claimed by the head of the set's
    FIFO (Section 4.5), replayed from registration events.
``request-accounting``
    Per-request (first broadcast, completion, attempts) re-derived from
    the event stream must equal the engine's :class:`RequestRecord`\\ s.
``response-latency``
    Each response follows a hit/allocation in the same slot, exactly
    ``llc_hit_latency``/``llc_miss_latency`` cycles after slot start.
``analytical-bounds``
    Every completed request's bus latency (first broadcast to response,
    re-derived from the event stream) is within its core's Theorem 4.7
    / Theorem 4.8 / private bound.  Theorem 4.8's formula is capacity-
    independent and budgets no write-backs of the core under analysis,
    while the engine model does charge a blocked core for back-
    invalidations forced on it mid-wait; SS windows therefore allow
    exactly the core's *own* write-backs observed inside the request
    window, one period each (see :func:`_check_bounds`).
``completion``
    A run whose every core has a finite analytical bound must not
    starve (Observation 2: 1S-TDM terminates).
``engine-differential``
    When the caller hands over the run's input traces, the whole
    simulation is re-run under the *other* engine (``fast`` ⇄
    ``reference``) and the two reports are compared at exporter-byte
    level — the fast engine's idle-slot jumps must be invisible in
    every exported number, and ``slot_usage``/``total_slots`` must
    match exactly.  Skipped when no traces are given (a fault-injected
    run is not re-runnable: hooks force the reference path, and the
    second run would not see the faults).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.analysis.verification import derive_core_bounds
from repro.common.errors import FuzzError, ReproError
from repro.common.types import CoreId, Cycle
from repro.sim.config import SystemConfig
from repro.sim.events import EventKind, SimEvent
from repro.sim.report import SimReport
from repro.workloads.trace import MemoryTrace

#: The three mutually-exclusive actions a slot's owner can take.  The
#: engine emits exactly one of them per processed slot, which is what
#: makes dropped/duplicated slots observable from the stream alone.
_OWNER_ACTIONS = (EventKind.SLOT_IDLE, EventKind.REQ_BROADCAST, EventKind.WB_SENT)

#: Kinds attributed to the slot's owner (the core holding the bus).
#: BACK_INVALIDATE carries the *invalidated* core and CORE_DONE fires
#: whenever a trace drains, so neither belongs here.
_OWNER_ATTRIBUTED = _OWNER_ACTIONS + (
    EventKind.LLC_HIT,
    EventKind.LLC_ALLOC,
    EventKind.EVICT_START,
    EventKind.SEQ_REGISTER,
    EventKind.SEQ_BLOCKED,
    EventKind.BLOCKED_FULL,
    EventKind.RESPONSE,
)

#: All checks :func:`check_run` performs, in report order.
ORACLE_CHECKS = (
    "slot-accounting",
    "slot-ownership",
    "slot-timing",
    "llc-contents",
    "sequencer-fifo",
    "request-accounting",
    "response-latency",
    "analytical-bounds",
    "completion",
    "engine-differential",
)


@dataclass(frozen=True)
class OracleViolation:
    """One disagreement between the oracle's replay and the engine."""

    check: str
    detail: str
    slot: Optional[int] = None
    core: Optional[CoreId] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (stable keys for repro artifacts)."""
        return {
            "check": self.check,
            "detail": self.detail,
            "slot": self.slot,
            "core": self.core,
        }


@dataclass
class OracleReport:
    """Everything one :func:`check_run` replay concluded."""

    violations: List[OracleViolation]
    events_checked: int
    requests_checked: int

    @property
    def passed(self) -> bool:
        """Whether the engine's run survived every oracle check."""
        return not self.violations

    def checks_failed(self) -> Tuple[str, ...]:
        """Distinct failing check names, sorted (the failure signature)."""
        return tuple(sorted({v.check for v in self.violations}))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary."""
        return {
            "passed": self.passed,
            "events_checked": self.events_checked,
            "requests_checked": self.requests_checked,
            "violations": [v.to_dict() for v in self.violations],
        }

    def summary(self) -> str:
        """One line per violation (empty string when passed)."""
        return "\n".join(
            f"{v.check}: {v.detail}"
            + (f" (slot {v.slot})" if v.slot is not None else "")
            for v in self.violations
        )


class _LlcModel:
    """The oracle's dumb cell model: free → valid → pending → free.

    Tracks only what the event stream lets it know; every transition the
    engine reports is checked against the lifecycle of Figures 2–4.
    """

    def __init__(self, out: List[OracleViolation]) -> None:
        self._out = out
        #: (set, way) → ("valid" | "pending", block)
        self.cells: Dict[Tuple[int, int], Tuple[str, int]] = {}
        #: block → (set, way) for VALID blocks
        self.resident: Dict[int, Tuple[int, int]] = {}
        #: block → (set, way) for PENDING_EVICT blocks
        self.pending: Dict[int, Tuple[int, int]] = {}

    def _flag(self, event: SimEvent, detail: str) -> None:
        self._out.append(
            OracleViolation(
                check="llc-contents",
                detail=detail,
                slot=event.slot,
                core=event.core,
            )
        )

    def on_alloc(self, event: SimEvent) -> None:
        cell = (event.set_index, event.way)
        block = event.block
        occupant = self.cells.get(cell)
        if occupant is not None:
            self._flag(
                event,
                f"allocation of block {block:#x} into set {cell[0]} way "
                f"{cell[1]} which still holds {occupant[0]} block "
                f"{occupant[1]:#x}",
            )
        if block in self.resident:
            self._flag(event, f"block {block:#x} allocated while already VALID")
        if block in self.pending:
            self._flag(
                event, f"block {block:#x} allocated while PENDING_EVICT"
            )
        self.cells[cell] = ("valid", block)
        self.resident[block] = cell

    def on_hit(self, event: SimEvent) -> None:
        cell = (event.set_index, event.way)
        block = event.block
        if self.resident.get(block) != cell:
            where = self.resident.get(block)
            self._flag(
                event,
                f"hit on block {block:#x} at set {cell[0]} way {cell[1]} "
                f"but the oracle has it "
                + (f"at set {where[0]} way {where[1]}" if where else "not resident"),
            )

    def on_evict_start(self, event: SimEvent) -> None:
        cell = (event.set_index, event.way)
        block = event.block
        if self.resident.get(block) != cell:
            self._flag(
                event,
                f"eviction of block {block:#x} from set {cell[0]} way "
                f"{cell[1]} which the oracle does not have resident there",
            )
        self.resident.pop(block, None)
        self.cells[cell] = ("pending", block)
        self.pending[block] = cell

    def on_entry_freed(self, event: SimEvent) -> None:
        cell = (event.set_index, event.way)
        occupant = self.cells.get(cell)
        if occupant is None or occupant[0] != "pending":
            self._flag(
                event,
                f"set {cell[0]} way {cell[1]} freed but the oracle has it "
                + ("free" if occupant is None else f"{occupant[0]}"),
            )
        if occupant is not None:
            self.pending.pop(occupant[1], None)
        self.cells.pop(cell, None)

    def on_blocked_pending(self, event: SimEvent) -> None:
        if event.block not in self.pending:
            self._flag(
                event,
                f"core {event.core} blocked on own block {event.block:#x} "
                "pending eviction, but the oracle has no such pending entry",
            )


def _check_sequenced(
    events: List[SimEvent],
    config: SystemConfig,
    out: List[OracleViolation],
) -> None:
    """Replay the per-set FIFOs and enforce head-only claims."""
    if config.sequencer_max_queues is not None:
        # Overflowed registrations legitimately fall back to
        # best-effort handling; FIFO order is not promised then.
        return
    partition_map = config.build_partition_map()
    sequenced: Set[CoreId] = {
        core
        for core in range(config.num_cores)
        if partition_map.partition_of(core).sequencer
    }
    if not sequenced:
        return
    queues: Dict[int, List[CoreId]] = {}

    def remove_everywhere(core: CoreId) -> None:
        for queue in queues.values():
            if core in queue:
                queue.remove(core)

    for event in events:
        core = event.core
        if core not in sequenced:
            continue
        if event.kind is EventKind.SEQ_REGISTER or (
            event.kind is EventKind.BLOCKED_FULL
            and event.detail == "own-block-pending-evict"
        ):
            queue = queues.setdefault(event.set_index, [])
            if core not in queue:
                queue.append(core)
        elif event.kind is EventKind.SEQ_BLOCKED:
            queue = queues.get(event.set_index, [])
            if queue and queue[0] == core:
                out.append(
                    OracleViolation(
                        check="sequencer-fifo",
                        detail=(
                            f"core {core} reported sequencer-blocked on set "
                            f"{event.set_index} although the oracle has it "
                            "at the head of the FIFO"
                        ),
                        slot=event.slot,
                        core=core,
                    )
                )
        elif event.kind is EventKind.LLC_ALLOC:
            queue = queues.get(event.set_index, [])
            if core in queue and queue[0] != core:
                out.append(
                    OracleViolation(
                        check="sequencer-fifo",
                        detail=(
                            f"core {core} claimed a free entry of set "
                            f"{event.set_index} ahead of FIFO head "
                            f"{queue[0]} (queue {queue})"
                        ),
                        slot=event.slot,
                        core=core,
                    )
                )
            remove_everywhere(core)
        elif event.kind is EventKind.LLC_HIT:
            # A sharer fetched the line while this core was queued: the
            # engine cancels the registration.
            remove_everywhere(core)


def _check_requests(
    events: List[SimEvent],
    report: SimReport,
    config: SystemConfig,
    out: List[OracleViolation],
) -> int:
    """Re-derive per-request timing from the stream; compare records."""
    derived: Dict[CoreId, List[Tuple[int, int, int]]] = {}
    in_flight: Dict[CoreId, Tuple[int, int]] = {}  # first broadcast, attempts
    service: Dict[CoreId, Tuple[EventKind, int, int]] = {}  # kind, slot, cycle
    schedule = config.build_schedule()
    for event in events:
        core = event.core
        if event.kind is EventKind.REQ_BROADCAST:
            first, attempts = in_flight.get(core, (event.cycle, 0))
            in_flight[core] = (first, attempts + 1)
        elif event.kind in (EventKind.LLC_HIT, EventKind.LLC_ALLOC):
            service[core] = (event.kind, event.slot, event.cycle)
        elif event.kind is EventKind.RESPONSE:
            if core not in in_flight:
                out.append(
                    OracleViolation(
                        check="request-accounting",
                        detail=f"response for core {core} without a broadcast",
                        slot=event.slot,
                        core=core,
                    )
                )
            else:
                first, attempts = in_flight.pop(core)
                derived.setdefault(core, []).append(
                    (first, event.cycle, attempts)
                )
            served = service.pop(core, None)
            if served is None or served[1] != event.slot:
                out.append(
                    OracleViolation(
                        check="response-latency",
                        detail=(
                            f"response for core {core} without a hit or "
                            "allocation in the same slot"
                        ),
                        slot=event.slot,
                        core=core,
                    )
                )
            else:
                kind, slot, cycle = served
                latency = (
                    config.llc_hit_latency
                    if kind is EventKind.LLC_HIT
                    else config.llc_miss_latency
                )
                expected = schedule.slot_start(slot) + latency
                if event.cycle != expected:
                    out.append(
                        OracleViolation(
                            check="response-latency",
                            detail=(
                                f"core {core} response at cycle {event.cycle}"
                                f", expected {expected} ({kind.value} + "
                                f"{latency})"
                            ),
                            slot=event.slot,
                            core=core,
                        )
                    )

    checked = 0
    for core in range(config.num_cores):
        recorded = [
            (r.first_on_bus_at, r.completed_at, r.bus_attempts)
            for r in report.requests
            if r.core == core
        ]
        replayed = derived.get(core, [])
        checked += len(recorded)
        if recorded != replayed:
            out.append(
                OracleViolation(
                    check="request-accounting",
                    detail=(
                        f"core {core}: report records {len(recorded)} "
                        f"request(s) {recorded[:4]}… but the event stream "
                        f"replays {len(replayed)}: {replayed[:4]}…"
                        if len(recorded) > 4 or len(replayed) > 4
                        else f"core {core}: report records {recorded} but "
                        f"the event stream replays {replayed}"
                    ),
                    core=core,
                )
            )
    return checked


def _check_bounds(
    events: List[SimEvent],
    config: SystemConfig,
    out: List[OracleViolation],
) -> None:
    """Check every request window against its core's analytical bound.

    Latency is measured from the request's first broadcast to its
    response, straight from the event stream (``request-accounting``
    separately asserts this equals the engine's records).  Theorem 4.7
    and the private bound are checked as-is — both already budget the
    core's own write-backs (the ``(m + 1)`` factor, resp. one of the
    ``2N + 1`` periods).  Theorem 4.8 is capacity-independent by design
    and budgets none, but the engine model charges a blocked core for
    back-invalidations forced on it mid-wait (each consumes one of its
    slots, i.e. one period of progress towards its own request).  SS
    windows therefore allow exactly the core's own write-backs observed
    *inside the window*, one period (``N·SW``) each.  The allowance is
    dynamic and minimal: genuine interference bugs exceed the bound
    beyond the core's own obligations and still flag (the FIFO-PWB
    priority bug did exactly that under Theorem 4.7's unmodified
    check).
    """
    bounds = derive_core_bounds(config)
    period = config.num_cores * config.slot_width
    #: core -> [first broadcast cycle, own write-backs inside the window]
    windows: Dict[CoreId, List[int]] = {}
    for event in events:
        core = event.core
        if core is None:
            continue
        if event.kind is EventKind.REQ_BROADCAST:
            windows.setdefault(core, [event.cycle, 0])
        elif event.kind is EventKind.WB_SENT and core in windows:
            windows[core][1] += 1
        elif event.kind is EventKind.RESPONSE and core in windows:
            start, own_writebacks = windows.pop(core)
            bound = bounds[core]
            if bound.cycles is None:
                continue
            latency = event.cycle - start
            allowance = (
                own_writebacks * period if bound.rule == "theorem-4.8" else 0
            )
            if latency > bound.cycles + allowance:
                out.append(
                    OracleViolation(
                        check="analytical-bounds",
                        detail=(
                            f"core {core} block {event.block:#x}: bus "
                            f"latency {latency} exceeds the {bound.rule} "
                            f"bound of {bound.cycles} cycles"
                            + (
                                f" plus {own_writebacks} own write-back "
                                f"period(s) ({allowance} cycles)"
                                if allowance
                                else ""
                            )
                        ),
                        core=core,
                    )
                )


def _check_engine_differential(
    report: SimReport,
    config: SystemConfig,
    traces: Mapping[CoreId, MemoryTrace],
    start_cycles: Optional[Mapping[CoreId, Cycle]],
    out: List[OracleViolation],
) -> None:
    """Re-run the whole simulation under the fast engine and diff reports.

    The recorded run replays events (recording forces the engine's
    reference per-slot loop), so re-running the same inputs with
    ``engine="fast"`` and all observers off is a true differential:
    the idle-slot fast-forward path against the slot-by-slot loop.
    The comparison is at exporter-byte level — the exact JSON bytes
    :func:`repro.sim.export.report_to_dict` serialises to — plus the
    ``slot_usage`` and ``total_slots`` the exporter leaves out.  A
    crash in the re-run (:class:`~repro.common.errors.ReproError`) is
    itself a violation: the fast engine must accept every input the
    reference engine accepts.
    """
    # Imported lazily: the simulator facade pulls in the robustness
    # invariant monitor, which would cycle back into this package.
    from repro.sim.export import report_to_dict
    from repro.sim.simulator import Simulator

    fast_config = dataclasses.replace(
        config,
        engine="fast",
        record_events=False,
        record_metrics=False,
        checked=False,
    )
    try:
        fast_report = Simulator(fast_config, traces, start_cycles).run()
    except ReproError as exc:
        out.append(
            OracleViolation(
                check="engine-differential",
                detail=f"fast-engine re-run crashed: {type(exc).__name__}: {exc}",
            )
        )
        return
    reference_bytes = json.dumps(report_to_dict(report), sort_keys=True)
    fast_bytes = json.dumps(report_to_dict(fast_report), sort_keys=True)
    if reference_bytes != fast_bytes:
        out.append(
            OracleViolation(
                check="engine-differential",
                detail=(
                    "fast-engine report diverges from the reference run at "
                    f"exporter-byte level: reference {reference_bytes[:160]}… "
                    f"vs fast {fast_bytes[:160]}…"
                    if len(reference_bytes) > 160 or len(fast_bytes) > 160
                    else "fast-engine report diverges from the reference "
                    f"run: reference {reference_bytes} vs fast {fast_bytes}"
                ),
            )
        )
    if fast_report.slot_usage != report.slot_usage:
        out.append(
            OracleViolation(
                check="engine-differential",
                detail=(
                    "fast-engine slot_usage diverges from the reference "
                    f"run: reference {report.slot_usage} vs fast "
                    f"{fast_report.slot_usage}"
                ),
            )
        )
    if fast_report.total_slots != report.total_slots:
        out.append(
            OracleViolation(
                check="engine-differential",
                detail=(
                    f"fast-engine ran {fast_report.total_slots} slot(s), "
                    f"reference ran {report.total_slots}"
                ),
            )
        )


def check_run(
    report: SimReport,
    config: SystemConfig,
    traces: Optional[Mapping[CoreId, MemoryTrace]] = None,
    start_cycles: Optional[Mapping[CoreId, Cycle]] = None,
) -> OracleReport:
    """Replay ``report``'s event stream against the reference model.

    The run must have been recorded with ``record_events=True`` — the
    oracle has nothing to replay otherwise and raises
    :class:`~repro.common.errors.FuzzError`.

    When ``traces`` is given (the exact input traces ``report`` was run
    with, plus ``start_cycles`` if the run used them), the
    ``engine-differential`` check additionally re-runs the simulation
    under the fast engine and diffs the two reports byte-for-byte; see
    :func:`_check_engine_differential`.  Leave ``traces`` as ``None``
    for runs that are not cleanly re-runnable (e.g. fault injection).
    """
    if not report.events.enabled and report.total_slots > 0:
        raise FuzzError(
            "the oracle replays the event stream; run the simulation with "
            "record_events=True"
        )
    events = report.events.all()
    out: List[OracleViolation] = []
    schedule = config.build_schedule()

    # -- slot accounting / ownership / timing --------------------------
    actions_per_slot: Dict[int, int] = {}
    for event in events:
        if event.kind in _OWNER_ACTIONS:
            actions_per_slot[event.slot] = actions_per_slot.get(event.slot, 0) + 1
        if event.kind in _OWNER_ATTRIBUTED:
            owner = schedule.owner_of_slot(event.slot)
            if event.core != owner:
                out.append(
                    OracleViolation(
                        check="slot-ownership",
                        detail=(
                            f"{event.kind.value} by core {event.core} in "
                            f"slot {event.slot}, owned by core {owner}"
                        ),
                        slot=event.slot,
                        core=event.core,
                    )
                )
        if event.kind is EventKind.CORE_DONE:
            continue
        slot_start = schedule.slot_start(event.slot)
        if event.kind is EventKind.RESPONSE:
            if not slot_start <= event.cycle <= schedule.slot_end(event.slot):
                out.append(
                    OracleViolation(
                        check="slot-timing",
                        detail=(
                            f"response at cycle {event.cycle} outside slot "
                            f"{event.slot} [{slot_start}, "
                            f"{schedule.slot_end(event.slot)}]"
                        ),
                        slot=event.slot,
                        core=event.core,
                    )
                )
        elif event.cycle != slot_start:
            out.append(
                OracleViolation(
                    check="slot-timing",
                    detail=(
                        f"{event.kind.value} at cycle {event.cycle}, but "
                        f"slot {event.slot} starts at {slot_start}"
                    ),
                    slot=event.slot,
                    core=event.core,
                )
            )
    for slot in range(report.total_slots):
        count = actions_per_slot.get(slot, 0)
        if count != 1:
            out.append(
                OracleViolation(
                    check="slot-accounting",
                    detail=(
                        f"slot {slot} carries {count} owner action(s); the "
                        "TDM bus grants exactly one transaction per slot"
                        + (" (dropped slot?)" if count == 0 else
                           " (duplicated grant?)")
                    ),
                    slot=slot,
                )
            )
    for slot in actions_per_slot:
        if slot >= report.total_slots:
            out.append(
                OracleViolation(
                    check="slot-accounting",
                    detail=(
                        f"owner action in slot {slot} beyond the reported "
                        f"{report.total_slots} total slots"
                    ),
                    slot=slot,
                )
            )

    # -- LLC content model ---------------------------------------------
    model = _LlcModel(out)
    for event in events:
        if event.kind is EventKind.LLC_ALLOC:
            model.on_alloc(event)
        elif event.kind is EventKind.LLC_HIT:
            model.on_hit(event)
        elif event.kind is EventKind.EVICT_START:
            model.on_evict_start(event)
        elif event.kind is EventKind.ENTRY_FREED:
            model.on_entry_freed(event)
        elif (
            event.kind is EventKind.BLOCKED_FULL
            and event.detail == "own-block-pending-evict"
        ):
            model.on_blocked_pending(event)

    # -- sequencer FIFO -------------------------------------------------
    _check_sequenced(events, config, out)

    # -- per-request accounting and response latency --------------------
    requests_checked = _check_requests(events, report, config, out)

    # -- analytical bounds (Theorems 4.7 / 4.8 / private) ---------------
    _check_bounds(events, config, out)

    # -- fast vs reference engine differential --------------------------
    if traces is not None:
        _check_engine_differential(report, config, traces, start_cycles, out)

    # -- completion under finite bounds ---------------------------------
    if report.timed_out:
        bounds = derive_core_bounds(config)
        if all(bound.cycles is not None for bound in bounds.values()):
            out.append(
                OracleViolation(
                    check="completion",
                    detail=(
                        "run timed out although every core has a finite "
                        f"analytical bound (starved cores: "
                        f"{report.starved_cores()})"
                    ),
                )
            )

    return OracleReport(
        violations=out,
        events_checked=len(events),
        requests_checked=requests_checked,
    )
