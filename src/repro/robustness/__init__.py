"""Robustness layer: invariant monitoring, fault injection, crash tolerance.

Three pieces, one goal — trust the numbers the simulator reports:

* :mod:`repro.robustness.invariants` — a per-slot runtime monitor that
  checks model invariants (inclusivity, TDM slot accounting, sequencer
  FIFO discipline, analytical latency bounds, …) while a simulation
  runs; enabled with ``SystemConfig(checked=True)``.
* :mod:`repro.robustness.faults` — deterministic fault injection that
  *proves* the monitor fires: every fault class maps to an invariant
  that catches it.
* :mod:`repro.robustness.iofault` — deterministic *filesystem* fault
  injection (ENOSPC, EIO, short writes, fsync/rename failure, read
  corruption, …) through the instrumented I/O seam of
  :mod:`repro.common.fileio`, proving every persistence layer's
  durability-class response (retry / loud failure / circuit-breaker
  degradation).
* :mod:`repro.robustness.runner` — a crash-tolerant campaign runner
  (timeouts, bounded retry, quarantine, manifest-based resume) wrapping
  the experiment suite and seed sweeps.
* :mod:`repro.robustness.oracle` — a differential oracle: a dumb,
  independently-written replay of the event stream that re-derives
  slot ownership, LLC contents, sequencer FIFO order and per-request
  latencies, plus the analytical Theorem 4.7/4.8 bound check.
* :mod:`repro.robustness.fuzz` — seeded, boundary-biased chaos-fuzz
  campaigns over the (config × workload × schedule) space, judged by
  the oracle and driven through the campaign runner.
* :mod:`repro.robustness.shrink` — a delta-debugging minimizer that
  reduces any failing fuzz case to a self-contained JSON repro
  artifact (``repro-llc repro FILE`` replays it).
"""

from repro.robustness.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    install_fault_plan,
)
from repro.robustness.iofault import (
    InjectedIoError,
    IoFaultKind,
    IoFaultPlan,
    IoFaultSpec,
    IoOperationRecorder,
    clear_io_faults,
    install_io_faults,
    io_faults,
    parse_io_fault_specs,
    record_io_operations,
)
from repro.robustness.invariants import (
    InclusivityInvariant,
    Invariant,
    InvariantMonitor,
    LatencyBoundInvariant,
    LlcConsistencyInvariant,
    OneOutstandingRequestInvariant,
    PartitionRoutingInvariant,
    PendingEvictAccountingInvariant,
    SequencerConsistencyInvariant,
    SlotAccountingInvariant,
    SlotSequenceInvariant,
    standard_invariants,
)
from repro.robustness.fuzz import (
    FuzzCase,
    FuzzCaseResult,
    FuzzReport,
    generate_case,
    generate_cases,
    run_fuzz,
    run_fuzz_case,
)
from repro.robustness.oracle import (
    ORACLE_CHECKS,
    OracleReport,
    OracleViolation,
    check_run,
)
from repro.robustness.runner import (
    CampaignResult,
    CampaignRunner,
    RetryPolicy,
    RobustSweepResult,
    RunManifest,
    TaskOutcome,
    run_all_robust,
    sweep_seeds_robust,
)
from repro.robustness.shrink import (
    ReplayResult,
    ShrinkResult,
    load_artifact,
    replay_artifact,
    shrink_case,
    write_artifact,
)

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "install_fault_plan",
    "InjectedIoError",
    "IoFaultKind",
    "IoFaultPlan",
    "IoFaultSpec",
    "IoOperationRecorder",
    "clear_io_faults",
    "install_io_faults",
    "io_faults",
    "parse_io_fault_specs",
    "record_io_operations",
    "InclusivityInvariant",
    "Invariant",
    "InvariantMonitor",
    "LatencyBoundInvariant",
    "LlcConsistencyInvariant",
    "OneOutstandingRequestInvariant",
    "PartitionRoutingInvariant",
    "PendingEvictAccountingInvariant",
    "SequencerConsistencyInvariant",
    "SlotAccountingInvariant",
    "SlotSequenceInvariant",
    "standard_invariants",
    "CampaignResult",
    "CampaignRunner",
    "RetryPolicy",
    "RobustSweepResult",
    "RunManifest",
    "TaskOutcome",
    "run_all_robust",
    "sweep_seeds_robust",
    "ORACLE_CHECKS",
    "OracleReport",
    "OracleViolation",
    "check_run",
    "FuzzCase",
    "FuzzCaseResult",
    "FuzzReport",
    "generate_case",
    "generate_cases",
    "run_fuzz",
    "run_fuzz_case",
    "ReplayResult",
    "ShrinkResult",
    "load_artifact",
    "replay_artifact",
    "shrink_case",
    "write_artifact",
]
