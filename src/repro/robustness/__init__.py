"""Robustness layer: invariant monitoring, fault injection, crash tolerance.

Three pieces, one goal — trust the numbers the simulator reports:

* :mod:`repro.robustness.invariants` — a per-slot runtime monitor that
  checks model invariants (inclusivity, TDM slot accounting, sequencer
  FIFO discipline, analytical latency bounds, …) while a simulation
  runs; enabled with ``SystemConfig(checked=True)``.
* :mod:`repro.robustness.faults` — deterministic fault injection that
  *proves* the monitor fires: every fault class maps to an invariant
  that catches it.
* :mod:`repro.robustness.runner` — a crash-tolerant campaign runner
  (timeouts, bounded retry, quarantine, manifest-based resume) wrapping
  the experiment suite and seed sweeps.
"""

from repro.robustness.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    install_fault_plan,
)
from repro.robustness.invariants import (
    InclusivityInvariant,
    Invariant,
    InvariantMonitor,
    LatencyBoundInvariant,
    LlcConsistencyInvariant,
    OneOutstandingRequestInvariant,
    PartitionRoutingInvariant,
    PendingEvictAccountingInvariant,
    SequencerConsistencyInvariant,
    SlotAccountingInvariant,
    SlotSequenceInvariant,
    standard_invariants,
)
from repro.robustness.runner import (
    CampaignResult,
    CampaignRunner,
    RetryPolicy,
    RobustSweepResult,
    RunManifest,
    TaskOutcome,
    run_all_robust,
    sweep_seeds_robust,
)

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "install_fault_plan",
    "InclusivityInvariant",
    "Invariant",
    "InvariantMonitor",
    "LatencyBoundInvariant",
    "LlcConsistencyInvariant",
    "OneOutstandingRequestInvariant",
    "PartitionRoutingInvariant",
    "PendingEvictAccountingInvariant",
    "SequencerConsistencyInvariant",
    "SlotAccountingInvariant",
    "SlotSequenceInvariant",
    "standard_invariants",
    "CampaignResult",
    "CampaignRunner",
    "RetryPolicy",
    "RobustSweepResult",
    "RunManifest",
    "TaskOutcome",
    "run_all_robust",
    "sweep_seeds_robust",
]
