"""Deterministic filesystem fault injection for the persistence seam.

PR 1 proved the *model* monitor: every injected model fault trips an
invariant.  This module applies the same discipline to the *storage*
substrate: every way the filesystem can fail — disk full, media error,
interrupted syscall, partial write, fsync refusal, rename refusal,
silent read corruption, permission denial — is injectable at a precise
point of a run, and every persistence layer's response (retry, loud
:class:`~repro.common.errors.PersistenceError`, circuit-breaker
degradation, integrity-check rejection) is demonstrated by tests, not
asserted in prose.

Faults are injected through the single instrumented I/O seam in
:mod:`repro.common.fileio`: every primitive operation (open / write /
fsync / replace / fsync-dir / read) carries a *site* label naming the
store that issued it ("manifest", "result-cache", "checkpoint",
"metrics-export", ...), and an installed :class:`IoFaultPlan` decides
per operation whether to let it through, fail it, truncate it or
corrupt it.  Plans are deterministic: a :class:`IoFaultSpec` fires at
the N-th operation matching its filters (optionally for a bounded
count), so a failing test replays exactly from its spec strings and
seed.

Spec strings (the ``--io-fault`` CLI grammar)::

    enospc                      first matching op fails with ENOSPC
    eio@7                       7th matching op fails with EIO
    eintr@3x2                   ops 3 and 4 fail with EINTR
    enospc@2x*                  every op from the 2nd on fails
    fsync@1,site=manifest       first manifest fsync fails
    short-write@1,site=result-cache
    corrupt-read@1,path=*.json  first read of a *.json file corrupted
    eacces@1,op=open            first open denied
"""

from __future__ import annotations

import contextlib
import enum
import errno as _errno
import fnmatch
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.fileio import (
    IO_OPS,
    IoFaultAction,
    IoOperation,
    clear_io_fault_hook,
    count_io,
    install_io_fault_hook,
)
from repro.common.validation import require


class InjectedIoError(OSError):
    """An injected I/O failure (distinguishable from real ones in tests)."""


class IoFaultKind(enum.Enum):
    """The injectable filesystem fault classes."""

    #: ``ENOSPC`` — no space left on device.  Default target: any
    #: data-bearing step of a write (write / fsync / replace).
    ENOSPC = "enospc"
    #: ``EIO`` — generic I/O (media) error.  Default target: any op.
    EIO = "eio"
    #: ``EINTR`` — interrupted syscall; the canonical *transient* fault
    #: that a single bounded retry absorbs.  Default target: write.
    EINTR = "eintr"
    #: ``EACCES`` — permission denied.  Default target: open.
    EACCES = "eacces"
    #: A short/partial write: half the text reaches the file, then the
    #: write fails with ENOSPC.  The crash-consistent write discipline
    #: must leave no torn target and no leaked ``.tmp``.
    SHORT_WRITE = "short-write"
    #: ``fsync`` on the staged temp file fails (EIO).
    FSYNC = "fsync"
    #: The final ``os.replace`` rename fails (EIO).
    RENAME = "rename"
    #: Silent read corruption: the read succeeds but returns flipped or
    #: truncated bytes.  Integrity-checked readers (result cache,
    #: checkpoints) must reject the document, never act on it.
    READ_CORRUPTION = "corrupt-read"


#: Per-kind default operation filters (None = any operation).
_DEFAULT_OPS = {
    IoFaultKind.ENOSPC: ("write", "fsync", "replace"),
    IoFaultKind.EIO: None,
    IoFaultKind.EINTR: ("write",),
    IoFaultKind.EACCES: ("open",),
    IoFaultKind.SHORT_WRITE: ("write",),
    IoFaultKind.FSYNC: ("fsync",),
    IoFaultKind.RENAME: ("replace",),
    IoFaultKind.READ_CORRUPTION: ("read",),
}

_KIND_ERRNO = {
    IoFaultKind.ENOSPC: _errno.ENOSPC,
    IoFaultKind.EIO: _errno.EIO,
    IoFaultKind.EINTR: _errno.EINTR,
    IoFaultKind.EACCES: _errno.EACCES,
    IoFaultKind.SHORT_WRITE: _errno.ENOSPC,
    IoFaultKind.FSYNC: _errno.EIO,
    IoFaultKind.RENAME: _errno.EIO,
}


def _injected_error(kind: IoFaultKind, operation: IoOperation) -> InjectedIoError:
    code = _KIND_ERRNO[kind]
    return InjectedIoError(
        code,
        f"injected {kind.value} at {operation.describe()}",
    )


@dataclass(frozen=True)
class IoFaultSpec:
    """One fault: what to inject, and exactly when and where.

    The spec fires at match numbers ``nth .. nth+count-1`` of the
    operations passing its filters (1-based; ``count=None`` means every
    match from ``nth`` on).  ``op`` narrows to one seam operation
    (default: the kind's natural targets), ``site`` to one store label,
    ``path_glob`` to file names matching a glob.
    """

    kind: IoFaultKind
    nth: int = 1
    count: Optional[int] = 1
    op: Optional[str] = None
    site: Optional[str] = None
    path_glob: Optional[str] = None

    def __post_init__(self) -> None:
        require(self.nth >= 1, f"nth must be >= 1, got {self.nth}")
        require(
            self.count is None or self.count >= 1,
            f"count must be >= 1 or None, got {self.count}",
        )
        require(
            self.op is None or self.op in IO_OPS,
            f"unknown op {self.op!r}; choose from {', '.join(IO_OPS)}",
        )

    def matches(self, operation: IoOperation) -> bool:
        """Does ``operation`` pass this spec's filters (ignoring nth)?"""
        ops = (self.op,) if self.op is not None else _DEFAULT_OPS[self.kind]
        if ops is not None and operation.op not in ops:
            return False
        if self.site is not None and not fnmatch.fnmatchcase(
            operation.site, self.site
        ):
            return False
        if self.path_glob is not None and not (
            fnmatch.fnmatch(operation.path.name, self.path_glob)
            or fnmatch.fnmatch(str(operation.path), self.path_glob)
        ):
            return False
        return True

    def fires_at(self, match_number: int) -> bool:
        """Does the spec fire at its ``match_number``-th match (1-based)?"""
        if match_number < self.nth:
            return False
        return self.count is None or match_number < self.nth + self.count

    def describe(self) -> str:
        window = (
            f"@{self.nth}x*"
            if self.count is None
            else f"@{self.nth}" + (f"x{self.count}" if self.count != 1 else "")
        )
        filters = [
            f"{key}={value}"
            for key, value in (
                ("op", self.op),
                ("site", self.site),
                ("path", self.path_glob),
            )
            if value is not None
        ]
        return self.kind.value + window + ("," + ",".join(filters) if filters else "")

    @classmethod
    def parse(cls, text: str) -> "IoFaultSpec":
        """Parse the ``--io-fault`` grammar (see the module docstring)."""
        head, _, tail = text.strip().partition(",")
        kind_text, _, window = head.partition("@")
        try:
            kind = IoFaultKind(kind_text.strip().lower())
        except ValueError:
            choices = ", ".join(k.value for k in IoFaultKind)
            raise ConfigurationError(
                f"unknown io-fault kind {kind_text.strip()!r};"
                f" choose from {choices}"
            ) from None
        nth, count = 1, 1
        if window:
            nth_text, _, count_text = window.partition("x")
            try:
                nth = int(nth_text)
            except ValueError:
                raise ConfigurationError(
                    f"bad io-fault position {nth_text!r} in {text!r}"
                    " (expected an integer)"
                ) from None
            if count_text:
                if count_text == "*":
                    count = None
                else:
                    try:
                        count = int(count_text)
                    except ValueError:
                        raise ConfigurationError(
                            f"bad io-fault count {count_text!r} in {text!r}"
                            " (expected an integer or '*')"
                        ) from None
        op = site = path_glob = None
        if tail:
            for clause in tail.split(","):
                key, sep, value = clause.partition("=")
                key, value = key.strip(), value.strip()
                if not sep or not value:
                    raise ConfigurationError(
                        f"bad io-fault filter {clause!r} in {text!r}"
                        " (expected key=value)"
                    )
                if key == "op":
                    op = value
                elif key == "site":
                    site = value
                elif key == "path":
                    path_glob = value
                else:
                    raise ConfigurationError(
                        f"unknown io-fault filter key {key!r} in {text!r};"
                        " choose from op, site, path"
                    )
        try:
            return cls(
                kind=kind, nth=nth, count=count, op=op, site=site,
                path_glob=path_glob,
            )
        except ConfigurationError as exc:
            raise ConfigurationError(f"bad io-fault spec {text!r}: {exc}") from None


@dataclass
class FiredFault:
    """A fault that actually landed, for post-run assertions."""

    spec: IoFaultSpec
    operation: IoOperation
    operation_index: int


class IoFaultPlan:
    """A deterministic schedule of I/O faults (the installable hook).

    The plan sees every seam operation, counts per-spec matches and
    fires each spec at its configured match window.  ``seed`` drives
    only the read-corruption byte choices; everything else is a pure
    function of the operation sequence, so the same run fires the same
    faults.
    """

    def __init__(self, specs: Sequence[IoFaultSpec], seed: int = 0) -> None:
        self.specs: Tuple[IoFaultSpec, ...] = tuple(specs)
        self.seed = seed
        self.operations = 0
        self.fired: List[FiredFault] = []
        self._matches = [0] * len(self.specs)
        self._rng = random.Random(seed)

    @property
    def fired_count(self) -> int:
        return len(self.fired)

    def __call__(self, operation: IoOperation) -> Optional[IoFaultAction]:
        self.operations += 1
        for index, spec in enumerate(self.specs):
            if not spec.matches(operation):
                continue
            self._matches[index] += 1
            if not spec.fires_at(self._matches[index]):
                continue
            self.fired.append(
                FiredFault(
                    spec=spec,
                    operation=operation,
                    operation_index=self.operations,
                )
            )
            count_io(f"io.injected.{spec.kind.value}")
            return self._action(spec, operation)
        return None

    def _action(
        self, spec: IoFaultSpec, operation: IoOperation
    ) -> IoFaultAction:
        if spec.kind is IoFaultKind.SHORT_WRITE:
            return IoFaultAction(
                error=_injected_error(spec.kind, operation),
                short_write_fraction=0.5,
            )
        if spec.kind is IoFaultKind.READ_CORRUPTION:
            # Deterministic given the seed and firing order: either a
            # single flipped byte or a truncation to half length.
            flip = self._rng.random() < 0.5
            offset = self._rng.random()

            def corrupt(data: bytes) -> bytes:
                if not data:
                    return b"\xff"
                if flip:
                    position = int(offset * (len(data) - 1))
                    mutated = bytearray(data)
                    mutated[position] ^= 0xFF
                    return bytes(mutated)
                return data[: max(1, len(data) // 2)]

            return IoFaultAction(corrupt=corrupt)
        return IoFaultAction(error=_injected_error(spec.kind, operation))


def parse_io_fault_specs(texts: Sequence[str]) -> List[IoFaultSpec]:
    """Parse several spec strings (CLI helper)."""
    return [IoFaultSpec.parse(text) for text in texts]


def install_io_faults(plan: IoFaultPlan) -> IoFaultPlan:
    """Install ``plan`` as the process-wide I/O fault hook."""
    install_io_fault_hook(plan)
    return plan


def clear_io_faults() -> None:
    """Remove any installed I/O fault plan."""
    clear_io_fault_hook()


@contextlib.contextmanager
def io_faults(plan: IoFaultPlan) -> Iterator[IoFaultPlan]:
    """Context manager: install ``plan``, always clear on exit."""
    install_io_faults(plan)
    try:
        yield plan
    finally:
        clear_io_faults()


@dataclass
class IoOperationRecorder:
    """A pass-through hook that records the operation stream.

    The exhaustive fault-schedule sweep first runs the campaign under a
    recorder to learn how many seam operations it performs, then
    replays it once per operation index with a fault at exactly that
    point.
    """

    operations: List[IoOperation] = field(default_factory=list)

    def __call__(self, operation: IoOperation) -> None:
        self.operations.append(operation)
        return None

    def __len__(self) -> int:
        return len(self.operations)


@contextlib.contextmanager
def record_io_operations() -> Iterator[IoOperationRecorder]:
    """Context manager: record every seam operation, clear on exit."""
    recorder = IoOperationRecorder()
    install_io_fault_hook(recorder)
    try:
        yield recorder
    finally:
        clear_io_fault_hook()
