"""Per-slot runtime invariant monitor (checked mode).

The WCL guarantees of Theorems 4.7/4.8 rest on model invariants that the
simulator historically verified only *after* a run completed
(``Simulator.run`` → ``check_inclusivity``).  A violation detected then
tells you the run was bad; it does not tell you *which slot* broke the
model.  This module registers a monitor on the slot engine's post-slot
hook so every invariant is re-verified after every bus slot, and a
failure raises :class:`~repro.common.errors.InvariantViolation` naming
the invariant, the slot, the core and the set involved.

The monitored invariants:

``slot-sequence``
    Slots are processed exactly once, in order (no dropped or repeated
    TDM slot).
``slot-accounting``
    Each processed slot produced exactly one arbitration outcome —
    request, write-back or idle — across all cores (the PRB/PWB mutual
    exclusion of Section 3's per-slot arbitration).
``llc-consistency``
    The LLC's storage, indexes and entry lifecycle agree
    (:meth:`~repro.llc.llc.PartitionedLlc.validate`).
``inclusivity``
    Every privately cached block is ``VALID`` in the LLC or has its
    write-back in flight (the inclusive property of Section 3).
``pending-evict-accounting``
    Every writer a ``PENDING_EVICT`` entry waits for actually has that
    write-back queued in its PWB — the entry can eventually free.
``one-outstanding-request``
    A core is blocked iff its PRB holds its (single, uncompleted)
    request (the one-outstanding-request assumption of Section 3).
``sequencer-fifo``
    Every core queued in a set sequencer has an outstanding request
    folding to the queued set (SS allocates head-only, Section 4.5).
``partition-routing``
    No outstanding request or queued write-back targets a block resident
    in a *different* partition's region (the disjoint-address-ranges
    contract of the paper's evaluation; a mutated trace breaks this).
``latency-bound``
    Every completed request's bus latency sits within its core's
    analytical WCL (Theorems 4.7/4.8 or the private bound), checked the
    slot the response arrives.

Use :func:`standard_invariants` /
:meth:`InvariantMonitor.install_checked` for the full set, or build an
:class:`InvariantMonitor` from any subset.  ``SystemConfig(checked=True)``
(or ``repro-llc fig7 --checked``) wires this up automatically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.verification import derive_core_bounds
from repro.common.errors import InvariantViolation
from repro.common.types import CoreId, Cycle, SlotIndex

if TYPE_CHECKING:
    from repro.sim.engine import SlotEngine


class Invariant:
    """One pluggable per-slot check.

    Subclasses set :attr:`name` and implement :meth:`check`, raising
    :class:`InvariantViolation` (with ``invariant=self.name`` and as
    much slot/core/set context as they have) on failure.  Instances may
    keep cross-slot state (e.g. the expected next slot index); a monitor
    therefore owns its invariant instances and must not share them
    between engines.
    """

    #: Stable identifier, used in violation messages and tests.
    name: str = "invariant"

    def check(self, engine: "SlotEngine", slot: SlotIndex) -> None:
        """Verify the invariant after ``slot`` was processed."""
        raise NotImplementedError

    def violation(
        self,
        message: str,
        slot: Optional[SlotIndex] = None,
        core: Optional[CoreId] = None,
        set_index: Optional[int] = None,
    ) -> InvariantViolation:
        """Build a violation carrying this invariant's name."""
        return InvariantViolation(
            self.name, message, slot=slot, core=core, set_index=set_index
        )


class SlotSequenceInvariant(Invariant):
    """Slots are observed exactly once, in strictly increasing order."""

    name = "slot-sequence"

    def __init__(self) -> None:
        self._expected: Optional[SlotIndex] = None

    def check(self, engine: "SlotEngine", slot: SlotIndex) -> None:
        if self._expected is not None and slot != self._expected:
            expected = self._expected
            self._expected = slot + 1
            if slot > expected:
                dropped = list(range(expected, slot))
                raise self.violation(
                    f"slot(s) {dropped} never processed (TDM slot dropped); "
                    f"expected slot {expected}, observed {slot}",
                    slot=slot,
                    core=engine.schedule.owner_of_slot(slot),
                )
            raise self.violation(
                f"slot {slot} observed again after slot {expected - 1} "
                "(TDM slot duplicated or clock moved backwards)",
                slot=slot,
                core=engine.schedule.owner_of_slot(slot),
            )
        self._expected = slot + 1


class SlotAccountingInvariant(Invariant):
    """Each slot produced exactly one arbitration outcome system-wide.

    The owner of a slot arbitrates PRB vs PWB and performs *at most one*
    bus transaction (or passes idle); the per-core slot-usage counters
    must therefore sum to exactly the number of slots processed.  A
    duplicated transaction (the same TDM slot served twice) or a slot
    whose arbitration never ran shows up as a count mismatch.
    """

    name = "slot-accounting"

    def __init__(self) -> None:
        self._slots_seen = 0

    def check(self, engine: "SlotEngine", slot: SlotIndex) -> None:
        self._slots_seen += 1
        total = sum(
            usage["idle"] + usage["request"] + usage["writeback"]
            for usage in engine._slot_usage.values()
        )
        if total != self._slots_seen:
            owner = engine.schedule.owner_of_slot(slot)
            kind = "extra transaction" if total > self._slots_seen else "lost slot"
            raise self.violation(
                f"{total} arbitration outcomes recorded over "
                f"{self._slots_seen} processed slots ({kind}); the slot "
                "owner must perform at most one bus transaction per slot",
                slot=slot,
                core=owner,
            )


class LlcConsistencyInvariant(Invariant):
    """The LLC's entries, indexes and lifecycle states agree.

    ``sets`` restricts the per-slot scan (see
    :meth:`~repro.llc.llc.PartitionedLlc.validate`); the standard
    monitor passes the partition-covered sets — the only rows a line can
    ever occupy — so the check stays O(resident lines), not O(geometry),
    per slot.
    """

    name = "llc-consistency"

    def __init__(self, sets: Optional[Sequence[int]] = None) -> None:
        self._sets: Optional[Tuple[int, ...]] = (
            tuple(sets) if sets is not None else None
        )

    def check(self, engine: "SlotEngine", slot: SlotIndex) -> None:
        from repro.common.errors import SimulationError

        try:
            engine.system.llc.validate(sets=self._sets)
        except InvariantViolation:
            raise
        except SimulationError as exc:
            raise self.violation(str(exc), slot=slot) from exc


class InclusivityInvariant(Invariant):
    """Every privately cached block is VALID in the LLC or write-back-bound."""

    name = "inclusivity"

    def check(self, engine: "SlotEngine", slot: SlotIndex) -> None:
        system = engine.system
        llc = system.llc
        for core_id, stack in system.stacks.items():
            pwb_blocks = None
            for block in stack.resident_blocks():
                if llc.valid_entry(block) is not None:
                    continue
                if pwb_blocks is None:
                    pwb_blocks = set(system.pwbs[core_id].blocks())
                if block in pwb_blocks:
                    continue
                raise self.violation(
                    f"core {core_id} caches block {block:#x} which is not "
                    "VALID in the LLC and has no write-back in flight",
                    slot=slot,
                    core=core_id,
                    set_index=llc.fold(core_id, block),
                )


class PendingEvictAccountingInvariant(Invariant):
    """PENDING_EVICT writers each hold the matching write-back in their PWB.

    ``begin_eviction`` parks one write-back per dirty private owner; the
    entry frees only when the last of them arrives.  If a writer's PWB
    no longer contains the block (a dropped write-back), the entry can
    never free and every requester queued on the set starves.
    """

    name = "pending-evict-accounting"

    def check(self, engine: "SlotEngine", slot: SlotIndex) -> None:
        system = engine.system
        pwb_blocks: Dict[CoreId, FrozenSet[int]] = {}
        for entry in system.llc.pending_entries():
            for writer in entry.pending_writers:
                blocks = pwb_blocks.get(writer)
                if blocks is None:
                    blocks = frozenset(system.pwbs[writer].blocks())
                    pwb_blocks[writer] = blocks
                if entry.block not in blocks:
                    raise self.violation(
                        f"entry at set {entry.set_index} way {entry.way} "
                        f"(block {entry.block:#x}) awaits a write-back from "
                        f"core {writer} which has none in flight",
                        slot=slot,
                        core=writer,
                        set_index=entry.set_index,
                    )


class OneOutstandingRequestInvariant(Invariant):
    """A core is blocked iff its PRB holds its single uncompleted request."""

    name = "one-outstanding-request"

    def check(self, engine: "SlotEngine", slot: SlotIndex) -> None:
        system = engine.system
        for core_id, core in system.cores.items():
            request = system.prbs[core_id].entry
            if request is None:
                if core.blocked:
                    raise self.violation(
                        f"core {core_id} is blocked on an LLC response but "
                        "its PRB is empty (lost request)",
                        slot=slot,
                        core=core_id,
                    )
                continue
            if not core.blocked:
                raise self.violation(
                    f"core {core_id} has a request for block "
                    f"{request.block:#x} outstanding but is "
                    f"{core.state.value}, not blocked (a second request "
                    "could issue)",
                    slot=slot,
                    core=core_id,
                )
            if request.core != core_id:
                raise self.violation(
                    f"core {core_id}'s PRB holds a request belonging to "
                    f"core {request.core}",
                    slot=slot,
                    core=core_id,
                )
            if request.completed_at is not None:
                raise self.violation(
                    f"core {core_id}'s PRB holds a request for block "
                    f"{request.block:#x} already completed at cycle "
                    f"{request.completed_at}",
                    slot=slot,
                    core=core_id,
                )


class SequencerConsistencyInvariant(Invariant):
    """Queued sequencer cores have outstanding requests on the queued set."""

    name = "sequencer-fifo"

    def check(self, engine: "SlotEngine", slot: SlotIndex) -> None:
        system = engine.system
        for name, sequencer in system.sequencers.items():
            for core_id, set_index in sequencer._queued_set.items():
                request = system.prbs[core_id].entry
                if request is None:
                    raise self.violation(
                        f"sequencer {name!r} queues core {core_id} on set "
                        f"{set_index} but the core has no outstanding request",
                        slot=slot,
                        core=core_id,
                        set_index=set_index,
                    )
                actual = system.llc.fold(core_id, request.block)
                if actual != set_index:
                    raise self.violation(
                        f"sequencer {name!r} queues core {core_id} on set "
                        f"{set_index} but its request for block "
                        f"{request.block:#x} folds to set {actual} "
                        "(FIFO order no longer matches broadcast order)",
                        slot=slot,
                        core=core_id,
                        set_index=set_index,
                    )


class PartitionRoutingInvariant(Invariant):
    """Requests and write-backs stay inside their core's partition region.

    The paper's evaluation keeps per-partition address ranges disjoint;
    a request for a block resident in *another* partition's region would
    make the block resident twice.  A mutated or corrupted trace is the
    canonical way to end up here.
    """

    name = "partition-routing"

    def __init__(self, system) -> None:
        # Per core: (sets, ways) of its partition region, precomputed —
        # partitions are immutable for the lifetime of a system.
        self._regions: Dict[CoreId, Tuple[FrozenSet[int], FrozenSet[int]]] = {}
        for core_id in system.cores:
            partition = system.llc.partition_of(core_id)
            self._regions[core_id] = (
                frozenset(partition.sets),
                frozenset(partition.ways()),
            )

    def _foreign(self, core: CoreId, entry) -> bool:
        sets, ways = self._regions[core]
        return entry.set_index not in sets or entry.way not in ways

    def check(self, engine: "SlotEngine", slot: SlotIndex) -> None:
        system = engine.system
        llc = system.llc
        for core_id in system.cores:
            request = system.prbs[core_id].entry
            if request is None:
                continue
            resident = llc.valid_entry(request.block) or llc.pending_entry(
                request.block
            )
            if resident is not None and self._foreign(core_id, resident):
                raise self.violation(
                    f"core {core_id} requests block {request.block:#x} "
                    f"which is resident at set {resident.set_index} way "
                    f"{resident.way} outside the core's partition "
                    "(disjoint-address-range contract broken — mutated "
                    "trace?)",
                    slot=slot,
                    core=core_id,
                    set_index=resident.set_index,
                )


class LatencyBoundInvariant(Invariant):
    """Completed requests respect their core's analytical WCL.

    Bus latency (first broadcast to response) is the quantity Theorems
    4.7/4.8 bound.  Cores without a finite bound (shared partition under
    a non-1S-TDM schedule, Section 4.1) are skipped.  The check runs the
    slot each response arrives, so a violating request is reported at
    its completion slot rather than after the run.
    """

    name = "latency-bound"

    def __init__(self, config) -> None:
        self._bounds: Dict[CoreId, Optional[Cycle]] = {
            core: bound.cycles
            for core, bound in derive_core_bounds(config).items()
        }
        self._rules: Dict[CoreId, str] = {
            core: bound.rule
            for core, bound in derive_core_bounds(config).items()
        }
        self._checked = 0

    def check(self, engine: "SlotEngine", slot: SlotIndex) -> None:
        completed = engine._completed
        while self._checked < len(completed):
            request = completed[self._checked]
            self._checked += 1
            bound = self._bounds.get(request.core)
            if bound is None:
                continue
            assert request.completed_at is not None
            assert request.first_on_bus_at is not None
            bus_latency = request.completed_at - request.first_on_bus_at
            if bus_latency > bound:
                raise self.violation(
                    f"request for block {request.block:#x} took "
                    f"{bus_latency} cycles on the bus, above the "
                    f"{self._rules[request.core]} bound of {bound} cycles",
                    slot=slot,
                    core=request.core,
                    set_index=engine.system.llc.fold(
                        request.core, request.block
                    ),
                )


def standard_invariants(system) -> List[Invariant]:
    """The full checked-mode invariant set for ``system``, in check order.

    Cheap structural checks run first so a single corrupted transition
    is reported by the most specific invariant.
    """
    covered_sets = sorted(
        {s for partition in system.config.partitions for s in partition.sets}
    )
    return [
        SlotSequenceInvariant(),
        SlotAccountingInvariant(),
        LlcConsistencyInvariant(sets=covered_sets),
        InclusivityInvariant(),
        PendingEvictAccountingInvariant(),
        OneOutstandingRequestInvariant(),
        SequencerConsistencyInvariant(),
        PartitionRoutingInvariant(system),
        LatencyBoundInvariant(system.config),
    ]


class InvariantMonitor:
    """Runs a set of invariants on every processed slot.

    Attach with :meth:`install`; the monitor hooks the engine's
    post-slot callback and re-raises the first violation.  One monitor
    serves one engine (several invariants keep per-run state).
    """

    def __init__(self, invariants: Sequence[Invariant]) -> None:
        self.invariants: List[Invariant] = list(invariants)
        #: Total individual invariant checks executed (for tests and
        #: overhead accounting).
        self.checks_run = 0
        #: The first violation observed, kept for post-mortem access
        #: even though it also propagates out of ``engine.run``.
        self.first_violation: Optional[InvariantViolation] = None

    @classmethod
    def install_checked(cls, engine: "SlotEngine") -> "InvariantMonitor":
        """Build the standard monitor for ``engine`` and install it."""
        monitor = cls(standard_invariants(engine.system))
        monitor.install(engine)
        return monitor

    def install(self, engine: "SlotEngine") -> "InvariantMonitor":
        """Register this monitor on ``engine``'s post-slot hook."""
        engine.add_post_slot_hook(self.on_slot)
        return self

    def seed_resume(self, engine: "SlotEngine") -> None:
        """Re-seed per-run invariant state after a checkpoint restore.

        The stateful invariants track *their own* view of progress
        (slots seen, completed requests already bounded) and would
        false-trip if a freshly built monitor observed a mid-run engine.
        The correct seeds are all derivable from the restored engine
        state, so checkpoints do not serialize monitor internals; the
        restore path calls this instead.
        """
        slots_processed = sum(
            usage["idle"] + usage["request"] + usage["writeback"]
            for usage in engine._slot_usage.values()
        )
        for invariant in self.invariants:
            if isinstance(invariant, SlotAccountingInvariant):
                invariant._slots_seen = slots_processed
            elif isinstance(invariant, LatencyBoundInvariant):
                invariant._checked = len(engine._completed)
            elif isinstance(invariant, SlotSequenceInvariant):
                # Self-heals from None at the next processed slot.
                invariant._expected = None

    def on_slot(
        self, engine: "SlotEngine", slot: SlotIndex, slot_start: Cycle
    ) -> None:
        """Post-slot hook: run every invariant against the fresh state."""
        for invariant in self.invariants:
            self.checks_run += 1
            try:
                invariant.check(engine, slot)
            except InvariantViolation as violation:
                if self.first_violation is None:
                    self.first_violation = violation
                raise
