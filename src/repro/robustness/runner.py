"""Crash-tolerant campaign runner: timeouts, retries, quarantine, resume.

A long reproduction campaign (``repro-llc all``, a many-seed sweep) must
not be torpedoed by one bad configuration or one hung simulation.  This
module wraps any sequence of named tasks with:

* a **per-task wall-clock timeout** (SIGALRM-based; a hung task raises
  :class:`~repro.common.errors.TaskTimeoutError` and is quarantined —
  a hung simulation will hang again, so timeouts are not retried);
* **bounded retry with exponential backoff** for *transient* failures
  (host-level errors such as :class:`OSError`; model errors —
  :class:`~repro.common.errors.ReproError` — are deterministic and fail
  straight to quarantine);
* **failure quarantine**: a failed task is recorded as a structured
  manifest entry and the campaign continues;
* **checkpoint/resume** through a JSON :class:`RunManifest` written
  atomically after every task, so a killed campaign picks up where it
  left off (``repro-llc all --resume``) and completed tasks are never
  re-run.

Two ready-made campaigns: :func:`run_all_robust` (the full artifact
reproduction of :mod:`repro.experiments.runner`) and
:func:`sweep_seeds_robust` (per-seed tasks around
:func:`repro.sim.sweeps.run_seed`).
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.common.errors import (
    CampaignError,
    ConfigurationError,
    ReproError,
    TaskTimeoutError,
)
from repro.common.fileio import (
    Durability,
    cleanup_stale_tmp,
    persist_text,
    read_text,
)
from repro.common.validation import require
from repro.sim.config import SystemConfig
from repro.sim.report import SimReport
from repro.sim.sweeps import SweepResult, TraceFactory, run_seed

#: A campaign task: a stable name plus a nullary callable producing the
#: task's result.
Task = Tuple[str, Callable[[], Any]]

#: Manifest schema version (bumped on incompatible layout changes).
MANIFEST_VERSION = 1


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient failures."""

    #: Total attempts per task (1 = no retry).
    max_attempts: int = 3
    #: Seconds slept before the first retry.
    backoff_base: float = 0.25
    #: Multiplier applied per further retry.
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        require(
            self.max_attempts >= 1,
            f"max_attempts must be >= 1, got {self.max_attempts}",
            ConfigurationError,
        )
        require(
            self.backoff_base >= 0,
            f"backoff_base must be >= 0, got {self.backoff_base}",
            ConfigurationError,
        )
        require(
            self.backoff_factor >= 1,
            f"backoff_factor must be >= 1, got {self.backoff_factor}",
            ConfigurationError,
        )

    def delay(self, attempt: int) -> float:
        """Seconds to back off after failed attempt number ``attempt``."""
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


# ----------------------------------------------------------------------
# Run manifest (checkpoint/resume)
# ----------------------------------------------------------------------
class RunManifest:
    """The on-disk checkpoint of a campaign: one JSON entry per task.

    Entries record status (``"done"`` or ``"quarantined"``), attempt
    count, elapsed seconds, the error (for quarantined tasks) and a
    JSON-serialisable payload summarising the result (for ``run_all``
    artifacts: their reproduction checks).  The file is rewritten
    atomically (temp file + rename) after every task, so a kill at any
    point leaves a loadable manifest.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.tasks: Dict[str, Dict[str, Any]] = {}

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        """Load an existing manifest; empty when the file is missing."""
        manifest = cls(path)
        # A crash between writing the temp file and the atomic rename
        # can orphan a *.tmp next to the manifest; it holds no state the
        # manifest itself lacks, so clear it out.
        cleanup_stale_tmp(manifest.path)
        if not manifest.path.exists():
            return manifest
        try:
            data = json.loads(read_text(manifest.path, site="manifest"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(
                f"run manifest {manifest.path} is unreadable: {exc}"
            ) from exc
        if not isinstance(data, dict) or "tasks" not in data:
            raise CampaignError(
                f"run manifest {manifest.path} is malformed (no tasks object)"
            )
        version = data.get("version")
        if isinstance(version, int) and version > MANIFEST_VERSION:
            raise CampaignError(
                f"run manifest {manifest.path} has version {version}, "
                f"written by a newer repro build (this build reads "
                f"version {MANIFEST_VERSION}); upgrade this installation "
                "to resume that campaign, or delete the manifest to "
                "start a fresh one"
            )
        if version != MANIFEST_VERSION:
            raise CampaignError(
                f"run manifest {manifest.path} has version {version!r}; "
                f"this runner writes version {MANIFEST_VERSION} "
                "(delete the manifest to start a fresh campaign)"
            )
        manifest.tasks = dict(data["tasks"])
        return manifest

    def is_done(self, name: str) -> bool:
        """Whether ``name`` completed successfully in a previous run."""
        entry = self.tasks.get(name)
        return entry is not None and entry.get("status") == "done"

    def entry(self, name: str) -> Optional[Dict[str, Any]]:
        """The recorded entry of one task, if any."""
        return self.tasks.get(name)

    def record(self, name: str, entry: Dict[str, Any]) -> None:
        """Record (and checkpoint) one task's outcome."""
        self.tasks[name] = entry
        self.save()

    def save(self) -> None:
        """Atomically rewrite the manifest file.

        Task entries are written in sorted-name order so the file layout
        does not depend on completion order — a parallel campaign and a
        serial one produce the same manifest structure.
        """
        payload = json.dumps(
            {
                "version": MANIFEST_VERSION,
                "tasks": {name: self.tasks[name] for name in sorted(self.tasks)},
            },
            indent=2,
        )
        # The manifest is the campaign's resume point: ESSENTIAL.
        persist_text(
            self.path,
            payload + "\n",
            site="manifest",
            durability=Durability.ESSENTIAL,
        )

    def results(self) -> Dict[str, Dict[str, Any]]:
        """Status and payload per task — the comparable campaign outcome.

        Timing and attempt counts are excluded: a resumed campaign must
        produce the *same* results as an uninterrupted one, and those
        fields legitimately differ between the two.
        """
        return {
            name: {
                "status": entry.get("status"),
                "payload": entry.get("payload"),
            }
            for name, entry in self.tasks.items()
        }


# ----------------------------------------------------------------------
# Task outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one task in this process (not a resumed skip)."""

    name: str
    #: ``"done"``, ``"quarantined"`` or ``"skipped"`` (already done in a
    #: previous run of a resumed campaign).
    status: str
    attempts: int
    elapsed_seconds: float
    #: For quarantined tasks: the exception's class name and message.
    error_type: Optional[str] = None
    error: Optional[str] = None
    #: The task's return value (``None`` for quarantined/skipped tasks);
    #: not persisted to the manifest.
    result: Any = None

    @property
    def ok(self) -> bool:
        """Whether the task is in a successful state."""
        return self.status in ("done", "skipped")


@dataclass
class CampaignResult:
    """Everything one :meth:`CampaignRunner.run` call produced."""

    outcomes: List[TaskOutcome] = field(default_factory=list)
    manifest: Optional[RunManifest] = None

    @property
    def quarantined(self) -> List[TaskOutcome]:
        """Tasks that failed permanently this run."""
        return [o for o in self.outcomes if o.status == "quarantined"]

    @property
    def skipped(self) -> List[TaskOutcome]:
        """Tasks skipped because a previous run already completed them."""
        return [o for o in self.outcomes if o.status == "skipped"]

    @property
    def all_ok(self) -> bool:
        """No quarantine this run, and no failed payload in the manifest."""
        if self.quarantined:
            return False
        if self.manifest is not None:
            for entry in self.manifest.tasks.values():
                if entry.get("status") != "done":
                    return False
                payload = entry.get("payload")
                if isinstance(payload, dict) and payload.get("passed") is False:
                    return False
        return True

    def summary(self) -> str:
        """One line per task of this run."""
        labels = {"done": "PASS", "skipped": "SKIP", "quarantined": "QUARANTINED"}
        lines = []
        for outcome in self.outcomes:
            label = labels.get(outcome.status, outcome.status.upper())
            suffix = f"  ({outcome.error})" if outcome.error else ""
            lines.append(f"{label:11} {outcome.name}{suffix}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
def _default_payload(result: Any) -> Optional[Dict[str, Any]]:
    """Summarise a task result for the manifest (JSON-serialisable).

    ``run_all`` artifacts expose ``checks``/``passed``; anything else is
    summarised as its repr so the manifest stays loadable.  A result
    carrying a metrics registry gets its canonical rows persisted too,
    so a campaign resumed after a kill can rebuild the metrics of tasks
    it skips (:func:`campaign_metrics`) — without them, a kill would
    silently change the merged metrics export.
    """
    checks = getattr(result, "checks", None)
    passed = getattr(result, "passed", None)
    if isinstance(checks, dict) and isinstance(passed, bool):
        payload: Dict[str, Any] = {"passed": passed, "checks": dict(checks)}
    elif result is None:
        payload = {}
    else:
        try:
            json.dumps(result)
            payload = {"value": result}
        except (TypeError, ValueError):
            payload = {"repr": repr(result)[:200]}
    metrics = getattr(result, "metrics", None)
    if metrics is not None and callable(getattr(metrics, "rows", None)):
        payload["metrics_rows"] = metrics.rows()
    return payload or None


class CampaignRunner:
    """Runs named tasks with timeout, retry, quarantine and resume.

    Parameters
    ----------
    manifest_path:
        Where the JSON checkpoint lives.  ``None`` disables
        checkpointing (every run starts fresh, nothing is written).
    timeout:
        Per-task wall-clock budget in seconds; ``None`` disables it.
        Enforcement uses ``SIGALRM`` and therefore only engages on the
        main thread of a Unix process — elsewhere tasks run untimed.
    retry:
        The transient-failure :class:`RetryPolicy`.
    transient_types:
        Exception classes considered transient (retried with backoff).
        Defaults to :class:`OSError` — host-level flakiness.  Model
        errors (:class:`ReproError`) are deterministic and never retried.
    jobs:
        Worker processes for task execution.  ``1`` (the default) runs
        tasks serially in-process, exactly as before.  With ``jobs > 1``
        tasks are dispatched to a fork-backed pool
        (:class:`repro.sim.parallel.TaskPool`): the timeout is enforced
        by the *parent* (a hung worker is killed, not merely signalled),
        retry/quarantine semantics are unchanged, manifest entries are
        still checkpointed atomically as each task completes, and
        outcomes are reported in canonical task order so the campaign
        result matches a serial run.  Falls back to serial where the
        ``fork`` start method is unavailable.
    sleep / clock:
        Injection points for tests (backoff sleeping, elapsed timing;
        serial path only — the pool schedules its own backoff).
    hung_after / max_restarts / rss_limit_bytes / registry:
        Worker supervision for the parallel path, forwarded to
        :class:`repro.sim.parallel.TaskPool`: a liveness watchdog that
        tears down workers gone silent for ``hung_after`` seconds
        (restarting their task up to ``max_restarts`` times — resuming
        from the last simulation checkpoint when the auto-checkpoint
        policy is installed), a per-worker resident-memory ceiling, and
        an optional metrics registry for the supervision counters.
        Hung and resource-killed tasks that exhaust their restarts are
        quarantined with ``TaskHungError`` / ``ResourceExceededError``
        signatures in the manifest.  Ignored on the serial path.
    """

    def __init__(
        self,
        manifest_path: Optional[Union[str, Path]] = None,
        timeout: Optional[float] = None,
        retry: RetryPolicy = RetryPolicy(),
        transient_types: Tuple[type, ...] = (OSError,),
        payload_of: Callable[[Any], Optional[Dict[str, Any]]] = _default_payload,
        jobs: int = 1,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        hung_after: Optional[float] = None,
        max_restarts: int = 0,
        rss_limit_bytes: Optional[int] = None,
        registry=None,
    ) -> None:
        if timeout is not None:
            require(
                timeout > 0,
                f"timeout must be positive, got {timeout}",
                ConfigurationError,
            )
        require(jobs >= 1, f"jobs must be >= 1, got {jobs}", ConfigurationError)
        self.manifest_path = Path(manifest_path) if manifest_path else None
        self.timeout = timeout
        self.retry = retry
        self.transient_types = transient_types
        self.payload_of = payload_of
        self.jobs = jobs
        self.sleep = sleep
        self.clock = clock
        self.hung_after = hung_after
        self.max_restarts = max_restarts
        self.rss_limit_bytes = rss_limit_bytes
        self.registry = registry
        # Whether the most recent _call_with_timeout actually armed the
        # requested budget; manifest entries record the (rare) case it
        # could not.  One loud warning per runner, not one per task.
        self._last_timeout_enforced = True
        self._timeout_warning_issued = False

    # -- timeout enforcement -------------------------------------------
    @staticmethod
    def _can_use_alarm() -> bool:
        return (
            hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )

    def _call_with_timeout(self, name: str, thunk: Callable[[], Any]) -> Any:
        if self.timeout is None:
            self._last_timeout_enforced = True
            return thunk()
        if not self._can_use_alarm():
            # SIGALRM is unavailable off the main thread / platform; the
            # task runs untimed.  Say so loudly (once) and flag it, so a
            # manifest never silently pretends the budget applied.
            self._last_timeout_enforced = False
            if not self._timeout_warning_issued:
                self._timeout_warning_issued = True
                warnings.warn(
                    f"campaign timeout of {self.timeout}s cannot be "
                    "enforced here (SIGALRM unavailable: not the main "
                    "thread of a Unix process); tasks run untimed and "
                    "their manifest entries record timeout_enforced: "
                    "false",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return thunk()
        self._last_timeout_enforced = True

        def _on_alarm(signum, frame):  # pragma: no cover - trivial
            raise TaskTimeoutError(
                f"task {name!r} exceeded its wall-clock budget of "
                f"{self.timeout}s and was aborted"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, self.timeout)
        try:
            return thunk()
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    # -- main entry point ----------------------------------------------
    def run(
        self,
        tasks: Sequence[Task],
        resume: bool = True,
        progress: Optional[Callable[[str], None]] = None,
    ) -> CampaignResult:
        """Run ``tasks`` in order; quarantine failures, checkpoint each.

        With ``resume=True`` (the default) tasks already marked done in
        the manifest are skipped, so re-invoking an interrupted campaign
        completes only the remaining work.  A ``KeyboardInterrupt``
        checkpoints the manifest before propagating — the canonical
        "killed mid-campaign" path.
        """
        names = [name for name, _ in tasks]
        require(
            len(names) == len(set(names)),
            f"campaign task names must be unique, got {names}",
            ConfigurationError,
        )
        if self.manifest_path is not None and resume:
            manifest = RunManifest.load(self.manifest_path)
        elif self.manifest_path is not None:
            manifest = RunManifest(self.manifest_path)
        else:
            manifest = RunManifest(Path(os.devnull))
            manifest.save = lambda: None  # type: ignore[method-assign]
        result = CampaignResult(manifest=manifest)
        if self.jobs > 1:
            from repro.sim.parallel import parallel_available

            if parallel_available():
                return self._run_parallel(tasks, resume, manifest, result, progress)
        for name, thunk in tasks:
            if resume and manifest.is_done(name):
                outcome = TaskOutcome(
                    name=name, status="skipped", attempts=0, elapsed_seconds=0.0
                )
                result.outcomes.append(outcome)
                if progress is not None:
                    progress(f"{name}: already done (resumed)")
                continue
            outcome = self._run_task(name, thunk, manifest)
            result.outcomes.append(outcome)
            if progress is not None:
                tag = "PASS" if outcome.status == "done" else "QUARANTINED"
                progress(f"{name}: {tag}")
        return result

    def _run_parallel(
        self,
        tasks: Sequence[Task],
        resume: bool,
        manifest: RunManifest,
        result: CampaignResult,
        progress: Optional[Callable[[str], None]],
    ) -> CampaignResult:
        """Dispatch runnable tasks to the fork-backed pool.

        Resume semantics match the serial path (done tasks are skipped);
        each completing worker checkpoints its manifest entry at once;
        outcomes are merged back in canonical task order so a parallel
        campaign's :class:`CampaignResult` equals a serial run's.
        """
        from repro.sim.parallel import PoolResult, TaskPool

        skipped: Dict[str, TaskOutcome] = {}
        runnable: List[Task] = []
        for name, thunk in tasks:
            if resume and manifest.is_done(name):
                skipped[name] = TaskOutcome(
                    name=name, status="skipped", attempts=0, elapsed_seconds=0.0
                )
                if progress is not None:
                    progress(f"{name}: already done (resumed)")
            else:
                runnable.append((name, thunk))

        outcomes: Dict[str, TaskOutcome] = {}

        def on_result(pool_result: PoolResult) -> None:
            outcome = self._record_pool_result(pool_result, manifest)
            outcomes[outcome.name] = outcome
            if progress is not None:
                tag = "PASS" if outcome.status == "done" else "QUARANTINED"
                progress(f"{outcome.name}: {tag}")

        pool = TaskPool(
            jobs=self.jobs,
            timeout=self.timeout,
            retry_attempts=self.retry.max_attempts,
            retry_delay=self.retry.delay,
            is_transient=lambda exc: (
                isinstance(exc, self.transient_types)
                and not isinstance(exc, ReproError)
            ),
            hung_after=self.hung_after,
            max_restarts=self.max_restarts,
            rss_limit_bytes=self.rss_limit_bytes,
            registry=self.registry,
        )
        try:
            pool.run(runnable, on_result=on_result)
        except KeyboardInterrupt:
            # Killed mid-campaign: everything completed so far is
            # already checkpointed; persist and let the interrupt
            # unwind — the next run resumes from here.
            manifest.save()
            raise
        result.outcomes.extend(
            skipped[name] if name in skipped else outcomes[name]
            for name, _ in tasks
        )
        return result

    def _record_pool_result(
        self, pool_result: "Any", manifest: RunManifest
    ) -> TaskOutcome:
        """Checkpoint one pool completion; mirror the serial entries."""
        if pool_result.ok:
            manifest.record(
                pool_result.name,
                {
                    "status": "done",
                    "attempts": pool_result.attempts,
                    "elapsed_seconds": round(pool_result.elapsed_seconds, 3),
                    "error": None,
                    "error_type": None,
                    "payload": self.payload_of(pool_result.value),
                },
            )
            return TaskOutcome(
                name=pool_result.name,
                status="done",
                attempts=pool_result.attempts,
                elapsed_seconds=pool_result.elapsed_seconds,
                result=pool_result.value,
            )
        error = pool_result.error
        manifest.record(
            pool_result.name,
            {
                "status": "quarantined",
                "attempts": pool_result.attempts,
                "elapsed_seconds": round(pool_result.elapsed_seconds, 3),
                "error": str(error),
                "error_type": type(error).__name__,
                "payload": None,
            },
        )
        return TaskOutcome(
            name=pool_result.name,
            status="quarantined",
            attempts=pool_result.attempts,
            elapsed_seconds=pool_result.elapsed_seconds,
            error_type=type(error).__name__,
            error=str(error),
        )

    def _run_task(
        self, name: str, thunk: Callable[[], Any], manifest: RunManifest
    ) -> TaskOutcome:
        started = self.clock()
        attempt = 0
        while True:
            attempt += 1
            try:
                task_result = self._call_with_timeout(name, thunk)
            except KeyboardInterrupt:
                # Killed mid-task: checkpoint what we have, then let the
                # interrupt unwind — the next run resumes from here.
                manifest.save()
                raise
            except TaskTimeoutError as exc:
                # A hung task will hang again — straight to quarantine.
                return self._quarantine(name, manifest, attempt, started, exc)
            except self.transient_types as exc:
                if isinstance(exc, ReproError) or attempt >= self.retry.max_attempts:
                    return self._quarantine(name, manifest, attempt, started, exc)
                self.sleep(self.retry.delay(attempt))
                continue
            except Exception as exc:
                return self._quarantine(name, manifest, attempt, started, exc)
            elapsed = self.clock() - started
            entry = {
                "status": "done",
                "attempts": attempt,
                "elapsed_seconds": round(elapsed, 3),
                "error": None,
                "error_type": None,
                "payload": self.payload_of(task_result),
            }
            if not self._last_timeout_enforced:
                entry["timeout_enforced"] = False
            manifest.record(name, entry)
            return TaskOutcome(
                name=name,
                status="done",
                attempts=attempt,
                elapsed_seconds=elapsed,
                result=task_result,
            )

    def _quarantine(
        self,
        name: str,
        manifest: RunManifest,
        attempts: int,
        started: float,
        exc: BaseException,
    ) -> TaskOutcome:
        elapsed = self.clock() - started
        entry = {
            "status": "quarantined",
            "attempts": attempts,
            "elapsed_seconds": round(elapsed, 3),
            "error": str(exc),
            "error_type": type(exc).__name__,
            "payload": None,
        }
        if not self._last_timeout_enforced:
            entry["timeout_enforced"] = False
        manifest.record(name, entry)
        return TaskOutcome(
            name=name,
            status="quarantined",
            attempts=attempts,
            elapsed_seconds=elapsed,
            error_type=type(exc).__name__,
            error=str(exc),
        )


# ----------------------------------------------------------------------
# Ready-made campaigns
# ----------------------------------------------------------------------
def write_campaign_summaries(
    target: Path, result: CampaignResult
) -> None:
    """Write ``summary.json`` and ``SUMMARY.txt`` from one campaign.

    Entries are rolled up in canonical order — campaign task order
    first, then any manifest entries from other runs (sorted) — and
    **deduplicated by task id**: a task that appears twice in the
    outcome list (e.g. quarantined in one attempt and retried after a
    resume) is still summarised exactly once, from its final manifest
    entry.  Without the dedup a resumed campaign's ``SUMMARY.txt``
    would re-count the retried task, so the rollup is pinned by
    ``tests/test_campaign_summary_resume.py``.
    """
    assert result.manifest is not None
    campaign_order = [o.name for o in result.outcomes]
    extras = sorted(set(result.manifest.tasks) - set(campaign_order))
    ordered = [
        name
        for name in dict.fromkeys(campaign_order + extras)
        if name in result.manifest.tasks
    ]
    summary = {}
    for name in ordered:
        entry = result.manifest.tasks[name]
        summary[name] = (
            entry["payload"]["checks"]
            if entry.get("status") == "done"
            and isinstance(entry.get("payload"), dict)
            and "checks" in entry["payload"]
            else {"quarantined": entry.get("error")}
        )
    persist_text(
        target / "summary.json",
        json.dumps(summary, indent=2) + "\n",
        site="campaign-summary",
        durability=Durability.ESSENTIAL,
    )
    lines = []
    for name in ordered:
        entry = result.manifest.tasks[name]
        if entry.get("status") != "done":
            lines.append(f"QUARANTINED  {name}")
            continue
        payload = entry.get("payload") or {}
        lines.append(f"{'PASS' if payload.get('passed') else 'FAIL'}  {name}")
    persist_text(
        target / "SUMMARY.txt",
        "\n".join(lines) + "\n",
        site="campaign-summary",
        durability=Durability.ESSENTIAL,
    )


def run_all_robust(
    out_dir: Optional[Union[str, Path]] = None,
    num_requests: int = 300,
    tightness_repeats: int = 25,
    manifest_path: Optional[Union[str, Path]] = None,
    timeout: Optional[float] = None,
    retry: RetryPolicy = RetryPolicy(),
    resume: bool = True,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    with_metrics: bool = False,
    engine: Optional[str] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_every_secs: Optional[float] = None,
    hung_after: Optional[float] = None,
    max_restarts: int = 0,
    rss_limit_bytes: Optional[int] = None,
    registry=None,
) -> CampaignResult:
    """Crash-tolerant ``run_all``: every artifact as a quarantinable task.

    Artifact tables and the summary files land in ``out_dir`` exactly as
    with :func:`repro.experiments.runner.run_all`; additionally a
    ``manifest.json`` (or ``manifest_path``) checkpoints progress after
    every artifact so an interrupted ``repro-llc all`` resumes instead
    of restarting.  The summary files are rebuilt from the manifest, so
    a resumed campaign reports previously-completed artifacts too.

    ``engine`` is forwarded to the figure artifacts (see
    :func:`repro.experiments.runner.artifact_steps`).

    ``jobs > 1`` runs the independent artifacts in worker processes
    (the artifacts themselves stay serial inside each worker, so the
    process tree never over-commits); results, summaries and the
    manifest are identical to a serial campaign's.

    With ``with_metrics=True`` the figure artifacts carry their
    ``artifact``-labelled metrics registries on the returned outcomes
    (``outcome.result.metrics``) — merge them with
    :func:`campaign_metrics`.  Each completed artifact's metric rows
    are also persisted in its manifest entry, so artifacts skipped on
    resume still contribute: the merged metrics of a killed-and-resumed
    campaign are byte-identical to an uninterrupted run's.

    ``cache_dir`` installs the process-wide simulation result cache
    (:func:`repro.sim.cache.install_result_cache`) for the duration of
    the campaign: every plain ``simulate()`` call inside every artifact
    — in this process and in fork-pool workers, which inherit the
    installed cache — is first looked up by canonical fingerprint and,
    on a miss, stored.  Identical simulations within the campaign
    deduplicate through the cache's in-process memo (and, across
    workers, through the shared directory); cached campaigns produce
    byte-identical artifacts, summaries and metrics exports.

    ``checkpoint_dir`` (with ``checkpoint_every`` slots and/or
    ``checkpoint_every_secs``) installs the process-wide auto-checkpoint
    policy for the duration of the campaign: every simulation inside
    every artifact — in this process and in fork-pool workers, which
    inherit the policy — periodically writes a crash-consistent
    checkpoint to ``checkpoint_dir`` and resumes from it after a kill,
    with byte-identical artifacts.  ``hung_after`` / ``max_restarts`` /
    ``rss_limit_bytes`` / ``registry`` supervise the worker pool (see
    :class:`CampaignRunner`).
    """
    from repro.experiments.runner import artifact_steps
    from repro.robustness.checkpoint import (
        clear_auto_checkpoints,
        install_auto_checkpoints,
    )

    target = Path(out_dir) if out_dir is not None else None
    if target is not None:
        target.mkdir(parents=True, exist_ok=True)
    if manifest_path is None and target is not None:
        manifest_path = target / "manifest.json"

    def wrap(step: Callable[[], Any]) -> Callable[[], Any]:
        def task():
            artifact = step()
            if target is not None:
                persist_text(
                    target / f"{artifact.name}.txt",
                    artifact.table + "\n",
                    site="artifact-table",
                    durability=Durability.ESSENTIAL,
                )
            return artifact

        return task

    tasks: List[Task] = [
        (name, wrap(step))
        for name, step in artifact_steps(
            num_requests,
            tightness_repeats,
            with_metrics=with_metrics,
            engine=engine,
        )
    ]
    runner = CampaignRunner(
        manifest_path=manifest_path,
        timeout=timeout,
        retry=retry,
        jobs=jobs,
        hung_after=hung_after,
        max_restarts=max_restarts,
        rss_limit_bytes=rss_limit_bytes,
        registry=registry,
    )
    if cache_dir is not None:
        from repro.sim.cache import install_result_cache

        install_result_cache(cache_dir, registry=registry)
    if checkpoint_dir is not None:
        if checkpoint_every is None and checkpoint_every_secs is None:
            from repro.robustness.checkpoint import DEFAULT_POLL_SLOTS

            checkpoint_every = DEFAULT_POLL_SLOTS
        install_auto_checkpoints(
            checkpoint_dir,
            every_slots=checkpoint_every,
            every_secs=checkpoint_every_secs,
        )
    try:
        result = runner.run(tasks, resume=resume, progress=progress)
    finally:
        if checkpoint_dir is not None:
            clear_auto_checkpoints()
        if cache_dir is not None:
            from repro.sim.cache import clear_result_cache

            clear_result_cache()

    if target is not None and result.manifest is not None:
        # Canonical order with per-task dedup: the manifest's in-memory
        # insertion order depends on which tasks were resumed from disk,
        # so iterating it directly would make the summary bytes depend
        # on where a previous run was killed.
        write_campaign_summaries(target, result)
    return result


def campaign_metrics(result: CampaignResult) -> "Any":
    """Merge the metrics of every completed artifact in ``result``.

    Outcomes are walked in campaign (canonical task) order; because the
    per-artifact registries are ``artifact``-labelled and therefore
    disjoint, any order yields the same rows.  Tasks that ran this
    invocation contribute their in-process registries; tasks *skipped on
    resume* contribute the rows their original run persisted in the
    manifest (see :func:`_default_payload`), so the merged export of an
    interrupted-and-resumed campaign is byte-identical to an
    uninterrupted one's.  Returns an empty registry when nothing
    carries metrics.
    """
    from repro.obs.metrics import merge_all, registry_from_rows

    registries = []
    for outcome in result.outcomes:
        if outcome.status == "done":
            metrics = getattr(outcome.result, "metrics", None)
            if metrics is not None:
                registries.append(metrics)
        elif outcome.status == "skipped" and result.manifest is not None:
            entry = result.manifest.entry(outcome.name) or {}
            payload = entry.get("payload") or {}
            rows = payload.get("metrics_rows")
            if rows:
                registries.append(registry_from_rows(rows))
    return merge_all(registries)


@dataclass
class RobustSweepResult:
    """A seed sweep that tolerates per-seed failures.

    ``result`` aggregates the seeds that completed (``None`` when every
    seed failed); ``quarantined_seeds`` names the rest, with the error
    recorded per seed in ``campaign``'s manifest/outcomes.
    """

    result: Optional[SweepResult]
    completed_seeds: Tuple[int, ...]
    quarantined_seeds: Tuple[int, ...]
    campaign: CampaignResult

    @property
    def complete(self) -> bool:
        """Whether every seed of the sweep completed."""
        return not self.quarantined_seeds


def sweep_seeds_robust(
    config: SystemConfig,
    trace_factory: TraceFactory,
    seeds: Sequence[int],
    check: Optional[Callable[[SimReport], None]] = None,
    runner: Optional[CampaignRunner] = None,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> RobustSweepResult:
    """Crash-tolerant :func:`repro.sim.sweeps.sweep_seeds`.

    Each seed runs as one campaign task (timeout/retry/quarantine apply
    per seed); failed seeds are quarantined and the sweep aggregates
    over the survivors instead of dying.  ``jobs > 1`` fans the seeds
    out across worker processes (ignored when an explicit ``runner`` is
    supplied — configure ``CampaignRunner(jobs=...)`` instead); results
    aggregate in canonical seed order either way.
    """
    require(bool(seeds), "sweep needs at least one seed", ConfigurationError)
    runner = runner or CampaignRunner(jobs=jobs)
    tasks: List[Task] = [
        (
            f"seed-{seed}",
            lambda seed=seed: run_seed(config, trace_factory, seed, check),
        )
        for seed in seeds
    ]
    campaign = runner.run(tasks, progress=progress)
    completed: List[int] = []
    observed: List[int] = []
    makespans: List[int] = []
    quarantined: List[int] = []
    for seed, outcome in zip(seeds, campaign.outcomes):
        if outcome.status == "done" and outcome.result is not None:
            completed.append(seed)
            observed.append(outcome.result.observed_wcl())
            makespans.append(outcome.result.makespan)
        else:
            quarantined.append(seed)
    result = (
        SweepResult(
            seeds=tuple(completed),
            observed_wcls=tuple(observed),
            makespans=tuple(makespans),
        )
        if completed
        else None
    )
    return RobustSweepResult(
        result=result,
        completed_seeds=tuple(completed),
        quarantined_seeds=tuple(quarantined),
        campaign=campaign,
    )
