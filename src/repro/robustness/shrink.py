"""Delta-debugging minimizer: failing fuzz case -> minimal repro artifact.

Given a failing :class:`~repro.robustness.fuzz.FuzzCase`, the shrinker
greedily removes structure — whole core traces, contiguous request
chunks (classic *ddmin* halving), partition set rows, and the injected
fault's slot index — re-running the full case (simulation + oracle)
after every candidate edit and keeping the edit only when the **failure
signature** is preserved.  Signature equivalence (not mere "still
fails") stops the minimizer from sliding off one bug onto a different
one mid-shrink.

The result is written as a self-contained JSON **repro artifact**: the
minimized case, the signature it must reproduce, and the shrink
statistics.  ``repro-llc repro FILE`` (or :func:`replay_artifact`)
re-runs the case deterministically and reports whether the recorded
failure still reproduces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.common.errors import FuzzError, ReproError
from repro.common.fileio import Durability, persist_text
from repro.robustness.fuzz import FuzzCase, FuzzCaseResult, run_fuzz_case

#: Schema version of repro artifacts.
ARTIFACT_VERSION = 1

#: Default cap on candidate evaluations per shrink run.
DEFAULT_MAX_EVALUATIONS = 300


# ----------------------------------------------------------------------
# Case editing helpers (cases are frozen; every edit builds a new one)
# ----------------------------------------------------------------------
def _clone_config(config: Dict[str, Any]) -> Dict[str, Any]:
    return json.loads(json.dumps(config))


def _with_traces(
    case: FuzzCase, traces: Dict[int, Tuple[str, ...]]
) -> FuzzCase:
    return FuzzCase(
        case_id=case.case_id,
        seed=case.seed,
        config=case.config,
        traces=traces,
        fault=case.fault,
    )


def _with_partition_sets(
    case: FuzzCase, index: int, sets: Any
) -> FuzzCase:
    config = _clone_config(case.config)
    config["partitions"][index]["sets"] = list(sets)
    return FuzzCase(
        case_id=case.case_id,
        seed=case.seed,
        config=config,
        traces=case.traces,
        fault=case.fault,
    )


def _with_fault_slot(case: FuzzCase, slot: int) -> FuzzCase:
    assert case.fault is not None
    fault = dict(case.fault)
    fault["slot"] = slot
    return FuzzCase(
        case_id=case.case_id,
        seed=case.seed,
        config=case.config,
        traces=case.traces,
        fault=fault,
    )


# ----------------------------------------------------------------------
# The shrinker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink run."""

    original: FuzzCase
    minimized: FuzzCase
    #: The preserved failure signature.
    signature: str
    #: Candidate evaluations spent.
    evaluations: int
    #: The minimized case's final verdict (violations, error, ...).
    final: FuzzCaseResult

    @property
    def original_requests(self) -> int:
        """Trace records in the original case."""
        return self.original.total_requests

    @property
    def minimized_requests(self) -> int:
        """Trace records left after shrinking."""
        return self.minimized.total_requests


class _Budget:
    """Counts oracle evaluations; an exhausted budget rejects all edits."""

    def __init__(self, signature: str, max_evaluations: int) -> None:
        self.signature = signature
        self.max_evaluations = max_evaluations
        self.spent = 0

    def keeps_signature(self, candidate: FuzzCase) -> bool:
        if self.spent >= self.max_evaluations:
            return False
        self.spent += 1
        try:
            return run_fuzz_case(candidate).signature == self.signature
        except ReproError:
            # A candidate edit produced an unbuildable scenario; the
            # edit is simply rejected.
            return False


def _shrink_whole_cores(case: FuzzCase, budget: _Budget) -> Tuple[FuzzCase, bool]:
    """Try emptying each core's trace entirely (cheapest big cut)."""
    changed = False
    for core in sorted(case.traces):
        if not case.traces[core]:
            continue
        candidate = _with_traces(case, {**case.traces, core: ()})
        if budget.keeps_signature(candidate):
            case = candidate
            changed = True
    return case, changed


def _shrink_requests(case: FuzzCase, budget: _Budget) -> Tuple[FuzzCase, bool]:
    """ddmin over each core's trace: drop halving-sized chunks."""
    changed = False
    for core in sorted(case.traces):
        lines = list(case.traces[core])
        chunk = len(lines) // 2
        while chunk >= 1:
            start = 0
            while start + chunk <= len(lines):
                shorter = lines[:start] + lines[start + chunk:]
                candidate = _with_traces(
                    case, {**case.traces, core: tuple(shorter)}
                )
                if budget.keeps_signature(candidate):
                    lines = shorter
                    case = candidate
                    changed = True
                else:
                    start += chunk
            chunk //= 2
    return case, changed


def _shrink_sets(case: FuzzCase, budget: _Budget) -> Tuple[FuzzCase, bool]:
    """Halve each partition's set list while the failure persists."""
    changed = False
    for index in range(len(case.config["partitions"])):
        while len(case.config["partitions"][index]["sets"]) > 1:
            sets = case.config["partitions"][index]["sets"]
            half = len(sets) // 2
            kept = None
            for keep in (sets[:half], sets[half:]):
                candidate = _with_partition_sets(case, index, keep)
                if budget.keeps_signature(candidate):
                    kept = candidate
                    break
            if kept is None:
                break
            case = kept
            changed = True
    return case, changed


def _shrink_fault(case: FuzzCase, budget: _Budget) -> Tuple[FuzzCase, bool]:
    """Pull the injected fault toward slot 0."""
    changed = False
    while case.fault is not None and case.fault["slot"] > 0:
        candidate = _with_fault_slot(case, case.fault["slot"] // 2)
        if budget.keeps_signature(candidate):
            case = candidate
            changed = True
        else:
            break
    return case, changed


_PASSES: Tuple[Callable[[FuzzCase, _Budget], Tuple[FuzzCase, bool]], ...] = (
    _shrink_whole_cores,
    _shrink_requests,
    _shrink_sets,
    _shrink_fault,
)


def shrink_case(
    case: FuzzCase,
    signature: Optional[str] = None,
    max_evaluations: int = DEFAULT_MAX_EVALUATIONS,
) -> ShrinkResult:
    """Minimize a failing case while preserving its failure signature.

    ``signature`` defaults to the case's own (one extra evaluation);
    passing a case that does not fail raises :class:`FuzzError`.  The
    passes run to a greedy fixpoint or until ``max_evaluations``
    candidate runs have been spent, whichever comes first.
    """
    if signature is None:
        signature = run_fuzz_case(case).signature
        if signature is None:
            raise FuzzError(
                f"case {case.case_id!r} does not fail; nothing to shrink"
            )
    budget = _Budget(signature, max_evaluations)
    minimized = case
    while True:
        any_change = False
        for shrink_pass in _PASSES:
            minimized, changed = shrink_pass(minimized, budget)
            any_change = any_change or changed
        if not any_change:
            break
    final = run_fuzz_case(minimized)
    if final.signature != signature:
        raise FuzzError(
            f"shrink of {case.case_id!r} lost the failure signature "
            f"({signature!r} became {final.signature!r}); "
            "the case is not deterministic"
        )
    return ShrinkResult(
        original=case,
        minimized=minimized,
        signature=signature,
        evaluations=budget.spent,
        final=final,
    )


# ----------------------------------------------------------------------
# Repro artifacts
# ----------------------------------------------------------------------
def artifact_dict(result: ShrinkResult) -> Dict[str, Any]:
    """The self-contained JSON form of a shrink result."""
    return {
        "artifact_version": ARTIFACT_VERSION,
        "case": result.minimized.to_dict(),
        "failure": {
            "signature": result.signature,
            "error": result.final.error,
            "violations": list(result.final.violations),
        },
        "shrink": {
            "original_requests": result.original_requests,
            "requests": result.minimized_requests,
            "evaluations": result.evaluations,
        },
    }


def write_artifact(path: Union[str, Path], result: ShrinkResult) -> Path:
    """Write the artifact JSON (stable layout) and return its path."""
    target = Path(path)
    persist_text(
        target,
        json.dumps(artifact_dict(result), indent=2, sort_keys=True) + "\n",
        site="repro-artifact",
        durability=Durability.ESSENTIAL,
    )
    return target


def load_artifact(path: Union[str, Path]) -> Tuple[FuzzCase, str]:
    """Load an artifact; returns (case, expected signature).

    Raises :class:`FuzzError` for unreadable, malformed or
    version-incompatible files.
    """
    target = Path(path)
    try:
        data = json.loads(target.read_text())
    except OSError as exc:
        raise FuzzError(f"repro artifact {target} is unreadable: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise FuzzError(f"repro artifact {target} is not JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise FuzzError(f"repro artifact {target} is malformed (not an object)")
    version = data.get("artifact_version")
    if version != ARTIFACT_VERSION:
        raise FuzzError(
            f"repro artifact {target} has version {version!r}; this build "
            f"reads version {ARTIFACT_VERSION}"
        )
    try:
        case = FuzzCase.from_dict(data["case"])
        signature = data["failure"]["signature"]
    except (KeyError, TypeError) as exc:
        raise FuzzError(f"repro artifact {target} is malformed: {exc}") from exc
    if not isinstance(signature, str):
        raise FuzzError(
            f"repro artifact {target} is malformed (signature not a string)"
        )
    return case, signature


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a repro artifact."""

    case: FuzzCase
    expected_signature: str
    result: FuzzCaseResult

    @property
    def reproduced(self) -> bool:
        """Whether the replay failed with the recorded signature."""
        return self.result.signature == self.expected_signature


def replay_artifact(path: Union[str, Path]) -> ReplayResult:
    """Re-run an artifact's case and compare against its signature."""
    case, signature = load_artifact(path)
    return ReplayResult(
        case=case,
        expected_signature=signature,
        result=run_fuzz_case(case),
    )
