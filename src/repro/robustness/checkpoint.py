"""Crash-consistent simulation checkpoints.

A checkpoint is a versioned, deterministic snapshot of the *complete*
mutable state of one :class:`~repro.sim.simulator.Simulator` — the
engine's slot cursor and completed-request log, every core's replay
position and private-cache contents, the LLC's entries, directory and
per-set replacement state, the bus buffers and arbiters, the DRAM
counters, the set sequencers (including queue identity inside the QLT
pool), the shared replacement-policy RNG stream, the per-slot sampler
arrays and the in-memory event log.  Restoring it into a freshly built
simulator of the same configuration and traces puts the system into a
state from which the run continues *bit-identically*: a run killed at
any instant and resumed from its last checkpoint produces the same
report, the same metrics export and the same trace bytes as an
uninterrupted run.

Design notes
------------

* **This module owns the format.**  Serialization deliberately reaches
  into the private attributes of the simulated components instead of
  spreading ``state_dict`` methods across twenty classes; the attribute
  inventory below *is* the checkpoint schema, and
  ``CHECKPOINT_VERSION`` must be bumped whenever any component gains or
  loses mutable state.
* **Restore mutates in place.**  The LLC's hot-path ``_region_cache``
  holds references to the very :class:`~repro.llc.llc.LlcEntry`
  objects in ``_entries``; load therefore mutates the existing entry
  objects (and rebuilds the block indexes) rather than replacing them.
  The same reasoning applies to the System-level RNG: every stochastic
  policy aliases ``system.rng``, so one ``setstate`` restores them all.
* **Crash consistency.**  The file is written with
  :func:`repro.common.fileio.atomic_write_text` (tmp + fsync + rename +
  directory fsync) and carries a SHA-256 integrity hash over its
  canonical-JSON payload, so a reader sees either the previous complete
  checkpoint or the new one — never a torn hybrid — and a corrupted
  file is detected rather than silently restored.
* **Refusals.**  States that cannot round-trip raise
  :class:`~repro.common.errors.CheckpointError` up front: ``oracle``
  replacement policies (the victim chooser is an arbitrary caller
  callback), foreign pre/post-slot hooks (fault injectors keep private
  state), and event sinks other than a path-owning
  :class:`~repro.obs.tracing.JsonlTraceSink`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.bus.buffers import (
    PendingRequest,
    PendingWritebackBuffer,
    WritebackEntry,
    WritebackReason,
)
from repro.cache.cacheset import CacheSet
from repro.cache.line import CacheLine
from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    MruPolicy,
    NmruPolicy,
    OraclePolicy,
    PlruTreePolicy,
    RandomPolicy,
    ReplacementPolicy,
    RoundRobinPolicy,
)
from repro.cache.sa_cache import SetAssociativeCache
from repro.common.errors import CheckpointError
from repro.common.fileio import (
    Durability,
    cleanup_stale_tmp,
    count_io,
    persist_text,
    read_text,
)
from repro.common.types import AccessType, EntryState, TransactionKind
from repro.cpu.core import CoreState, TraceDrivenCore
from repro.cpu.private_stack import PrivateStack
from repro.llc.llc import PartitionedLlc
from repro.sequencer.set_sequencer import SetSequencer
from repro.sim.events import EventKind, SimEvent
from repro.workloads.trace import MemoryTrace

#: Bumped on any change to the payload layout below.
CHECKPOINT_VERSION = 1

#: File-format discriminator, so an unrelated JSON file is rejected
#: with a clear message instead of a cryptic missing-key error.
CHECKPOINT_KIND = "repro-sim-checkpoint"

#: The default checkpoint interval, in slots; also the poll granularity
#: when only a time-based interval is configured (the loop must pause
#: the engine to look at the clock).  A save costs O(live state +
#: completed requests), so the interval bounds the steady-state
#: overhead (benchmarked < 10% in
#: ``benchmarks/test_bench_checkpoint_overhead.py``) while a kill loses
#: at most this many slots of progress — well under a second of rework.
DEFAULT_POLL_SLOTS = 16384


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def config_fingerprint(config) -> str:
    """SHA-256 over the config's repr.

    ``SystemConfig`` and everything it nests are (frozen) dataclasses
    and enums with deterministic reprs, so two configs fingerprint
    equal iff they would build identical systems.  The ``engine`` field
    is part of the repr, which is what makes restoring a ``fast``
    checkpoint under the ``reference`` engine (or vice versa) a refused
    mismatch instead of a silent divergence.
    """
    return hashlib.sha256(repr(config).encode()).hexdigest()


def trace_fingerprint(trace: MemoryTrace) -> str:
    """SHA-256 over a trace's name and canonical record lines.

    Traces are immutable, so the digest is memoised on the trace
    object: periodic checkpointing fingerprints the same workload once
    per *save*, and recomputing a long trace's hash every interval was
    the dominant snapshot cost.
    """
    cached = getattr(trace, "_checkpoint_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(trace.name.encode())
    for record in trace:
        digest.update(b"\n")
        digest.update(record.to_line().encode())
    fingerprint = digest.hexdigest()
    trace._checkpoint_fingerprint = fingerprint
    return fingerprint


def trace_fingerprints(traces: Mapping[int, MemoryTrace]) -> Dict[str, str]:
    """Per-core trace fingerprints (JSON keys must be strings)."""
    return {
        str(core): trace_fingerprint(trace)
        for core, trace in sorted(traces.items())
    }


def combined_fingerprint(config, traces: Mapping[int, MemoryTrace]) -> str:
    """One short stable identity for (config, traces) — names files."""
    digest = hashlib.sha256()
    digest.update(config_fingerprint(config).encode())
    for core, fp in sorted(trace_fingerprints(traces).items()):
        digest.update(f"{core}:{fp}".encode())
    return digest.hexdigest()


def default_checkpoint_path(
    directory: Union[str, Path], config, traces: Mapping[int, MemoryTrace]
) -> Path:
    """Deterministic checkpoint filename for one (config, traces) run."""
    return Path(directory) / f"sim-{combined_fingerprint(config, traces)[:24]}.ckpt"


# ----------------------------------------------------------------------
# Per-component state (snapshot / load pairs)
# ----------------------------------------------------------------------
def _stats_state(stats) -> Dict[str, int]:
    return {
        field.name: getattr(stats, field.name)
        for field in dataclasses.fields(stats)
    }


def _load_stats(stats, state: Mapping[str, int]) -> None:
    for field in dataclasses.fields(stats):
        setattr(stats, field.name, state[field.name])


def _policy_state(policy: ReplacementPolicy) -> Dict[str, Any]:
    if isinstance(policy, (LruPolicy, MruPolicy)):
        return {"clock": policy._clock, "last_use": list(policy._last_use)}
    if isinstance(policy, NmruPolicy):
        return {"mru": policy._mru}
    if isinstance(policy, FifoPolicy):
        return {"clock": policy._clock, "filled_at": list(policy._filled_at)}
    if isinstance(policy, RoundRobinPolicy):
        return {"pointer": policy._pointer}
    if isinstance(policy, RandomPolicy):
        # Draws from the System-level shared stream, restored once.
        return {}
    if isinstance(policy, PlruTreePolicy):
        return {"bits": list(policy._bits)}
    if isinstance(policy, OraclePolicy):
        raise CheckpointError(
            "cannot checkpoint an 'oracle' replacement policy: its victim "
            "chooser is a caller-supplied callback whose state lives "
            "outside the simulator"
        )
    raise CheckpointError(
        f"cannot checkpoint unknown replacement policy "
        f"{type(policy).__name__}"
    )


def _load_policy(policy: ReplacementPolicy, state: Mapping[str, Any]) -> None:
    if isinstance(policy, (LruPolicy, MruPolicy)):
        policy._clock = state["clock"]
        policy._last_use = list(state["last_use"])
    elif isinstance(policy, NmruPolicy):
        policy._mru = state["mru"]
    elif isinstance(policy, FifoPolicy):
        policy._clock = state["clock"]
        policy._filled_at = list(state["filled_at"])
    elif isinstance(policy, RoundRobinPolicy):
        policy._pointer = state["pointer"]
    elif isinstance(policy, RandomPolicy):
        pass
    elif isinstance(policy, PlruTreePolicy):
        policy._bits = list(state["bits"])
    else:
        raise CheckpointError(
            f"cannot restore unknown replacement policy {type(policy).__name__}"
        )


def _cacheset_state(cache_set: CacheSet) -> Dict[str, Any]:
    return {
        "slots": [
            None if line is None else [line.block, line.dirty]
            for line in cache_set._slots
        ],
        "policy": _policy_state(cache_set.policy),
    }


def _load_cacheset(cache_set: CacheSet, state: Mapping[str, Any]) -> None:
    slots: List[Optional[CacheLine]] = []
    index: Dict[int, int] = {}
    for way, stored in enumerate(state["slots"]):
        if stored is None:
            slots.append(None)
        else:
            block, dirty = stored
            slots.append(CacheLine(block=block, dirty=dirty))
            index[block] = way
    cache_set._slots = slots
    cache_set._index = index
    _load_policy(cache_set.policy, state["policy"])


def _sa_cache_state(cache: SetAssociativeCache) -> Dict[str, Any]:
    return {
        "stats": _stats_state(cache.stats),
        "sets": [_cacheset_state(cache_set) for cache_set in cache._sets],
    }


def _load_sa_cache(cache: SetAssociativeCache, state: Mapping[str, Any]) -> None:
    _load_stats(cache.stats, state["stats"])
    if len(state["sets"]) != len(cache._sets):
        raise CheckpointError(
            f"cache {cache.name}: checkpoint has {len(state['sets'])} sets, "
            f"the built cache has {len(cache._sets)}"
        )
    for cache_set, set_state in zip(cache._sets, state["sets"]):
        _load_cacheset(cache_set, set_state)


def _stack_state(stack: PrivateStack) -> Dict[str, Any]:
    return {
        "l1i": None if stack.l1i is None else _sa_cache_state(stack.l1i),
        "l1d": None if stack.l1d is None else _sa_cache_state(stack.l1d),
        "l2": _sa_cache_state(stack.l2),
        "version": stack.version,
    }


def _load_stack(stack: PrivateStack, state: Mapping[str, Any]) -> None:
    for level, stored in (("l1i", state["l1i"]), ("l1d", state["l1d"])):
        cache = getattr(stack, level)
        if (cache is None) != (stored is None):
            raise CheckpointError(
                f"core {stack.core}: checkpoint and config disagree on "
                f"whether {level} exists"
            )
        if cache is not None:
            _load_sa_cache(cache, stored)
    _load_sa_cache(stack.l2, state["l2"])
    stack.version = state["version"]


def _core_state(core: TraceDrivenCore) -> Dict[str, Any]:
    return {
        "state": core.state.value,
        "time": core.time,
        "position": core.position,
        "gap_applied": core._gap_applied,
        "finish_time": core.finish_time,
        "private_hits": core.private_hits,
        "llc_requests": core.llc_requests,
    }


def _load_core(core: TraceDrivenCore, state: Mapping[str, Any]) -> None:
    core.state = CoreState(state["state"])
    core.time = state["time"]
    core.position = state["position"]
    core._gap_applied = state["gap_applied"]
    core.finish_time = state["finish_time"]
    core.private_hits = state["private_hits"]
    core.llc_requests = state["llc_requests"]
    # The next-miss prediction cache is pure derived state; recompute.
    core._prediction = None
    core._prediction_version = None


def _request_state(request: PendingRequest) -> List[Any]:
    # Compact positional form: the completed-request list dominates the
    # payload on long runs (one entry per served request), so field
    # names would triple the checkpoint size and the JSON encode cost.
    return [
        request.core,
        request.block,
        request.access.value,
        request.enqueued_at,
        request.first_on_bus_at,
        request.completed_at,
        request.bus_attempts,
        request.served_by_hit,
    ]


def _load_request(state: List[Any]) -> PendingRequest:
    (
        core,
        block,
        access,
        enqueued_at,
        first_on_bus_at,
        completed_at,
        bus_attempts,
        served_by_hit,
    ) = state
    return PendingRequest(
        core=core,
        block=block,
        access=AccessType(access),
        enqueued_at=enqueued_at,
        first_on_bus_at=first_on_bus_at,
        completed_at=completed_at,
        bus_attempts=bus_attempts,
        served_by_hit=served_by_hit,
    )


def _completed_state(completed: List[PendingRequest]) -> List[Any]:
    # The completed-request log grows one entry per served request and
    # dominates long-run checkpoints, so it is flattened to one stride-8
    # value array: a flat list both builds and JSON-encodes about
    # twice as fast as 20k nested lists, which is what keeps the
    # periodic-save overhead inside the benchmark budget.  Entries here
    # are always completed, so no field needs a null.
    flat: List[Any] = []
    for request in completed:
        flat.extend(
            (
                request.core,
                request.block,
                request.access.value,
                request.enqueued_at,
                request.first_on_bus_at,
                request.completed_at,
                request.bus_attempts,
                1 if request.served_by_hit else 0,
            )
        )
    return flat


def _load_completed(flat: List[Any]) -> List[PendingRequest]:
    return [
        PendingRequest(
            core=flat[i],
            block=flat[i + 1],
            access=AccessType(flat[i + 2]),
            enqueued_at=flat[i + 3],
            first_on_bus_at=flat[i + 4],
            completed_at=flat[i + 5],
            bus_attempts=flat[i + 6],
            served_by_hit=bool(flat[i + 7]),
        )
        for i in range(0, len(flat), 8)
    ]


def _pwb_state(pwb: PendingWritebackBuffer) -> Dict[str, Any]:
    return {
        "entries": [
            {
                "core": entry.core,
                "block": entry.block,
                "reason": entry.reason.value,
                "enqueued_at": entry.enqueued_at,
            }
            for entry in pwb._entries
        ],
        "max_occupancy": pwb.max_occupancy,
    }


def _load_pwb(pwb: PendingWritebackBuffer, state: Mapping[str, Any]) -> None:
    pwb._entries.clear()
    for stored in state["entries"]:
        pwb._entries.append(
            WritebackEntry(
                core=stored["core"],
                block=stored["block"],
                reason=WritebackReason(stored["reason"]),
                enqueued_at=stored["enqueued_at"],
            )
        )
    pwb.max_occupancy = state["max_occupancy"]


def _llc_state(llc: PartitionedLlc) -> Dict[str, Any]:
    return {
        "stats": _stats_state(llc.stats),
        "extra": _stats_state(llc.extra),
        "directory": [
            [block, sorted(owners)]
            for block, owners in sorted(llc.directory._owners.items())
        ],
        "entries": [
            [
                {
                    "state": entry.state.value,
                    "block": entry.block,
                    "dirty": entry.dirty,
                    "pending_writers": sorted(entry.pending_writers),
                }
                for entry in row
            ]
            for row in llc._entries
        ],
        "policies": [_policy_state(policy) for policy in llc._policies],
    }


def _load_llc(llc: PartitionedLlc, state: Mapping[str, Any]) -> None:
    _load_stats(llc.stats, state["stats"])
    _load_stats(llc.extra, state["extra"])
    llc.directory._owners = {
        block: set(owners) for block, owners in state["directory"]
    }
    rows = state["entries"]
    if len(rows) != len(llc._entries) or any(
        len(row) != len(live) for row, live in zip(rows, llc._entries)
    ):
        raise CheckpointError(
            "LLC geometry of the checkpoint does not match the built cache"
        )
    # Mutate the existing LlcEntry objects: the region cache (and any
    # outstanding reference) aliases them, so replacing them would
    # silently detach the hot path from the restored state.
    llc._valid_index = {}
    llc._pending_index = {}
    for live_row, stored_row in zip(llc._entries, rows):
        for entry, stored in zip(live_row, stored_row):
            entry.state = EntryState(stored["state"])
            entry.block = stored["block"]
            entry.dirty = stored["dirty"]
            entry.pending_writers = set(stored["pending_writers"])
            if entry.is_valid:
                llc._valid_index[entry.block] = entry
            elif entry.is_pending:
                llc._pending_index[entry.block] = entry
    if len(state["policies"]) != len(llc._policies):
        raise CheckpointError(
            "LLC policy count of the checkpoint does not match the built cache"
        )
    for policy, stored in zip(llc._policies, state["policies"]):
        _load_policy(policy, stored)


def _sequencer_state(sequencer: SetSequencer) -> Dict[str, Any]:
    qlt = sequencer.qlt
    # Queue objects migrate between the QLT's mapping and its free pool
    # but are never destroyed, and SequencerQueue.max_depth persists
    # across reuse — so queues are serialized by identity (queue_id),
    # along with the mapping and the exact free-pool order (allocation
    # order is pop-from-end, which affects future queue ids).
    queues = {}
    for queue in list(qlt._mapping.values()) + list(qlt._free_queues):
        queues[queue.queue_id] = {
            "cores": list(queue._cores),
            "max_depth": queue.max_depth,
        }
    return {
        "stats": _stats_state(sequencer.stats),
        "queued_set": sorted(sequencer._queued_set.items()),
        "unsequenced": sorted(sequencer._unsequenced),
        "qlt": {
            "overflows": qlt.overflows,
            "queues": sorted(queues.items()),
            "mapping": sorted(
                [set_index, queue.queue_id]
                for set_index, queue in qlt._mapping.items()
            ),
            "free": [queue.queue_id for queue in qlt._free_queues],
        },
    }


def _load_sequencer(sequencer: SetSequencer, state: Mapping[str, Any]) -> None:
    _load_stats(sequencer.stats, state["stats"])
    sequencer._queued_set = {core: s for core, s in state["queued_set"]}
    sequencer._unsequenced = set(state["unsequenced"])
    qlt = sequencer.qlt
    qlt.overflows = state["qlt"]["overflows"]
    by_id = {
        queue.queue_id: queue
        for queue in list(qlt._mapping.values()) + list(qlt._free_queues)
    }
    stored_ids = {queue_id for queue_id, _ in state["qlt"]["queues"]}
    if stored_ids != set(by_id):
        raise CheckpointError(
            "sequencer queue pool of the checkpoint does not match the "
            "built QLT (different sequencer_max_queues?)"
        )
    for queue_id, stored in state["qlt"]["queues"]:
        queue = by_id[queue_id]
        queue._cores.clear()
        queue._cores.extend(stored["cores"])
        queue.max_depth = stored["max_depth"]
    qlt._mapping = {
        set_index: by_id[queue_id]
        for set_index, queue_id in state["qlt"]["mapping"]
    }
    qlt._free_queues = [by_id[queue_id] for queue_id in state["qlt"]["free"]]


def _event_state(event: SimEvent) -> List[Any]:
    return [
        event.cycle,
        event.slot,
        event.kind.value,
        event.core,
        event.block,
        event.set_index,
        event.way,
        event.detail,
    ]


def _load_event(state: List[Any]) -> SimEvent:
    cycle, slot, kind, core, block, set_index, way, detail = state
    return SimEvent(
        cycle=cycle,
        slot=slot,
        kind=EventKind(kind),
        core=core,
        block=block,
        set_index=set_index,
        way=way,
        detail=detail,
    )


def _rng_state(rng) -> Dict[str, Any]:
    version, internal, gauss = rng.getstate()
    return {"version": version, "state": list(internal), "gauss": gauss}


def _load_rng(rng, state: Mapping[str, Any]) -> None:
    rng.setstate((state["version"], tuple(state["state"]), state["gauss"]))


# ----------------------------------------------------------------------
# Whole-simulator snapshot / restore
# ----------------------------------------------------------------------
def _check_checkpointable(sim) -> None:
    config = sim.config
    if config.llc_policy == "oracle" or config.stack.policy == "oracle":
        raise CheckpointError(
            "cannot checkpoint a simulation using the 'oracle' replacement "
            "policy: the victim chooser is caller state outside the simulator"
        )
    engine = sim.engine
    if engine._pre_slot_hooks:
        raise CheckpointError(
            "cannot checkpoint an engine with pre-slot hooks installed "
            "(fault injectors keep private state the checkpoint cannot carry)"
        )
    allowed_post = None if sim.monitor is None else sim.monitor.on_slot
    for hook in engine._post_slot_hooks:
        if allowed_post is None or hook != allowed_post:
            raise CheckpointError(
                "cannot checkpoint an engine with foreign post-slot hooks "
                "installed; only the checked-mode invariant monitor is "
                "re-seedable on restore"
            )


def _sink_states(sim) -> List[Dict[str, Any]]:
    from repro.obs.tracing import JsonlTraceSink

    states: List[Dict[str, Any]] = []
    for sink in sim.engine.events._sinks:
        if not isinstance(sink, JsonlTraceSink):
            raise CheckpointError(
                "cannot checkpoint an engine with a non-JsonlTraceSink "
                f"event sink ({type(sink).__name__}); arbitrary sink state "
                "cannot be carried across a restore"
            )
        states.append(sink.checkpoint_state())
    return states


def snapshot_simulator(sim) -> Dict[str, Any]:
    """The full checkpoint payload (pure JSON values) of ``sim``."""
    _check_checkpointable(sim)
    engine = sim.engine
    system = sim.system
    state: Dict[str, Any] = {
        "rng": _rng_state(system.rng),
        "engine": {
            "slot": engine._slot,
            "completed": _completed_state(engine._completed),
            "finished_cores": sorted(engine._finished_cores),
            "slot_usage": [
                [core, dict(usage)]
                for core, usage in sorted(engine._slot_usage.items())
            ],
            "ff_skip": engine._ff_skip,
            "ff_penalty": engine._ff_penalty,
        },
        "events": (
            [_event_state(event) for event in engine.events._events]
            if engine.events.enabled
            else None
        ),
        "cores": [
            [core_id, _core_state(core)]
            for core_id, core in sorted(system.cores.items())
        ],
        "stacks": [
            [core_id, _stack_state(stack)]
            for core_id, stack in sorted(system.stacks.items())
        ],
        "prbs": [
            [core_id, None if prb._entry is None else _request_state(prb._entry)]
            for core_id, prb in sorted(system.prbs.items())
        ],
        "pwbs": [
            [core_id, _pwb_state(pwb)]
            for core_id, pwb in sorted(system.pwbs.items())
        ],
        "arbiters": [
            [
                core_id,
                {
                    "preferred": arbiter._preferred.value,
                    "contended_slots": arbiter.contended_slots,
                },
            ]
            for core_id, arbiter in sorted(system.arbiters.items())
        ],
        "llc": _llc_state(system.llc),
        "dram": {
            "stats": _stats_state(system.dram.stats),
            "free_at": system.dram._free_at,
        },
        "sequencers": [
            [name, _sequencer_state(sequencer)]
            for name, sequencer in sorted(system.sequencers.items())
        ],
    }
    if engine._sampler is not None:
        sampler = engine._sampler
        state["sampler"] = {
            "pwb_occ": [list(occ) for occ in sampler._pwb_occ],
            "prb_occ": [list(occ) for occ in sampler._prb_occ],
            "seq_occ": [list(occ) for occ in sampler._seq_occ],
            "slots_sampled": sampler.slots_sampled,
        }
    else:
        state["sampler"] = None
    return {
        "kind": CHECKPOINT_KIND,
        "version": CHECKPOINT_VERSION,
        "config": config_fingerprint(sim.config),
        "traces": trace_fingerprints(
            {core_id: core.trace for core_id, core in sim.system.cores.items()}
        ),
        "sinks": _sink_states(sim),
        "state": state,
    }


def restore_simulator(sim, payload: Mapping[str, Any]) -> None:
    """Load a checkpoint payload into a freshly built ``sim`` in place.

    ``sim`` must have been constructed from the same configuration and
    traces the checkpoint was taken under (verified by fingerprint) and
    must not have been run yet.
    """
    _check_checkpointable(sim)
    expected_config = config_fingerprint(sim.config)
    if payload["config"] != expected_config:
        raise CheckpointError(
            "checkpoint was taken under a different configuration "
            f"(fingerprint {payload['config'][:12]}… != {expected_config[:12]}…); "
            "restore with the exact config — including the engine choice — "
            "the checkpoint was written with, or delete it to start fresh"
        )
    live_traces = trace_fingerprints(
        {core_id: core.trace for core_id, core in sim.system.cores.items()}
    )
    if payload["traces"] != live_traces:
        raise CheckpointError(
            "checkpoint was taken under different workload traces; restore "
            "with the same traces or delete the checkpoint to start fresh"
        )
    if len(payload["sinks"]) != len(sim.engine.events._sinks):
        raise CheckpointError(
            f"checkpoint recorded {len(payload['sinks'])} event sink(s) but "
            f"{len(sim.engine.events._sinks)} are attached; reopen the trace "
            "sink(s) from the checkpoint's sink state before restoring "
            "(see JsonlTraceSink.reopen)"
        )

    engine = sim.engine
    system = sim.system
    state = payload["state"]

    _load_rng(system.rng, state["rng"])
    engine._slot = state["engine"]["slot"]
    engine._completed = _load_completed(state["engine"]["completed"])
    engine._finished_cores = set(state["engine"]["finished_cores"])
    engine._slot_usage = {
        core: dict(usage) for core, usage in state["engine"]["slot_usage"]
    }
    engine._ff_skip = state["engine"]["ff_skip"]
    engine._ff_penalty = state["engine"]["ff_penalty"]
    # Progress counters are derived; run() rebuilds them from a scan.
    engine._counters_ready = False
    if engine.events.enabled:
        if state["events"] is None:
            raise CheckpointError(
                "checkpoint carries no event log but record_events is on"
            )
        engine.events._events = [_load_event(e) for e in state["events"]]
    for core_id, stored in state["cores"]:
        _load_core(system.cores[core_id], stored)
    for core_id, stored in state["stacks"]:
        _load_stack(system.stacks[core_id], stored)
    for core_id, stored in state["prbs"]:
        system.prbs[core_id]._entry = (
            None if stored is None else _load_request(stored)
        )
    for core_id, stored in state["pwbs"]:
        _load_pwb(system.pwbs[core_id], stored)
    for core_id, stored in state["arbiters"]:
        arbiter = system.arbiters[core_id]
        arbiter._preferred = TransactionKind(stored["preferred"])
        arbiter.contended_slots = stored["contended_slots"]
    _load_llc(system.llc, state["llc"])
    _load_stats(system.dram.stats, state["dram"]["stats"])
    system.dram._free_at = state["dram"]["free_at"]
    stored_sequencers = dict(state["sequencers"])
    if set(stored_sequencers) != set(system.sequencers):
        raise CheckpointError(
            "checkpoint and config disagree on which partitions have a "
            "set sequencer"
        )
    for name, sequencer in system.sequencers.items():
        _load_sequencer(sequencer, stored_sequencers[name])
    if engine._sampler is not None:
        if state["sampler"] is None:
            raise CheckpointError(
                "checkpoint carries no sampler arrays but record_metrics is on"
            )
        sampler = engine._sampler
        sampler._pwb_occ = [list(occ) for occ in state["sampler"]["pwb_occ"]]
        sampler._prb_occ = [list(occ) for occ in state["sampler"]["prb_occ"]]
        sampler._seq_occ = [list(occ) for occ in state["sampler"]["seq_occ"]]
        sampler.slots_sampled = state["sampler"]["slots_sampled"]
    if sim.monitor is not None:
        sim.monitor.seed_resume(engine)


# ----------------------------------------------------------------------
# File format
# ----------------------------------------------------------------------
def save_checkpoint(
    sim,
    path: Union[str, Path],
    registry=None,
    *,
    durability: Durability = Durability.ESSENTIAL,
    site: str = "checkpoint",
) -> Optional[Path]:
    """Snapshot ``sim`` and write it crash-consistently to ``path``.

    An explicitly requested checkpoint file is ESSENTIAL (a failed save
    raises :class:`~repro.common.errors.PersistenceError` after bounded
    retries); auto-checkpoints installed via the directory policy are
    saved BEST-EFFORT (``site="auto-checkpoint"``) — a failed save
    degrades through the circuit breaker, returns ``None`` and the
    simulation continues uncheckpointed but correct.
    """
    payload = snapshot_simulator(sim)
    body = _canonical(payload)
    digest = hashlib.sha256(body.encode()).hexdigest()
    # Splice the already-canonical body in by hand rather than dumping
    # the payload a second time: "integrity" < "payload" sorts first, so
    # the bytes match a full canonical dump of the document exactly.
    document = '{"integrity":"%s","payload":%s}' % (digest, body)
    target = persist_text(
        path, document + "\n", site=site, durability=durability
    )
    if registry is not None and target is not None:
        registry.counter("checkpoint.saves").inc()
        registry.counter("checkpoint.bytes").inc(len(document) + 1)
    return target


def load_checkpoint(path: Union[str, Path], registry=None) -> Dict[str, Any]:
    """Read, integrity-check and version-check a checkpoint payload."""
    path = Path(path)
    try:
        text = read_text(path, site="checkpoint")
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON (truncated or corrupted "
            f"write?): {exc}"
        ) from exc
    if not isinstance(document, dict) or "payload" not in document:
        raise CheckpointError(
            f"{path} is not a repro checkpoint file (no payload section)"
        )
    payload = document["payload"]
    recomputed = hashlib.sha256(_canonical(payload).encode()).hexdigest()
    if document.get("integrity") != recomputed:
        raise CheckpointError(
            f"checkpoint {path} failed its integrity check: the file was "
            "corrupted after it was written; delete it to start fresh"
        )
    if payload.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(
            f"{path} is not a simulation checkpoint "
            f"(kind={payload.get('kind')!r})"
        )
    version = payload.get("version")
    if not isinstance(version, int):
        raise CheckpointError(
            f"checkpoint {path} has a malformed version field {version!r}"
        )
    if version > CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version}, written by a newer "
            f"repro build (this build reads version {CHECKPOINT_VERSION}); "
            "upgrade this installation or delete the checkpoint to rerun "
            "from scratch"
        )
    if version < 1:
        raise CheckpointError(
            f"checkpoint {path} has unsupported version {version}"
        )
    if registry is not None:
        registry.counter("checkpoint.restores").inc()
    return payload


def checkpoint_sink_states(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """The trace-sink resume states recorded in a checkpoint file.

    Callers that traced to disk use this *before* building the restore
    sink: ``JsonlTraceSink.reopen(trace_path, states[0])`` truncates the
    trace file back to the checkpointed offset so resumed events append
    exactly where the checkpoint left off.
    """
    return list(load_checkpoint(path)["sinks"])


# ----------------------------------------------------------------------
# Auto-checkpoint policy and the resumable drive loop
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AutoCheckpointPolicy:
    """Process-wide periodic checkpointing installed by the CLI/runner.

    ``directory`` receives one checkpoint file per (config, traces)
    identity (:func:`default_checkpoint_path`), so concurrent campaign
    tasks — and fork-pool workers, which inherit the installed policy —
    never collide.  ``every_slots`` checkpoints at slot-count intervals;
    ``every_secs`` at wall-clock intervals (polled every
    ``DEFAULT_POLL_SLOTS`` slots).  At least one must be set.
    """

    directory: Path
    every_slots: Optional[int] = None
    every_secs: Optional[float] = None

    def __post_init__(self) -> None:
        if self.every_slots is None and self.every_secs is None:
            raise CheckpointError(
                "an auto-checkpoint policy needs every_slots or every_secs"
            )
        if self.every_slots is not None and self.every_slots <= 0:
            raise CheckpointError(
                f"every_slots must be positive, got {self.every_slots}"
            )
        if self.every_secs is not None and self.every_secs <= 0:
            raise CheckpointError(
                f"every_secs must be positive, got {self.every_secs}"
            )


_AUTO_POLICY: Optional[AutoCheckpointPolicy] = None


def install_auto_checkpoints(
    directory: Union[str, Path],
    every_slots: Optional[int] = None,
    every_secs: Optional[float] = None,
) -> AutoCheckpointPolicy:
    """Install the process-wide auto-checkpoint policy.

    Every subsequent :func:`repro.sim.simulator.simulate` call without
    explicit checkpoint arguments runs resumably against ``directory``.
    Fork-pool workers inherit the installed policy, which is how the
    campaign runner threads checkpointing through ``fig7``/``fig8``/
    ``compare``/``all`` without each experiment knowing.  ``fuzz`` is
    the deliberate exception: its cases carry fault hooks and oracle
    recordings (both refused by :func:`save_checkpoint`) and resume at
    case granularity through the fuzz manifest instead.
    """
    global _AUTO_POLICY
    _AUTO_POLICY = AutoCheckpointPolicy(
        directory=Path(directory),
        every_slots=every_slots,
        every_secs=every_secs,
    )
    return _AUTO_POLICY


def clear_auto_checkpoints() -> None:
    """Remove the process-wide auto-checkpoint policy."""
    global _AUTO_POLICY
    _AUTO_POLICY = None


def auto_checkpoint_policy() -> Optional[AutoCheckpointPolicy]:
    """The installed policy, if any."""
    return _AUTO_POLICY


def run_resumable(
    config,
    traces,
    *,
    path: Union[str, Path],
    every_slots: Optional[int] = None,
    every_secs: Optional[float] = None,
    start_cycles=None,
    event_sink=None,
    engine: Optional[str] = None,
    registry=None,
    clock: Callable[[], float] = time.monotonic,
    durability: Durability = Durability.ESSENTIAL,
    site: str = "checkpoint",
):
    """Run a simulation with periodic checkpoints, resuming if one exists.

    The drive loop pauses the engine every ``every_slots`` slots (or
    every ``DEFAULT_POLL_SLOTS`` when only ``every_secs`` is given),
    writes a crash-consistent checkpoint, and continues.  If ``path``
    already holds a checkpoint, the run resumes from it instead of
    starting over; the checkpoint file is deleted on normal completion.
    The returned report — and any metrics/trace output built from the
    simulator — is byte-identical to an uninterrupted run.

    ``durability`` governs the periodic saves (see
    :func:`save_checkpoint`).  Under ``BEST_EFFORT`` a checkpoint that
    fails to *load* (corrupted on disk) is also tolerated: the bad file
    is deleted, counted in ``io.degraded.<site>``, and the run restarts
    from scratch — an auto-checkpoint is an accelerator, never a
    correctness dependency.
    """
    from repro.sim.simulator import Simulator

    path = Path(path)
    cleanup_stale_tmp(path)
    sim = None
    if path.exists():
        try:
            sim = Simulator.restore(
                path,
                config,
                traces,
                start_cycles=start_cycles,
                event_sink=event_sink,
                engine=engine,
                registry=registry,
            )
        except CheckpointError:
            if durability is Durability.ESSENTIAL:
                raise
            count_io(f"io.degraded.{site}")
            path.unlink(missing_ok=True)
    if sim is None:
        sim = Simulator(config, traces, start_cycles, event_sink, engine)
    interval = every_slots if every_slots is not None else DEFAULT_POLL_SLOTS
    last_save = clock()
    while True:
        sim.engine.advance(stop_at_slot=sim.engine._slot + interval)
        if sim.engine.run_complete():
            # Only the finished run pays for report construction; the
            # paused chunks above advance the engine report-free.
            report = sim.engine.run()
            sim.system.check_inclusivity()
            try:
                path.unlink(missing_ok=True)
            except OSError:
                # A leftover checkpoint of a *completed* run only costs
                # one restore on the next identical invocation; the
                # restored end-state replays to the same report.
                count_io("io.swallowed.checkpoint-unlink")
            return report
        if every_secs is not None:
            now = clock()
            if now - last_save < every_secs:
                continue
            last_save = now
        save_checkpoint(
            sim, path, registry=registry, durability=durability, site=site
        )
