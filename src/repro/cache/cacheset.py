"""One set of a private set-associative cache.

Stores up to ``ways`` lines, keyed by block address for O(1) lookup,
with way slots managed explicitly so replacement policies can reason in
way indices (as real hardware does).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.line import CacheLine, EvictedLine
from repro.cache.replacement import ReplacementPolicy
from repro.common.errors import SimulationError
from repro.common.types import BlockAddress


class CacheSet:
    """A single cache set with explicit way slots.

    The set does not know its own index within the cache; the enclosing
    cache handles address decomposition and passes block addresses down.
    """

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        if policy.ways != ways:
            raise SimulationError(
                f"policy manages {policy.ways} ways but set has {ways}"
            )
        self.ways = ways
        self.policy = policy
        self._slots: List[Optional[CacheLine]] = [None] * ways
        self._index: Dict[BlockAddress, int] = {}

    def __len__(self) -> int:
        return len(self._index)

    @property
    def is_full(self) -> bool:
        """Whether every way holds a valid line."""
        return len(self._index) == self.ways

    def resident_blocks(self) -> List[BlockAddress]:
        """Block addresses currently stored in this set."""
        return list(self._index)

    def find(self, block: BlockAddress) -> Optional[CacheLine]:
        """Return the line for ``block`` without touching policy state."""
        way = self._index.get(block)
        return None if way is None else self._slots[way]

    def touch(self, block: BlockAddress, is_write: bool) -> bool:
        """Record a hit on ``block``; returns False if it is absent."""
        way = self._index.get(block)
        if way is None:
            return False
        line = self._slots[way]
        assert line is not None
        if is_write:
            line.dirty = True
        self.policy.on_access(way)
        return True

    def fill(self, block: BlockAddress, dirty: bool) -> Optional[EvictedLine]:
        """Install ``block``; returns the displaced line, if any.

        Filling a block that is already resident is a simulator bug (the
        caller should have hit), so it raises :class:`SimulationError`.
        """
        if block in self._index:
            raise SimulationError(f"fill of already-resident block {block:#x}")
        evicted: Optional[EvictedLine] = None
        way = self._free_way()
        if way is None:
            way = self.policy.victim(list(range(self.ways)))
            victim = self._slots[way]
            assert victim is not None
            evicted = EvictedLine(block=victim.block, dirty=victim.dirty)
            del self._index[victim.block]
            self.policy.on_invalidate(way)
        self._slots[way] = CacheLine(block=block, dirty=dirty)
        self._index[block] = way
        self.policy.on_fill(way)
        return evicted

    def invalidate(self, block: BlockAddress) -> Optional[EvictedLine]:
        """Remove ``block`` if present; returns what was removed."""
        way = self._index.pop(block, None)
        if way is None:
            return None
        line = self._slots[way]
        assert line is not None
        self._slots[way] = None
        self.policy.on_invalidate(way)
        return EvictedLine(block=line.block, dirty=line.dirty)

    def mark_clean(self, block: BlockAddress) -> bool:
        """Clear the dirty bit of ``block``; returns False if absent."""
        line = self.find(block)
        if line is None:
            return False
        line.dirty = False
        return True

    def _free_way(self) -> Optional[int]:
        for way, line in enumerate(self._slots):
            if line is None:
                return way
        return None

    def clone(self) -> "CacheSet":
        """An independent copy with identical contents and policy state."""
        dup = CacheSet.__new__(CacheSet)
        dup.ways = self.ways
        dup.policy = self.policy.clone()
        dup._slots = [
            None if line is None else CacheLine(block=line.block, dirty=line.dirty)
            for line in self._slots
        ]
        dup._index = dict(self._index)
        return dup
