"""Generic cache building blocks.

This package provides the pieces shared by every cache level: the line
record, replacement policies, per-set storage and a generic
set-associative cache used for the private L1/L2 levels.  The shared LLC
has richer semantics (partitioning, inclusive owner tracking, the
``PENDING_EVICT`` entry lifecycle) and lives in :mod:`repro.llc`.
"""

from repro.cache.line import CacheLine, EvictedLine
from repro.cache.replacement import (
    ReplacementPolicy,
    LruPolicy,
    FifoPolicy,
    MruPolicy,
    NmruPolicy,
    PlruTreePolicy,
    RandomPolicy,
    RoundRobinPolicy,
    OraclePolicy,
    make_policy,
    POLICY_NAMES,
)
from repro.cache.cacheset import CacheSet
from repro.cache.sa_cache import SetAssociativeCache
from repro.cache.stats import CacheStats

__all__ = [
    "CacheLine",
    "EvictedLine",
    "ReplacementPolicy",
    "LruPolicy",
    "FifoPolicy",
    "MruPolicy",
    "NmruPolicy",
    "PlruTreePolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "OraclePolicy",
    "make_policy",
    "POLICY_NAMES",
    "CacheSet",
    "SetAssociativeCache",
    "CacheStats",
]
