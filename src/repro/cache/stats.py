"""Per-cache statistics counters."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache.

    ``invalidations`` counts lines removed by inclusive back-
    invalidation from a lower level, which the paper's model charges to
    the owning core as a pending write-back when the line is dirty.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0
    dirty_invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit; 0.0 when there were none."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed; 0.0 when there were none."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return element-wise sums of two counter sets."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            fills=self.fills + other.fills,
            evictions=self.evictions + other.evictions,
            dirty_evictions=self.dirty_evictions + other.dirty_evictions,
            invalidations=self.invalidations + other.invalidations,
            dirty_invalidations=self.dirty_invalidations + other.dirty_invalidations,
        )
