"""Replacement policies.

The paper's analysis is deliberately *replacement-policy agnostic*: it
assumes "a replacement policy that can select any of the cache lines"
(Section 4.3) so that the WCL bound holds for LRU, random, PLRU and
anything else.  To honour that, the simulator treats the policy as a
pluggable strategy and ships the common hardware policies plus an
:class:`OraclePolicy` whose victim choice is delegated to a callback —
the hook the adversarial worst-case workloads use to steer the LLC
toward the analytical critical instance.

Each policy instance manages **one set**.  The cache tells the policy
about accesses, fills and invalidations by way index, and asks it for a
victim among a restricted candidate list (the LLC restricts candidates
to the requesting core's partition ways, excluding entries that are
``FREE`` or already ``PENDING_EVICT``).
"""

from __future__ import annotations

import copy
import random
from typing import Callable, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.intmath import is_power_of_two
from repro.common.validation import require_positive


class ReplacementPolicy:
    """Interface for per-set replacement state.

    Subclasses must implement :meth:`victim`; the notification hooks
    default to no-ops so stateless policies stay trivial.
    """

    def __init__(self, ways: int) -> None:
        self.ways = require_positive(ways, "ways")

    def on_access(self, way: int) -> None:
        """A hit touched ``way``."""

    def on_fill(self, way: int) -> None:
        """A new line was installed into ``way``."""

    def on_invalidate(self, way: int) -> None:
        """The line in ``way`` was invalidated."""

    def victim(self, candidates: Sequence[int]) -> int:
        """Pick the way to evict among ``candidates`` (non-empty)."""
        raise NotImplementedError

    def clone(self) -> "ReplacementPolicy":
        """An independent copy with identical decision state.

        Used by the fast-forward engine's next-miss prediction, which
        replays a core's trace against a throwaway copy of its private
        stack.  Subclasses override this with cheap field copies; the
        deep-copy fallback keeps custom policies correct.
        """
        return copy.deepcopy(self)

    def _check_candidates(self, candidates: Sequence[int]) -> None:
        if not candidates:
            raise ValueError("victim() called with no candidates")
        for way in candidates:
            if not 0 <= way < self.ways:
                raise ValueError(f"candidate way {way} out of range 0..{self.ways - 1}")


class LruPolicy(ReplacementPolicy):
    """Least-recently-used, tracked with a per-way timestamp."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._clock = 0
        self._last_use = [0] * ways

    def _tick(self, way: int) -> None:
        self._clock += 1
        self._last_use[way] = self._clock

    def on_access(self, way: int) -> None:
        self._tick(way)

    def on_fill(self, way: int) -> None:
        self._tick(way)

    def on_invalidate(self, way: int) -> None:
        self._last_use[way] = 0

    def victim(self, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        return min(candidates, key=lambda way: self._last_use[way])

    def clone(self) -> "LruPolicy":
        dup = LruPolicy(self.ways)
        dup._clock = self._clock
        dup._last_use = self._last_use.copy()
        return dup


class MruPolicy(ReplacementPolicy):
    """Most-recently-used; useful as a pathological ablation point."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._clock = 0
        self._last_use = [0] * ways

    def _tick(self, way: int) -> None:
        self._clock += 1
        self._last_use[way] = self._clock

    def on_access(self, way: int) -> None:
        self._tick(way)

    def on_fill(self, way: int) -> None:
        self._tick(way)

    def on_invalidate(self, way: int) -> None:
        self._last_use[way] = 0

    def victim(self, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        return max(candidates, key=lambda way: self._last_use[way])

    def clone(self) -> "MruPolicy":
        dup = MruPolicy(self.ways)
        dup._clock = self._clock
        dup._last_use = self._last_use.copy()
        return dup


class NmruPolicy(ReplacementPolicy):
    """Not-most-recently-used: any candidate except the MRU way.

    Falls back to the MRU way itself when it is the only candidate.
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._mru: Optional[int] = None

    def on_access(self, way: int) -> None:
        self._mru = way

    def on_fill(self, way: int) -> None:
        self._mru = way

    def on_invalidate(self, way: int) -> None:
        if self._mru == way:
            self._mru = None

    def victim(self, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        for way in candidates:
            if way != self._mru:
                return way
        return candidates[0]

    def clone(self) -> "NmruPolicy":
        dup = NmruPolicy(self.ways)
        dup._mru = self._mru
        return dup


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out, by fill order."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._clock = 0
        self._filled_at = [0] * ways

    def on_fill(self, way: int) -> None:
        self._clock += 1
        self._filled_at[way] = self._clock

    def on_invalidate(self, way: int) -> None:
        self._filled_at[way] = 0

    def victim(self, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        return min(candidates, key=lambda way: self._filled_at[way])

    def clone(self) -> "FifoPolicy":
        dup = FifoPolicy(self.ways)
        dup._clock = self._clock
        dup._filled_at = self._filled_at.copy()
        return dup


class RoundRobinPolicy(ReplacementPolicy):
    """Rotating victim pointer, as in many embedded cores."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._pointer = 0

    def victim(self, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        allowed = set(candidates)
        for step in range(self.ways):
            way = (self._pointer + step) % self.ways
            if way in allowed:
                self._pointer = (way + 1) % self.ways
                return way
        raise AssertionError("unreachable: candidates validated non-empty")

    def clone(self) -> "RoundRobinPolicy":
        dup = RoundRobinPolicy(self.ways)
        dup._pointer = self._pointer
        return dup


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim, from a seeded stream for reproducibility."""

    def __init__(self, ways: int, rng: Optional[random.Random] = None) -> None:
        super().__init__(ways)
        self._rng = rng or random.Random(0)

    def victim(self, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        return self._rng.choice(list(candidates))

    def clone(self) -> "RandomPolicy":
        # The copy gets a forked RNG at the same state.  Note a clone's
        # draws do NOT advance the original (shared) stream — which is
        # exactly why the fast-forward engine refuses to predict under a
        # "random" policy rather than relying on this method.
        dup = RandomPolicy(self.ways, random.Random())
        dup._rng.setstate(self._rng.getstate())
        return dup


class PlruTreePolicy(ReplacementPolicy):
    """Binary tree pseudo-LRU; requires a power-of-two way count.

    The tree holds ``ways - 1`` direction bits.  Accesses flip the bits
    along the path away from the touched way; the victim walk follows
    the bits.  When the walk lands on a way outside the candidate list
    (the LLC may have masked it out), the policy deterministically falls
    back to the first candidate in tree-walk preference order.
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        if not is_power_of_two(ways):
            raise ConfigurationError(f"PLRU requires power-of-two ways, got {ways}")
        self._bits = [0] * max(ways - 1, 1)

    def _touch(self, way: int) -> None:
        node = 0
        low, high = 0, self.ways
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                self._bits[node] = 1  # point away: next victim on right
                node = 2 * node + 1
                high = mid
            else:
                self._bits[node] = 0
                node = 2 * node + 2
                low = mid

    def on_access(self, way: int) -> None:
        self._touch(way)

    def on_fill(self, way: int) -> None:
        self._touch(way)

    def _walk(self) -> list[int]:
        """All ways ordered by tree preference (victim first)."""
        order: list[int] = []

        def descend(node: int, low: int, high: int) -> None:
            if high - low == 1:
                order.append(low)
                return
            mid = (low + high) // 2
            right = (2 * node + 2, mid, high)
            left = (2 * node + 1, low, mid)
            halves = [right, left] if self._bits[node] == 1 else [left, right]
            for child, child_low, child_high in halves:
                descend(child, child_low, child_high)

        descend(0, 0, self.ways)
        return order

    def victim(self, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        allowed = set(candidates)
        for way in self._walk():
            if way in allowed:
                return way
        raise AssertionError("unreachable: candidates validated non-empty")

    def clone(self) -> "PlruTreePolicy":
        dup = PlruTreePolicy(self.ways)
        dup._bits = self._bits.copy()
        return dup


class OraclePolicy(ReplacementPolicy):
    """Victim selection delegated to a caller-supplied chooser.

    The chooser receives the candidate way list and the set index (when
    provided via :meth:`bind_set`) and returns the victim way.  This is
    the hook adversarial workloads use to reproduce the paper's
    "replacement policy that can select any of the cache lines"
    (Section 4.3) and drive the system to the critical instance.
    """

    def __init__(
        self,
        ways: int,
        chooser: Optional[Callable[[Sequence[int], Optional[int]], int]] = None,
    ) -> None:
        super().__init__(ways)
        self._chooser = chooser
        self._set_index: Optional[int] = None

    def bind_set(self, set_index: int) -> None:
        """Tell the policy which set it manages (for chooser context)."""
        self._set_index = set_index

    def set_chooser(
        self, chooser: Callable[[Sequence[int], Optional[int]], int]
    ) -> None:
        """Install or replace the victim chooser."""
        self._chooser = chooser

    def victim(self, candidates: Sequence[int]) -> int:
        self._check_candidates(candidates)
        if self._chooser is None:
            return candidates[0]
        way = self._chooser(candidates, self._set_index)
        if way not in set(candidates):
            raise ValueError(
                f"oracle chooser returned way {way}, not in candidates {list(candidates)}"
            )
        return way

    def clone(self) -> "OraclePolicy":
        # The chooser callback is shared, not copied: it belongs to the
        # experiment.  A stateful chooser therefore sees a clone's extra
        # calls, which is why the fast-forward engine refuses to predict
        # through an "oracle" private stack.
        dup = OraclePolicy(self.ways, self._chooser)
        dup._set_index = self._set_index
        return dup


_FACTORIES = {
    "lru": LruPolicy,
    "mru": MruPolicy,
    "nmru": NmruPolicy,
    "fifo": FifoPolicy,
    "round-robin": RoundRobinPolicy,
    "random": RandomPolicy,
    "plru": PlruTreePolicy,
    "oracle": OraclePolicy,
}

#: Names accepted by :func:`make_policy`.
POLICY_NAMES = tuple(sorted(_FACTORIES))


def make_policy(
    name: str,
    ways: int,
    rng: Optional[random.Random] = None,
) -> ReplacementPolicy:
    """Build a replacement policy for one set by name.

    ``rng`` is threaded into :class:`RandomPolicy` so every set in a
    cache shares a single seeded stream; other policies ignore it.
    """
    key = name.lower()
    factory = _FACTORIES.get(key)
    if factory is None:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; choose from {', '.join(POLICY_NAMES)}"
        )
    if factory is RandomPolicy:
        return RandomPolicy(ways, rng)
    return factory(ways)
