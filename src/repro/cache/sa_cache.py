"""A generic set-associative cache for the private levels (L1, L2).

The cache works in *block addresses* — the enclosing private stack
translates byte addresses once, at the L1 boundary.  Fill, touch and
invalidate are separate operations because in the paper's model a miss
does not fill immediately: the fill happens when the LLC response
arrives in the core's bus slot, possibly hundreds of cycles later.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.cache.cacheset import CacheSet
from repro.cache.line import CacheLine, EvictedLine
from repro.cache.replacement import OraclePolicy, make_policy
from repro.cache.stats import CacheStats
from repro.common.errors import GeometryError
from repro.common.types import BlockAddress
from repro.common.validation import require_power_of_two


class SetAssociativeCache:
    """Set-associative cache over block addresses.

    Parameters
    ----------
    name:
        Human-readable identifier used in stats and event logs
        (for example ``"core0.L2"``).
    num_sets, ways:
        Geometry; ``num_sets`` must be a power of two so the set index
        is a bit-field of the block address.
    policy:
        Replacement policy name accepted by
        :func:`repro.cache.replacement.make_policy`.
    rng:
        Seeded stream threaded into stochastic policies.
    """

    def __init__(
        self,
        name: str,
        num_sets: int,
        ways: int,
        policy: str = "lru",
        rng: Optional[random.Random] = None,
    ) -> None:
        require_power_of_two(num_sets, "num_sets", GeometryError)
        if ways <= 0:
            raise GeometryError(f"ways must be positive, got {ways}")
        self.name = name
        self.num_sets = num_sets
        self.ways = ways
        self.policy_name = policy
        self.stats = CacheStats()
        self._sets: List[CacheSet] = []
        for set_index in range(num_sets):
            set_policy = make_policy(policy, ways, rng)
            if isinstance(set_policy, OraclePolicy):
                set_policy.bind_set(set_index)
            self._sets.append(CacheSet(ways, set_policy))

    @property
    def capacity_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.num_sets * self.ways

    def set_index(self, block: BlockAddress) -> int:
        """Set index of a block address."""
        return block & (self.num_sets - 1)

    def set_for(self, block: BlockAddress) -> CacheSet:
        """The set a block maps to."""
        return self._sets[self.set_index(block)]

    def contains(self, block: BlockAddress) -> bool:
        """Whether ``block`` is resident (no policy side effects)."""
        return self.set_for(block).find(block) is not None

    def is_dirty(self, block: BlockAddress) -> bool:
        """Whether ``block`` is resident and dirty."""
        line = self.set_for(block).find(block)
        return line is not None and line.dirty

    def access(self, block: BlockAddress, is_write: bool) -> bool:
        """Look up ``block``; on a hit, update recency (and dirtiness).

        Returns True on hit.  Misses only bump counters — the caller
        decides when (and whether) to fill.
        """
        self.stats.accesses += 1
        if self.set_for(block).touch(block, is_write):
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, block: BlockAddress, dirty: bool) -> Optional[EvictedLine]:
        """Install ``block``, returning any displaced line."""
        evicted = self.set_for(block).fill(block, dirty)
        self.stats.fills += 1
        if evicted is not None:
            self.stats.evictions += 1
            if evicted.dirty:
                self.stats.dirty_evictions += 1
        return evicted

    def invalidate(self, block: BlockAddress) -> Optional[EvictedLine]:
        """Remove ``block`` (inclusive back-invalidation), if present."""
        removed = self.set_for(block).invalidate(block)
        if removed is not None:
            self.stats.invalidations += 1
            if removed.dirty:
                self.stats.dirty_invalidations += 1
        return removed

    def mark_clean(self, block: BlockAddress) -> bool:
        """Clear ``block``'s dirty bit (after its data was written back)."""
        return self.set_for(block).mark_clean(block)

    def resident_blocks(self) -> List[BlockAddress]:
        """All block addresses currently resident, set by set."""
        blocks: List[BlockAddress] = []
        for cache_set in self._sets:
            blocks.extend(cache_set.resident_blocks())
        return blocks

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(cache_set) for cache_set in self._sets)

    def find(self, block: BlockAddress) -> Optional[CacheLine]:
        """The resident line record for ``block``, if any."""
        return self.set_for(block).find(block)

    def clone(self) -> "SetAssociativeCache":
        """An independent copy with identical contents, policy state and
        stats — orders of magnitude cheaper than ``copy.deepcopy``,
        which is what makes the fast-forward engine's next-miss
        prediction affordable."""
        dup = SetAssociativeCache.__new__(SetAssociativeCache)
        dup.name = self.name
        dup.num_sets = self.num_sets
        dup.ways = self.ways
        dup.policy_name = self.policy_name
        dup.stats = CacheStats(
            accesses=self.stats.accesses,
            hits=self.stats.hits,
            misses=self.stats.misses,
            fills=self.stats.fills,
            evictions=self.stats.evictions,
            dirty_evictions=self.stats.dirty_evictions,
            invalidations=self.stats.invalidations,
            dirty_invalidations=self.stats.dirty_invalidations,
        )
        dup._sets = [cache_set.clone() for cache_set in self._sets]
        return dup
