"""Cache line records.

A :class:`CacheLine` is the mutable per-way record a private cache
stores.  :class:`EvictedLine` is the immutable result handed back when a
fill displaces a line; it carries exactly what the next level (or the
write-back buffer) needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import BlockAddress


@dataclass
class CacheLine:
    """One resident line in a private cache way.

    Attributes
    ----------
    block:
        The block (line) address stored in this way.
    dirty:
        Whether the line has been written since it was filled; a dirty
        line must be written back when evicted.
    """

    block: BlockAddress
    dirty: bool = False


@dataclass(frozen=True)
class EvictedLine:
    """A line displaced from a cache, as reported to the caller.

    ``dirty`` determines whether the eviction produces a write-back
    transaction (dirty) or a silent drop (clean).
    """

    block: BlockAddress
    dirty: bool
