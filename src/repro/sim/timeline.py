"""ASCII slot timelines from simulation event logs.

Renders the bus schedule as one row per core and one column per slot —
the same view the paper's Figures 2–4 draw by hand.  Requires the
simulation to have run with ``record_events=True``.

Symbols::

    .   not this core's slot
    -   own slot, idle (nothing pending)
    H   request hit in the LLC, response within the slot
    A   miss allocated a free entry, response within the slot
    E   miss triggered an eviction and kept waiting
    x   blocked: region full, eviction already in flight
    s   blocked by the set sequencer (free entry reserved for the head)
    W   write-back sent
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bus.schedule import TdmSchedule
from repro.common.errors import ReproError
from repro.common.types import CoreId, SlotIndex
from repro.sim.events import EventKind, EventLog

#: Event kinds that decide a slot's symbol, in precedence order —
#: the response outcome wins over the intermediate steps.
_SYMBOL_PRECEDENCE: Tuple[Tuple[EventKind, str], ...] = (
    (EventKind.LLC_HIT, "H"),
    (EventKind.LLC_ALLOC, "A"),
    (EventKind.WB_SENT, "W"),
    (EventKind.SEQ_BLOCKED, "s"),
    (EventKind.EVICT_START, "E"),
    (EventKind.BLOCKED_FULL, "x"),
    (EventKind.SLOT_IDLE, "-"),
)

LEGEND = (
    "legend: .=other's slot  -=idle  H=hit  A=allocate  "
    "E=evict+wait  x=blocked  s=seq-blocked  W=write-back"
)


def slot_symbols(
    events: EventLog, schedule: TdmSchedule
) -> Dict[Tuple[CoreId, SlotIndex], str]:
    """Map each (owner, slot) the log covers to its display symbol."""
    chosen: Dict[Tuple[CoreId, SlotIndex], str] = {}
    ranks: Dict[Tuple[CoreId, SlotIndex], int] = {}
    precedence = {kind: index for index, (kind, _) in enumerate(_SYMBOL_PRECEDENCE)}
    symbols = dict(_SYMBOL_PRECEDENCE)
    for event in events:
        if event.kind not in precedence:
            continue
        owner = schedule.owner_of_slot(event.slot)
        # Attribute the slot to its owner: back-invalidations et al.
        # carry other cores' ids but happen inside the owner's slot.
        key = (owner, event.slot)
        if event.kind in (EventKind.WB_SENT, EventKind.SLOT_IDLE) and event.core != owner:
            continue
        rank = precedence[event.kind]
        if key not in ranks or rank < ranks[key]:
            ranks[key] = rank
            chosen[key] = symbols[event.kind]
    return chosen


def render_timeline(
    events: EventLog,
    schedule: TdmSchedule,
    num_cores: int,
    start_slot: SlotIndex = 0,
    num_slots: int = 80,
    ruler_every: int = 10,
) -> str:
    """Render ``num_slots`` slots starting at ``start_slot``.

    Returns a multi-line string: a slot ruler, one row per core, and the
    legend.
    """
    if num_slots <= 0:
        raise ReproError(f"num_slots must be positive, got {num_slots}")
    if len(events) == 0:
        raise ReproError(
            "event log is empty; run the simulation with record_events=True"
        )
    symbols = slot_symbols(events, schedule)
    end_slot = start_slot + num_slots

    ruler_cells: List[str] = []
    for slot in range(start_slot, end_slot):
        ruler_cells.append("|" if slot % ruler_every == 0 else " ")
    lines = [f"slots {start_slot}..{end_slot - 1} (| every {ruler_every})"]
    lines.append("        " + "".join(ruler_cells))

    for core in range(num_cores):
        row: List[str] = []
        for slot in range(start_slot, end_slot):
            if schedule.owner_of_slot(slot) != core:
                row.append(".")
            else:
                row.append(symbols.get((core, slot), "-"))
        lines.append(f"core {core:>2} " + "".join(row))
    lines.append(LEGEND)
    return "\n".join(lines)
