"""The slot engine: drives a :class:`~repro.sim.system.System` in TDM slots.

The engine owns the simulation clock.  Each iteration handles one bus
slot:

1. every core's private execution is advanced up to the slot boundary
   (an L2 miss parks a request in that core's PRB and blocks the core);
2. the slot's owner arbitrates PRB vs PWB (round-robin, Section 3) and
   performs at most one bus transaction;
3. the transaction's LLC effects — hit response, allocation, eviction
   with back-invalidation, or write-back delivery — are applied within
   the slot.

The rules the paper's analysis depends on are implemented here and only
here:

* **Inclusive eviction costs a slot.**  A victim cached dirty by some
  core leaves its LLC entry ``PENDING_EVICT`` until that core spends a
  slot on the write-back (Figures 2–4).
* **Completion rule** (Lemma 4.4).  If the owner sends a *request* and a
  usable free entry exists — including one freed in this very slot by a
  clean eviction — the request completes within the slot.
* **One eviction in flight per waiting requester.**  A new victim is
  chosen only while ``free + pending`` entries cannot cover the
  region's broadcast requesters — the Theorem 4.8 worst case, where
  every queued request waits on its own in-flight eviction, without
  ever draining a set further than contention justifies.
* **Sequencer order** (Section 4.5).  Under SS, a free entry may only be
  claimed by the head of the set's FIFO; everyone else's slot passes
  unfulfilled.

Fast-forward.  With ``SystemConfig.engine == "fast"`` the engine skips
stretches of provably idle slots: when the current slot's owner has no
eligible PRB/PWB work, it computes the earliest *actionable* slot — the
next slot at which any core's parked request, queued write-back or
predicted private-stack miss can reach the bus — and jumps there,
accounting the skipped slots' idle ``slot_usage`` analytically.  Idle
slots mutate no model state (the round-robin arbiter is pure on an
empty offer, and nothing touches the LLC, DRAM or sequencers), so the
jump is exact: reports, counters and ``slot_usage`` are bit-identical
to the reference per-slot loop.  Anything that observes or perturbs
individual slots — event recording/streaming, per-slot samplers,
pre/post-slot hooks (fault injection, invariant monitors) — forces the
reference path; see ``docs/MODEL.md`` for the full eligibility rules
and the accounting identity.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.bus.buffers import (
    PendingRequest,
    WritebackEntry,
    WritebackReason,
)
from repro.common.errors import SimulationError
from repro.common.types import CoreId, Cycle, SlotIndex, TransactionKind
from repro.cpu.core import CoreState
from repro.llc.llc import VictimInfo, WritebackOutcome
from repro.sim.events import EventKind, EventLog, SimEvent
from repro.sim.report import SimReport, build_report
from repro.sim.system import System


#: Runs before a slot is processed: ``hook(engine, slot)``.  A hook may
#: mutate engine or system state (fault injection does exactly that).
PreSlotHook = Callable[["SlotEngine", SlotIndex], None]

#: Runs after a slot's transaction landed, before the slot counter
#: advances: ``hook(engine, slot, slot_start)``.  Invariant monitors
#: attach here so a violation is pinned to the slot that caused it.
PostSlotHook = Callable[["SlotEngine", SlotIndex, Cycle], None]


class SlotEngine:
    """Runs one system to completion (or to the slot limit)."""

    def __init__(self, system: System) -> None:
        self.system = system
        self.config = system.config
        self.schedule = system.schedule
        self.events = EventLog(enabled=self.config.record_events)
        # Event emission sites are guarded with
        # ``self._events_on and self.events.append(SimEvent(...))`` so
        # the (hot-path) SimEvent construction is skipped entirely when
        # recording is off — the log would drop it anyway.
        self._events_on = self.config.record_events
        # Per-slot occupancy sampler; lazily imported so repro.sim has
        # no hard dependency on repro.obs (which imports sim.report).
        self._sampler = None
        if self.config.record_metrics:
            from repro.obs.recorder import SlotSampler

            self._sampler = SlotSampler(system)
        self._completed: List[PendingRequest] = []
        self._slot: SlotIndex = 0
        self._finished_cores: set[CoreId] = set()
        # Per-core slot usage: how each core spent its bus slots.
        self._slot_usage: dict[CoreId, dict[str, int]] = {
            core: {"idle": 0, "request": 0, "writeback": 0}
            for core in system.cores
        }
        # Hooks are empty in the default configuration; the run loop
        # skips both lists entirely so benchmarks pay nothing for them.
        self._pre_slot_hooks: List[PreSlotHook] = []
        self._post_slot_hooks: List[PostSlotHook] = []
        # Static half of the fast-forward gate.  A "random" replacement
        # policy (private or LLC) draws from the System's shared RNG
        # stream, which the side-effect-free next-miss prediction cannot
        # keep in lock-step with the live replay; everything else that
        # forces the reference loop (events, samplers, hooks) is checked
        # per iteration in run().
        # "oracle" private stacks are also excluded: the victim chooser
        # is a caller-supplied (possibly stateful) callback that would
        # observe the prediction clone's extra calls.
        self._fast_ok = (
            self.config.engine == "fast"
            and self.config.llc_policy != "random"
            and self.config.stack.policy not in ("random", "oracle")
        )
        # Fast-forward backoff.  When the next actionable slot is too
        # close for a jump to pay for its own computation (dense
        # workloads), suppress further attempts for a few slots; the
        # penalty doubles while attempts stay unprofitable and resets on
        # the first long jump.  Skipping attempts is always safe — the
        # reference step handles every slot.
        self._ff_skip = 0
        self._ff_penalty = 0
        # Progress counters backing the O(1) _finished() check (the
        # reference scan is O(cores) per slot, which dominates sparse
        # runs).  Initialised from a full scan at the top of run() —
        # and lazily on first use — then maintained incrementally at
        # the mutating sites (_advance_core, _pwb_push, _do_writeback).
        self._counters_ready = False
        self._done_count = 0
        self._done_seen: set[CoreId] = set()
        self._nonempty_pwbs = 0

    def add_pre_slot_hook(self, hook: PreSlotHook) -> None:
        """Run ``hook(engine, slot)`` before each slot is processed."""
        self._pre_slot_hooks.append(hook)

    def add_post_slot_hook(self, hook: PostSlotHook) -> None:
        """Run ``hook(engine, slot, slot_start)`` after each slot."""
        self._post_slot_hooks.append(hook)

    def attach_event_sink(self, sink: Callable[[SimEvent], None]) -> None:
        """Stream every event to ``sink`` (e.g. a JSONL trace file).

        Turns event *emission* on even when ``record_events`` is false,
        so a long campaign can trace to disk without the in-memory log.
        """
        self.events.attach_sink(sink)
        self._events_on = True

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def run(self, stop_at_slot: Optional[SlotIndex] = None) -> SimReport:
        """Simulate until every trace finishes (and write-backs drain).

        ``stop_at_slot`` pauses the loop once the slot cursor reaches
        (or, under a fast-forward jump, passes) that slot.  The engine
        is re-entrant: calling ``run`` again continues exactly where
        the previous call stopped, and a paused-and-resumed run takes
        the same decisions — and builds the same report — as an
        uninterrupted one.  This is the checkpoint layer's stop point
        (:mod:`repro.robustness.checkpoint`); a report returned from a
        pause is partial and normally discarded.  Drivers that pause
        frequently should use :meth:`advance` and only call ``run`` for
        the final report — report construction is O(completed requests)
        and dominates a tight pause loop.
        """
        timed_out = self.advance(stop_at_slot)
        return build_report(
            system=self.system,
            completed=self._completed,
            total_slots=self._slot,
            timed_out=timed_out,
            events=self.events,
            slot_usage=self._slot_usage,
            metrics=self._sampler.registry() if self._sampler else None,
        )

    def advance(self, stop_at_slot: Optional[SlotIndex] = None) -> bool:
        """Drive the slot loop without building a report.

        The report-free core of :meth:`run`, with identical pause and
        resume semantics.  Returns whether the slot cap was hit, which
        a follow-up ``run`` call recomputes identically.
        """
        timed_out = False
        self._init_progress_counters()
        # The sampler is fixed at construction; hooks and event sinks
        # may still be attached later (or by a hook), so those stay in
        # the per-iteration gate.
        fast = self._fast_ok and self._sampler is None
        while not self._finished():
            if self._slot >= self.config.max_slots:
                timed_out = True
                break
            if stop_at_slot is not None and self._slot >= stop_at_slot:
                break
            if (
                fast
                and not self._pre_slot_hooks
                and not self._post_slot_hooks
                and not self._events_on
            ):
                if self._ff_skip:
                    self._ff_skip -= 1
                elif self._try_fast_forward():
                    continue
            if self._pre_slot_hooks:
                # A pre-slot hook may mutate the slot counter (the
                # dropped-slot fault does); re-check the cap afterwards.
                for hook in self._pre_slot_hooks:
                    hook(self, self._slot)
                if self._slot >= self.config.max_slots:
                    timed_out = True
                    break
            slot_start = self.schedule.slot_start(self._slot)
            # Advance through slot_start inclusive: a miss occurring
            # exactly at the boundary is in the PRB "at the beginning of
            # the core's slot" (Section 3) and may use this slot.
            for core_id in self.system.cores:
                self._advance_core(core_id, slot_start + 1)
            owner = self.schedule.owner_of_slot(self._slot)
            self._do_slot(owner, slot_start)
            if self._post_slot_hooks:
                for hook in self._post_slot_hooks:
                    hook(self, self._slot, slot_start)
            if self._sampler is not None:
                self._sampler.sample()
            self._slot += 1
        return timed_out

    def run_complete(self) -> bool:
        """Whether a (possibly paused) run has nothing left to do.

        True once every core is done and write-backs drained, or once
        the slot cap was hit — i.e. another ``run`` call would return
        immediately.  Drivers that pause via ``run(stop_at_slot=...)``
        use this to distinguish "paused" from "finished".
        """
        return self._slot >= self.config.max_slots or self._finished()

    def _finished(self) -> bool:
        if self._pre_slot_hooks:
            # Pre-slot hooks run arbitrary user code (fault injection
            # mutates engine and system state directly), so the
            # incremental counters cannot be trusted; use the scan.
            return self._finished_scan()
        if not self._counters_ready:
            self._init_progress_counters()
        finished = self._done_count == len(self.system.cores) and (
            not self.config.drain_writebacks or self._nonempty_pwbs == 0
        )
        if self.config.checked:
            assert finished == self._finished_scan(), (
                "progress counters diverged from the reference completion scan"
            )
        return finished

    def _finished_scan(self) -> bool:
        """Reference O(cores) completion check (see _finished)."""
        cores_done = all(core.done for core in self.system.cores.values())
        if not cores_done:
            return False
        if not self.config.drain_writebacks:
            return True
        return all(pwb.is_empty for pwb in self.system.pwbs.values())

    def _init_progress_counters(self) -> None:
        """(Re)build the completion counters from a full scan."""
        self._done_count = 0
        self._done_seen.clear()
        self._nonempty_pwbs = 0
        for core_id, core in self.system.cores.items():
            if core.done:
                self._done_count += 1
                self._done_seen.add(core_id)
            if not self.system.pwbs[core_id].is_empty:
                self._nonempty_pwbs += 1
        self._counters_ready = True

    # ------------------------------------------------------------------
    # Idle-slot fast-forward
    # ------------------------------------------------------------------
    def _candidate_slot(
        self, core: CoreId, ready: Cycle, from_slot: SlotIndex
    ) -> SlotIndex:
        """First slot >= ``from_slot`` where ``core`` can send work ready
        at cycle ``ready``.

        Slot eligibility is ``enqueued_at <= slot_start``, so work ready
        exactly on a boundary uses that slot and work ready mid-slot
        waits for the next boundary — then for the core's next owned
        slot from there.
        """
        width = self.schedule.slot_width
        first = (ready + width - 1) // width
        if first < from_slot:
            first = from_slot
        return self.schedule.next_slot_of(core, first)

    def _try_fast_forward(self) -> bool:
        """Jump over a provably idle stretch of slots, or return False.

        Computes, in O(cores), the earliest *actionable* slot at or
        after the current one — the first slot whose owner has (or will
        have, per the side-effect-free next-miss prediction) an eligible
        PRB request or PWB write-back — and advances directly to it,
        accounting the skipped slots as idle analytically.  When every
        core will instead run to completion on private hits (and, under
        ``drain_writebacks``, every PWB is empty), the jump target is
        the exact slot at which the reference loop's completion check
        would fire.  Idle slots mutate no model state, so the resulting
        report is bit-identical to ticking them one by one.

        Only called when nothing observes individual slots (no events,
        samplers or hooks — see run()); returns False whenever the
        *current* slot is actionable, leaving it to the reference step.
        """
        system = self.system
        schedule = self.schedule
        start_slot = self._slot
        slot_start = schedule.slot_start(start_slot)
        # O(1) prefilter: the current owner already has eligible work.
        owner = schedule.owner_of_slot(start_slot)
        owner_request = system.prbs[owner].entry
        if owner_request is not None and owner_request.enqueued_at <= slot_start:
            return False
        if system.pwbs[owner].peek(slot_start) is not None:
            return False

        # Cheap phase: candidates visible without prediction — parked
        # PRB requests and queued write-backs.
        best: Optional[SlotIndex] = None
        quiescent = True
        for core_id, core in system.cores.items():
            request = system.prbs[core_id].entry
            if request is not None:
                quiescent = False
                candidate = self._candidate_slot(
                    core_id, request.enqueued_at, start_slot
                )
                if best is None or candidate < best:
                    best = candidate
            elif core.state is CoreState.BLOCKED:
                # Blocked with no parked request: nothing will ever wake
                # it (only a fault can produce this state).  Not
                # quiescent, and no candidate of its own.
                quiescent = False
            pwb_ready = system.pwbs[core_id].earliest_enqueue()
            if pwb_ready is not None:
                # A queued write-back is always a candidate (it occupies
                # its owner's slot either way), but only blocks
                # termination when the run must drain write-backs.
                if self.config.drain_writebacks:
                    quiescent = False
                candidate = self._candidate_slot(core_id, pwb_ready, start_slot)
                if best is None or candidate < best:
                    best = candidate
        # Break-even point: a jump must clear the cost of the candidate
        # scan plus any fresh predictions it triggers, which measures at
        # a handful of idle slots' worth — ~6 periods is comfortably
        # past it on every workload tried.
        min_gain = 6 * schedule.period_slots
        if best is not None and best - start_slot < min_gain:
            # The next buffered work is too close for the prediction
            # cost to pay off; let the reference loop walk there (and
            # don't re-derive the same answer at every slot on the way).
            self._ff_skip = best - start_slot - 1
            return False

        # Prediction phase: the next L2 miss (or finish) of each
        # running core, via a side-effect-free replay (cached against
        # the stack's version counter).
        max_finish: Cycle = 0
        for core_id, core in system.cores.items():
            if core.state is not CoreState.RUNNING:
                continue
            prediction = core.predict_next_bus_event()
            if prediction.miss_at is not None:
                quiescent = False
                candidate = self._candidate_slot(
                    core_id, prediction.miss_at, start_slot
                )
                if best is None or candidate < best:
                    best = candidate
            elif prediction.finish_at > max_finish:
                max_finish = prediction.finish_at

        width = schedule.slot_width
        if quiescent:
            # Reference semantics: the last still-running core turns
            # DONE during the advance phase of slot ceil(finish/width);
            # the loop-top completion check then exits *before*
            # processing the slot after it.  On a tie the completion
            # check wins for the same reason — hence <=.
            finish_slot = max(start_slot, -(-max_finish // width)) + 1
            if best is None or finish_slot <= best:
                target = finish_slot
            else:
                target = best
        elif best is None:
            # No core can ever reach the bus again (starvation): the
            # reference loop idles to the cap, so jump straight there
            # and let the loop top report the timeout.
            target = self.config.max_slots
        else:
            target = best
        if target > self.config.max_slots:
            target = self.config.max_slots
        if target - start_slot < min_gain:
            # Prediction cost paid without a worthwhile jump: back off
            # exponentially so dense stretches degrade to the reference
            # loop instead of re-predicting every slot.
            self._ff_penalty = min(self._ff_penalty * 2 + 1, 8 * min_gain)
            self._ff_skip = self._ff_penalty
        else:
            self._ff_penalty = 0
        if target <= start_slot:
            return False

        # Commit.  Advance every core exactly as far as the reference
        # loop would have by the top of slot `target` — through slot
        # target-1's boundary, inclusive — and never further: a later
        # transaction may back-invalidate a line an over-advanced core
        # would have hit on.
        advance_until = schedule.slot_start(target - 1) + 1
        for core_id in system.cores:
            self._advance_core(core_id, advance_until)
        # Slots start_slot..target-1 are all idle; account them per
        # schedule position analytically instead of one by one.
        period = schedule.period_slots
        full, rem = divmod(target - start_slot, period)
        for position, position_owner in enumerate(schedule.slot_owners):
            extra = full + (1 if (position - start_slot) % period < rem else 0)
            if extra:
                self._slot_usage[position_owner]["idle"] += extra
        self._slot = target
        return True

    # ------------------------------------------------------------------
    # Core-side progress
    # ------------------------------------------------------------------
    def _advance_core(self, core_id: CoreId, until: Cycle) -> None:
        core = self.system.cores[core_id]
        miss = core.advance(until)
        if miss is not None:
            self.system.prbs[core_id].push(
                PendingRequest(
                    core=core_id,
                    block=miss.block,
                    access=miss.access,
                    enqueued_at=miss.at_cycle,
                )
            )
        if core.done and core_id not in self._done_seen:
            self._done_seen.add(core_id)
            self._done_count += 1
        if core.done and core_id not in self._finished_cores:
            # Kept separate from _done_seen: that set is pre-seeded with
            # cores that were already done before run() (no event is
            # owed for the seeding scan), while CORE_DONE must still be
            # emitted for them here, exactly once.
            self._finished_cores.add(core_id)
            # `finish_time or 0` would misreport a legitimate cycle-0
            # finish (an empty trace) the same as a missing finish time.
            self._events_on and self.events.append(
                SimEvent(
                    cycle=core.finish_time if core.finish_time is not None else 0,
                    slot=self._slot,
                    kind=EventKind.CORE_DONE,
                    core=core_id,
                )
            )

    # ------------------------------------------------------------------
    # Slot processing
    # ------------------------------------------------------------------
    def _do_slot(self, owner: CoreId, slot_start: Cycle) -> None:
        prb = self.system.prbs[owner]
        pwb = self.system.pwbs[owner]
        request = prb.entry
        writeback = pwb.peek(slot_start)
        has_request = request is not None and request.enqueued_at <= slot_start
        has_writeback = writeback is not None
        kind = self.system.arbiters[owner].choose(has_request, has_writeback)
        if kind is None:
            self._slot_usage[owner]["idle"] += 1
            self._events_on and self.events.append(
                SimEvent(slot_start, self._slot, EventKind.SLOT_IDLE, core=owner)
            )
            return
        if kind is TransactionKind.WRITE_BACK:
            self._slot_usage[owner]["writeback"] += 1
            self._do_writeback(owner, slot_start)
        else:
            self._slot_usage[owner]["request"] += 1
            self._do_request(owner, slot_start)

    def _pwb_push(self, core: CoreId, entry: WritebackEntry) -> None:
        """Queue a write-back, keeping the nonempty-PWB counter in step."""
        pwb = self.system.pwbs[core]
        if pwb.is_empty:
            self._nonempty_pwbs += 1
        pwb.push(entry)

    def _do_writeback(self, core: CoreId, slot_start: Cycle) -> None:
        pwb = self.system.pwbs[core]
        entry = pwb.pop(slot_start)
        if pwb.is_empty:
            self._nonempty_pwbs -= 1
        pending = self.system.llc.pending_entry(entry.block)
        outcome = self.system.llc.complete_writeback(core, entry.block)
        if outcome in (WritebackOutcome.FREED, WritebackOutcome.DRAM_DIRECT):
            self.system.dram.write_back(entry.block, slot_start)
        self._events_on and self.events.append(
            SimEvent(
                cycle=slot_start,
                slot=self._slot,
                kind=EventKind.WB_SENT,
                core=core,
                block=entry.block,
                detail=f"{entry.reason.value}->{outcome.value}",
            )
        )
        if outcome is WritebackOutcome.FREED:
            assert pending is not None
            self._events_on and self.events.append(
                SimEvent(
                    cycle=slot_start,
                    slot=self._slot,
                    kind=EventKind.ENTRY_FREED,
                    core=core,
                    block=entry.block,
                    set_index=pending.set_index,
                    way=pending.way,
                )
            )

    def _do_request(self, core: CoreId, slot_start: Cycle) -> None:
        llc = self.system.llc
        request = self.system.prbs[core].entry
        assert request is not None
        request.bus_attempts += 1
        if request.first_on_bus_at is None:
            request.first_on_bus_at = slot_start
        self._events_on and self.events.append(
            SimEvent(
                cycle=slot_start,
                slot=self._slot,
                kind=EventKind.REQ_BROADCAST,
                core=core,
                block=request.block,
            )
        )
        sequencer = self.system.sequencer_for(core)
        set_index = llc.fold(core, request.block)

        hit = llc.lookup(core, request.block)
        if hit is not None:
            request.served_by_hit = True
            llc.add_owner(core, request.block)
            if sequencer is not None:
                # A sharer fetched the line while we were queued.
                sequencer.cancel(core)
            self._events_on and self.events.append(
                SimEvent(
                    cycle=slot_start,
                    slot=self._slot,
                    kind=EventKind.LLC_HIT,
                    core=core,
                    block=request.block,
                    set_index=hit.set_index,
                    way=hit.way,
                )
            )
            self._complete_request(
                core, request, slot_start + self.config.llc_hit_latency
            )
            return

        # A request for a block whose own eviction is still awaiting a
        # write-back cannot allocate (the block would be resident twice);
        # it waits for the entry to free.
        if llc.block_is_pending(request.block):
            if sequencer is not None:
                sequencer.register(core, set_index)
            self._events_on and self.events.append(
                SimEvent(
                    cycle=slot_start,
                    slot=self._slot,
                    kind=EventKind.BLOCKED_FULL,
                    core=core,
                    block=request.block,
                    set_index=set_index,
                    detail="own-block-pending-evict",
                )
            )
            return

        # Miss path.  Try to claim a free entry; failing that, make sure
        # an eviction is in flight, which may free an entry within this
        # very slot (clean victim) and still satisfy us.
        if self._try_allocate(core, request, sequencer, set_index, slot_start):
            return

        if sequencer is not None:
            sequencer.register(core, set_index)
            self._events_on and self.events.append(
                SimEvent(
                    cycle=slot_start,
                    slot=self._slot,
                    kind=EventKind.SEQ_REGISTER,
                    core=core,
                    block=request.block,
                    set_index=set_index,
                    detail=f"queue={sequencer.queue_snapshot(set_index)}",
                )
            )

        freed_now = self._ensure_eviction(core, request, set_index, slot_start)
        if freed_now and self._try_allocate(
            core, request, sequencer, set_index, slot_start
        ):
            return

        llc.extra.blocked_no_free_entry += 1
        self._events_on and self.events.append(
            SimEvent(
                cycle=slot_start,
                slot=self._slot,
                kind=EventKind.BLOCKED_FULL,
                core=core,
                block=request.block,
                set_index=set_index,
            )
        )

    # ------------------------------------------------------------------
    # Miss helpers
    # ------------------------------------------------------------------
    def _try_allocate(
        self,
        core: CoreId,
        request: PendingRequest,
        sequencer,
        set_index: int,
        slot_start: Cycle,
    ) -> bool:
        """Claim a free entry if one exists and the sequencer allows it."""
        llc = self.system.llc
        free = llc.free_entry(core, request.block)
        if free is None:
            return False
        if sequencer is not None and not sequencer.may_claim(core, set_index):
            self._events_on and self.events.append(
                SimEvent(
                    cycle=slot_start,
                    slot=self._slot,
                    kind=EventKind.SEQ_BLOCKED,
                    core=core,
                    block=request.block,
                    set_index=set_index,
                    detail=f"head={sequencer.queue_snapshot(set_index)[:1]}",
                )
            )
            return False
        entry = llc.allocate(core, request.block)
        self.system.dram.fetch(request.block, slot_start)
        if sequencer is not None:
            sequencer.complete(core, set_index)
        self._events_on and self.events.append(
            SimEvent(
                cycle=slot_start,
                slot=self._slot,
                kind=EventKind.LLC_ALLOC,
                core=core,
                block=request.block,
                set_index=set_index,
                way=entry.way,
            )
        )
        self._complete_request(
            core, request, slot_start + self.config.llc_miss_latency
        )
        return True

    def _region_waiters(self, core: CoreId, set_index: int) -> int:
        """Cores of ``core``'s partition with a broadcast miss on this set.

        ``core`` itself always counts (it is on the bus right now); the
        others count once their request has been seen on the bus, which
        is all the LLC can observe.
        """
        partition = self.system.llc.partition_of(core)
        count = 0
        for sharer in partition.cores:
            entry = self.system.prbs[sharer].entry
            if entry is None:
                continue
            if sharer != core and entry.first_on_bus_at is None:
                continue
            if self.system.llc.fold(sharer, entry.block) == set_index:
                count += 1
        return count

    def _ensure_eviction(
        self,
        core: CoreId,
        request: PendingRequest,
        set_index: int,
        slot_start: Cycle,
    ) -> bool:
        """Keep one eviction in flight per waiting requester.

        The set sequencer's worst case (Theorem 4.8) has every queued
        request waiting on *its own* in-flight eviction simultaneously —
        evictions are per-requester, not per-set.  An eviction is
        triggered only while free + pending entries cannot cover the
        region's waiting requesters, so a lone requester never holds
        more than one entry in flight and the set is never drained
        below what contention justifies.

        Returns True when the eviction freed its entry immediately (no
        dirty private owner), in which case the requester may still
        complete within this slot (Lemma 4.4's completion rule).
        """
        llc = self.system.llc
        free, pending = llc.region_availability(core, request.block)
        if free + pending >= self._region_waiters(core, set_index):
            return False
        victim = llc.choose_victim(core, request.block)
        if victim is None:
            # Region is all free/pending; nothing valid to evict.  The
            # free case was handled by _try_allocate (sequencer said no).
            return False
        self._events_on and self.events.append(
            SimEvent(
                cycle=slot_start,
                slot=self._slot,
                kind=EventKind.EVICT_START,
                core=core,
                block=victim.block,
                set_index=victim.set_index,
                way=victim.way,
                detail=f"owners={sorted(victim.owners)}",
            )
        )
        dirty_owners = self._back_invalidate(victim, core, slot_start)
        freed_now = llc.begin_eviction(victim, dirty_owners)
        if freed_now:
            if victim.llc_dirty:
                self.system.dram.write_back(victim.block, slot_start)
            self._events_on and self.events.append(
                SimEvent(
                    cycle=slot_start,
                    slot=self._slot,
                    kind=EventKind.ENTRY_FREED,
                    core=core,
                    block=victim.block,
                    set_index=victim.set_index,
                    way=victim.way,
                    detail="clean-eviction",
                )
            )
        return freed_now

    def _back_invalidate(
        self, victim: VictimInfo, requester: CoreId, slot_start: Cycle
    ) -> List[CoreId]:
        """Invalidate private copies of the victim; queue dirty write-backs.

        A dirty copy held by the *requester itself* is written back
        within the same slot: the requester is already on the bus, so
        the victim data rides along with its request (this is what makes
        the private-partition WCL ``(2N+1)·SW`` — a self-eviction never
        costs an extra period).  Dirty copies held by *other* cores are
        the expensive case of the paper's analysis: each costs its owner
        a future bus slot.
        """
        dirty_owners: List[CoreId] = []
        in_slot_self = self.config.self_writeback_in_slot
        for owner in sorted(victim.owners):
            removed = self.system.stacks[owner].invalidate_block(victim.block)
            is_dirty = removed is not None and removed.dirty
            if is_dirty and owner == requester and in_slot_self:
                self.system.dram.write_back(victim.block, slot_start)
                detail = "self-dirty-in-slot"
            elif is_dirty:
                dirty_owners.append(owner)
                self._pwb_push(
                    owner,
                    WritebackEntry(
                        core=owner,
                        block=victim.block,
                        reason=WritebackReason.BACK_INVALIDATION,
                        enqueued_at=slot_start,
                    ),
                )
                detail = "dirty"
            else:
                detail = "clean"
            self._events_on and self.events.append(
                SimEvent(
                    cycle=slot_start,
                    slot=self._slot,
                    kind=EventKind.BACK_INVALIDATE,
                    core=owner,
                    block=victim.block,
                    set_index=victim.set_index,
                    way=victim.way,
                    detail=detail,
                )
            )
        return dirty_owners

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _complete_request(
        self, core: CoreId, request: PendingRequest, response_cycle: Cycle
    ) -> None:
        slot_end = self.schedule.slot_end(self._slot)
        if response_cycle > slot_end:
            raise SimulationError(
                f"response at cycle {response_cycle} spills past slot end "
                f"{slot_end}; latencies must fit in a slot"
            )
        self.system.prbs[core].pop()
        request.completed_at = response_cycle
        self._completed.append(request)
        fill = self.system.stacks[core].fill_from_llc(request.block, request.access)
        if fill.l2_victim is not None:
            self.system.llc.note_private_drop(core, fill.l2_victim.block)
            if fill.l2_victim.dirty:
                self._pwb_push(
                    core,
                    WritebackEntry(
                        core=core,
                        block=fill.l2_victim.block,
                        reason=WritebackReason.CAPACITY,
                        enqueued_at=response_cycle,
                    ),
                )
        self._events_on and self.events.append(
            SimEvent(
                cycle=response_cycle,
                slot=self._slot,
                kind=EventKind.RESPONSE,
                core=core,
                block=request.block,
                detail=f"latency={request.completed_at - request.enqueued_at}",
            )
        )
        finishing = self.system.cores[core]
        finishing.resume(response_cycle)
        if finishing.done and core not in self._done_seen:
            # A core whose trace ends on this response is DONE *now*,
            # and the completion scan at the top of the next iteration
            # sees it — the counters must too, or the run would process
            # one extra slot.  CORE_DONE emission stays in _advance_core
            # (the reference loop never reaches it for the final core).
            self._done_seen.add(core)
            self._done_count += 1
