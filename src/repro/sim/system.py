"""System builder: instantiates every hardware component of a config.

A :class:`System` is the wired-up platform — cores with private stacks,
PRB/PWB buffers and arbiters, the partitioned LLC, per-partition set
sequencers, and the DRAM — ready for the slot engine to drive.
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional

from repro.bus.arbiter import PrbPwbArbiter
from repro.bus.buffers import PendingRequestBuffer, PendingWritebackBuffer
from repro.common.errors import ConfigurationError
from repro.common.types import CoreId
from repro.cpu.core import TraceDrivenCore
from repro.cpu.private_stack import PrivateStack
from repro.llc.llc import PartitionedLlc
from repro.mem.dram import Dram
from repro.sequencer.set_sequencer import SetSequencer
from repro.sim.config import SystemConfig
from repro.workloads.trace import MemoryTrace


class System:
    """All hardware components of one simulated platform."""

    def __init__(
        self,
        config: SystemConfig,
        traces: Mapping[CoreId, MemoryTrace],
        start_cycles: Optional[Mapping[CoreId, int]] = None,
    ) -> None:
        unknown = set(traces) - set(range(config.num_cores))
        if unknown:
            raise ConfigurationError(
                f"traces given for cores {sorted(unknown)} but the system has "
                f"cores 0..{config.num_cores - 1}"
            )
        start_cycles = dict(start_cycles or {})
        unknown_starts = set(start_cycles) - set(range(config.num_cores))
        if unknown_starts:
            raise ConfigurationError(
                f"start_cycles given for unknown cores {sorted(unknown_starts)}"
            )
        self.config = config
        self.schedule = config.build_schedule()
        self.partition_map = config.build_partition_map()
        # The single shared replacement-policy RNG stream.  Every
        # RandomPolicy instance (LLC and private stacks) aliases this
        # object, so restoring its state once at the System level
        # restores them all — which is what makes "random" policies
        # checkpointable (see repro.robustness.checkpoint).
        self.rng = rng = random.Random(config.seed)
        self.llc = PartitionedLlc(
            num_sets=config.llc_sets,
            num_ways=config.llc_ways,
            partition_map=self.partition_map,
            policy=config.llc_policy,
            rng=rng,
        )
        self.dram = Dram(config.dram)
        self.stacks: Dict[CoreId, PrivateStack] = {}
        self.cores: Dict[CoreId, TraceDrivenCore] = {}
        self.prbs: Dict[CoreId, PendingRequestBuffer] = {}
        self.pwbs: Dict[CoreId, PendingWritebackBuffer] = {}
        self.arbiters: Dict[CoreId, PrbPwbArbiter] = {}
        for core_id in range(config.num_cores):
            stack = PrivateStack(core_id, config.stack, rng)
            trace = traces.get(core_id, MemoryTrace(name=f"empty-core{core_id}"))
            self.stacks[core_id] = stack
            self.cores[core_id] = TraceDrivenCore(
                core_id,
                stack,
                trace,
                config.line_size,
                start_cycle=start_cycles.get(core_id, 0),
            )
            self.prbs[core_id] = PendingRequestBuffer(core_id)
            self.pwbs[core_id] = PendingWritebackBuffer(core_id)
            self.arbiters[core_id] = PrbPwbArbiter(config.arbitration)
        # One sequencer per partition that asks for one.  Single-core
        # partitions never contend, so a sequencer there would be inert;
        # we honour the flag anyway to keep configs explicit.
        self.sequencers: Dict[str, SetSequencer] = {
            partition.name: SetSequencer(
                config.llc_sets, config.sequencer_max_queues
            )
            for partition in self.partition_map.partitions
            if partition.sequencer
        }

    def sequencer_for(self, core: CoreId) -> Optional[SetSequencer]:
        """The sequencer ordering ``core``'s partition, if any."""
        partition = self.partition_map.partition_of(core)
        return self.sequencers.get(partition.name)

    def check_inclusivity(self) -> None:
        """Invariant: every privately cached block is VALID in the LLC.

        Called by tests and (optionally) by the engine in paranoid mode.
        Raises :class:`~repro.common.errors.SimulationError` on
        violation.
        """
        from repro.common.errors import SimulationError

        self.llc.validate()
        valid_blocks = set(self.llc.resident_blocks())
        for core_id, stack in self.stacks.items():
            stack.check_l1_inclusion()
            pwb_blocks = set(self.pwbs[core_id].blocks())
            for block in stack.resident_blocks():
                if block not in valid_blocks and block not in pwb_blocks:
                    raise SimulationError(
                        f"inclusivity violated: core {core_id} caches block "
                        f"{block:#x} which is not VALID in the LLC"
                    )
