"""Report export and latency statistics.

Experiment pipelines want machine-readable results: this module dumps a
:class:`~repro.sim.report.SimReport` to JSON (aggregate + per-core) or
CSV (one row per completed request), and provides the latency statistics
(percentiles, histogram) the paper-style WCL plots are built from.
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from repro.common.errors import ReproError
from repro.common.fileio import Durability, persist_text
from repro.common.types import CoreId, Cycle
from repro.sim.report import SimReport


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample."""

    count: int
    minimum: Cycle
    maximum: Cycle
    mean: float
    p50: Cycle
    p90: Cycle
    p99: Cycle

    @classmethod
    def of(cls, latencies: Sequence[Cycle]) -> "LatencyStats":
        """Compute statistics; raises on an empty sample."""
        if not latencies:
            raise ReproError("cannot summarise an empty latency sample")
        ordered = sorted(latencies)
        return cls(
            count=len(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
            mean=sum(ordered) / len(ordered),
            p50=percentile(ordered, 50),
            p90=percentile(ordered, 90),
            p99=percentile(ordered, 99),
        )


def percentile(sorted_sample: Sequence[Cycle], pct: float) -> Cycle:
    """Nearest-rank percentile of an ascending-sorted sample.

    Nearest-rank is the right choice for WCL work: it always returns an
    actually observed latency, never an interpolated value that no
    request experienced.
    """
    if not sorted_sample:
        raise ReproError("percentile of an empty sample")
    if not 0 < pct <= 100:
        raise ReproError(f"percentile must be in (0, 100], got {pct}")
    rank = math.ceil(pct / 100 * len(sorted_sample))
    return sorted_sample[rank - 1]


def latency_histogram(
    latencies: Sequence[Cycle], bucket_width: int
) -> Dict[int, int]:
    """Histogram of latencies with ``bucket_width``-cycle buckets.

    Keys are bucket lower bounds.  A natural width is the TDM slot
    width, which buckets requests by how many slots they waited.
    """
    if bucket_width <= 0:
        raise ReproError(f"bucket_width must be positive, got {bucket_width}")
    histogram: Dict[int, int] = {}
    for latency in latencies:
        bucket = (latency // bucket_width) * bucket_width
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return dict(sorted(histogram.items()))


def report_to_dict(report: SimReport) -> dict:
    """The report's aggregate results as plain JSON-ready data."""
    return {
        "total_slots": report.total_slots,
        "total_cycles": report.total_cycles,
        "timed_out": report.timed_out,
        "makespan": report.makespan,
        "observed_wcl": report.observed_wcl(),
        "observed_bus_wcl": report.observed_bus_wcl(),
        "dram_reads": report.dram_reads,
        "dram_writes": report.dram_writes,
        "llc": {
            "accesses": report.llc_stats.accesses,
            "hits": report.llc_stats.hits,
            "misses": report.llc_stats.misses,
            "hit_rate": report.llc_stats.hit_rate,
            "evictions": report.llc_stats.evictions,
            "back_invalidations": report.llc_back_invalidations,
            "blocked_slots": report.llc_blocked_slots,
        },
        "cores": {
            str(core): {
                "finish_time": core_report.finish_time,
                "requests": core_report.requests,
                "private_hits": core_report.private_hits,
                "observed_wcl": core_report.observed_wcl,
                "observed_bus_wcl": core_report.observed_bus_wcl,
                "mean_latency": core_report.mean_latency,
                "max_bus_attempts": core_report.max_bus_attempts,
                "starved": core_report.outstanding_block is not None,
            }
            for core, core_report in sorted(report.core_reports.items())
        },
    }


def write_report_json(report: SimReport, path: Union[str, Path]) -> None:
    """Write the aggregate report as JSON (requested output: ESSENTIAL)."""
    persist_text(
        Path(path),
        json.dumps(report_to_dict(report), indent=2) + "\n",
        site="report-export",
        durability=Durability.ESSENTIAL,
    )


def write_requests_csv(report: SimReport, path: Union[str, Path]) -> None:
    """Write one CSV row per completed request (requested: ESSENTIAL)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "core",
            "block",
            "enqueued_at",
            "first_on_bus_at",
            "completed_at",
            "latency",
            "bus_latency",
            "bus_attempts",
            "served_by_hit",
        ]
    )
    for record in report.requests:
        writer.writerow(
            [
                record.core,
                record.block,
                record.enqueued_at,
                record.first_on_bus_at,
                record.completed_at,
                record.latency,
                record.bus_latency,
                record.bus_attempts,
                int(record.served_by_hit),
            ]
        )
    persist_text(
        Path(path),
        buffer.getvalue(),
        site="report-export",
        durability=Durability.ESSENTIAL,
    )


def write_events_jsonl(report: SimReport, path: Union[str, Path]) -> None:
    """Write the event log as JSON Lines (one event per line).

    Requires the run to have used ``record_events=True``; raises
    :class:`ReproError` on an empty log so silent no-op exports cannot
    masquerade as traces.
    """
    if len(report.events) == 0:
        raise ReproError(
            "event log is empty; run the simulation with record_events=True"
        )
    lines = [
        json.dumps(
            {
                "cycle": event.cycle,
                "slot": event.slot,
                "kind": event.kind.value,
                "core": event.core,
                "block": event.block,
                "set": event.set_index,
                "way": event.way,
                "detail": event.detail,
            }
        )
        for event in report.events
    ]
    persist_text(
        Path(path),
        "\n".join(lines) + "\n",
        site="report-export",
        durability=Durability.ESSENTIAL,
    )


def core_latency_stats(
    report: SimReport, core: Optional[CoreId] = None
) -> LatencyStats:
    """Latency statistics for one core (or the whole system)."""
    return LatencyStats.of(report.latencies(core))


def render_histogram(
    latencies: Sequence[Cycle],
    bucket_width: int,
    max_bar: int = 50,
) -> str:
    """ASCII latency histogram (one bar per ``bucket_width`` cycles).

    >>> print(render_histogram([40, 60, 70, 220], 100, max_bar=10))
    [  0,100)     3 ##########
    [200,300)     1 ###
    """
    histogram = latency_histogram(latencies, bucket_width)
    if not histogram:
        return "(no samples)"
    peak = max(histogram.values())
    label_width = len(str(max(histogram) + bucket_width))
    lines = []
    for bucket, count in histogram.items():
        bar = "#" * max(1, round(count / peak * max_bar))
        lines.append(
            f"[{bucket:>{label_width}},{bucket + bucket_width:>{label_width}}) "
            f"{count:>5} {bar}"
        )
    return "\n".join(lines)
