"""Parallel task execution with a deterministic merge and supervision.

The paper's evaluation is a grid of *independent* simulations —
configurations × address ranges × seeds — so the sweep and campaign
layers can fan the grid out across worker processes and merge the
results back **deterministically**: every result is keyed by its stable
task name and returned in canonical submission order, so a parallel run
is bit-identical to the serial one (same thunks, same inputs, no shared
mutable state between tasks).

Design notes
------------
* **Fork-backed process-per-task pool.**  Task thunks are closures over
  configs and trace factories, which do not survive pickling; with the
  ``fork`` start method a worker inherits the thunk through the forked
  address space, so arbitrary closures run unchanged.  Only the task's
  *result* (or its exception) crosses the process boundary, via a pipe.
* **Parent-enforced timeouts.**  The serial campaign runner's SIGALRM
  timeout only works on the main thread of the executing process — a
  hung worker cannot be trusted to interrupt itself.  Here the *parent*
  tracks one deadline per in-flight task and kills the worker when
  it expires, so a genuinely wedged simulation (busy loop, deadlock)
  is reclaimed.
* **Liveness supervision.**  With ``hung_after`` set, workers send
  heartbeats over the result pipe from a daemon thread and the parent
  runs a watchdog that distinguishes *hung* (no heartbeat for
  ``hung_after`` seconds — wedged interpreter, deadlock, stalled
  syscall) from merely *slow* (still heartbeating; allowed to run to
  its hard ``timeout``).  A hung worker is torn down with an escalating
  SIGTERM → grace → SIGKILL sequence and, if ``max_restarts`` allows,
  its task is restarted — resuming from its last simulation checkpoint
  when the auto-checkpoint policy is installed (see
  :mod:`repro.robustness.checkpoint`), so the restart re-does only the
  slots since the last snapshot.
* **Resource guards.**  With ``rss_limit_bytes`` set, each child caps
  its own address space via ``RLIMIT_DATA`` (allocation beyond it
  raises ``MemoryError``) and the parent additionally polls
  ``/proc/<pid>/statm`` — no psutil dependency — killing workers whose
  resident set exceeds the ceiling.  Either path quarantines the task
  with a ``resource_exceeded`` status so a leaky configuration is
  diagnosable from the run manifest.
* **Bounded concurrency.**  At most ``jobs`` workers run at once;
  completed slots are refilled from the pending queue in submission
  order (transient retries re-enter the queue with a backoff deadline).
* On platforms without ``fork`` (Windows), :func:`parallel_available`
  is ``False`` and every caller falls back to its serial path.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import (
    ConfigurationError,
    ResourceExceededError,
    TaskHungError,
    TaskTimeoutError,
)
from repro.common.validation import require

#: A pool task: a stable name plus a nullary callable producing the
#: task's result (the same shape the campaign runner uses).
PoolTask = Tuple[str, Callable[[], Any]]

#: Decides whether a worker-side exception is transient (retryable).
TransientPredicate = Callable[[BaseException], bool]

#: Test seam: a forked child that sets this True stops heartbeating
#: while its task keeps running, which is exactly what a wedged
#: interpreter looks like from the parent.  Never set in production.
_HEARTBEATS_DISABLED = False


def parallel_available() -> bool:
    """Whether the fork-backed pool can run on this platform."""
    return hasattr(os, "fork") and (
        "fork" in multiprocessing.get_all_start_methods()
    )


def effective_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/0 means one per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    require(jobs >= 1, f"jobs must be >= 1, got {jobs}", ConfigurationError)
    return jobs


def _process_rss_bytes(pid: int) -> Optional[int]:
    """Resident set size of ``pid`` from ``/proc``, or None off-Linux."""
    try:
        with open(f"/proc/{pid}/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        return None


@dataclass(frozen=True)
class PoolResult:
    """The outcome of one pool task, in the parent process."""

    index: int
    name: str
    #: ``"done"``, ``"error"`` (worker raised), ``"timeout"`` (slow past
    #: the hard budget, killed), ``"hung"`` (stopped heartbeating,
    #: killed, restarts exhausted) or ``"resource_exceeded"`` (RSS guard
    #: tripped, restarts exhausted).
    status: str
    value: Any = None
    #: The worker's exception, re-hydrated in the parent (any non-"done"
    #: status).
    error: Optional[BaseException] = None
    attempts: int = 1
    elapsed_seconds: float = 0.0
    #: Supervision restarts consumed by this task (hung / RSS kills).
    restarts: int = 0

    @property
    def ok(self) -> bool:
        """Whether the task produced a value."""
        return self.status == "done"


def _heartbeat_loop(conn, lock: threading.Lock, stop: threading.Event,
                    interval: float) -> None:
    """Daemon thread in the child: periodic liveness beats up the pipe."""
    while not stop.wait(interval):
        if _HEARTBEATS_DISABLED:
            continue
        try:
            with lock:
                if stop.is_set():
                    return
                conn.send(("hb", None))
        except Exception:
            # Parent gone or pipe closed: nothing left to prove alive to.
            return


def _worker_main(
    thunk: Callable[[], Any],
    conn,
    heartbeat_interval: Optional[float] = None,
    rss_limit_bytes: Optional[int] = None,
) -> None:
    """Run one task in a forked child; ship the outcome up the pipe."""
    if rss_limit_bytes is not None:
        try:
            import resource

            resource.setrlimit(
                resource.RLIMIT_DATA, (rss_limit_bytes, rss_limit_bytes)
            )
        except (ImportError, ValueError, OSError):  # pragma: no cover
            pass  # the parent-side /proc poll still guards this worker
    lock = threading.Lock()
    stop = threading.Event()
    if heartbeat_interval is not None:
        threading.Thread(
            target=_heartbeat_loop,
            args=(conn, lock, stop, heartbeat_interval),
            daemon=True,
        ).start()
    try:
        payload: Tuple[str, Any] = ("ok", thunk())
    except BaseException as exc:  # noqa: BLE001 - ships to the parent
        payload = ("error", exc)
    stop.set()
    try:
        with lock:
            conn.send(payload)
    except Exception as exc:
        # The value (or the exception) did not survive pickling; report
        # that instead of dying silently with an EOF in the parent.
        try:
            with lock:
                conn.send(
                    (
                        "error",
                        RuntimeError(
                            f"task result could not cross the process "
                            f"boundary: {exc}"
                        ),
                    )
                )
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class _Pending:
    index: int
    name: str
    thunk: Callable[[], Any]
    attempts: int = 0
    ready_at: float = 0.0
    restarts: int = 0


@dataclass
class _Running:
    pending: _Pending
    process: multiprocessing.process.BaseProcess
    conn: Any
    started: float
    deadline: Optional[float]
    last_heartbeat: float = 0.0
    next_rss_poll: float = 0.0


class TaskPool:
    """Runs named tasks in forked workers; merges results deterministically.

    Parameters
    ----------
    jobs:
        Maximum concurrent worker processes (>= 1).
    timeout:
        Per-task wall-clock budget in seconds, enforced by the parent —
        an expired worker is killed and its task reports status
        ``"timeout"`` with a :class:`TaskTimeoutError`.  ``None``
        disables it.  A worker that is slow but still heartbeating runs
        until this hard budget; only silent workers are reclaimed early.
    retry_attempts / retry_delay / is_transient:
        Bounded retry for worker failures ``is_transient`` accepts:
        the task re-enters the queue after ``retry_delay(attempt)``
        seconds, at most ``retry_attempts`` total attempts.  Timeouts
        are never retried (a hung task will hang again).
    hung_after:
        Liveness watchdog: a worker that sends no heartbeat for this
        many seconds is declared hung and torn down (SIGTERM, then
        ``kill_grace`` seconds, then SIGKILL).  ``None`` disables
        heartbeats entirely.
    heartbeat_interval:
        Seconds between worker heartbeats; defaults to a quarter of
        ``hung_after`` so several beats must be missed before the
        watchdog fires.
    max_restarts:
        Times a hung or resource-killed task is restarted before being
        quarantined.  Restarted simulations resume from their last
        checkpoint when the auto-checkpoint policy is installed.
    rss_limit_bytes:
        Per-worker resident-memory ceiling, enforced both inside the
        child (``RLIMIT_DATA``) and by a parent-side ``/proc`` poll.
    kill_grace:
        Seconds between SIGTERM and SIGKILL during supervised teardown.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        ``pool.worker_restarts``, ``pool.hung_workers``,
        ``pool.resource_exceeded`` counters and the
        ``pool.heartbeat_gap`` histogram.
    """

    #: Seconds between parent-side /proc RSS polls.
    RSS_POLL_INTERVAL = 0.25

    def __init__(
        self,
        jobs: int,
        timeout: Optional[float] = None,
        retry_attempts: int = 1,
        retry_delay: Callable[[int], float] = lambda attempt: 0.0,
        is_transient: Optional[TransientPredicate] = None,
        hung_after: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
        max_restarts: int = 0,
        rss_limit_bytes: Optional[int] = None,
        kill_grace: float = 2.0,
        registry=None,
    ) -> None:
        require(jobs >= 1, f"jobs must be >= 1, got {jobs}", ConfigurationError)
        if timeout is not None:
            require(
                timeout > 0,
                f"timeout must be positive, got {timeout}",
                ConfigurationError,
            )
        require(
            retry_attempts >= 1,
            f"retry_attempts must be >= 1, got {retry_attempts}",
            ConfigurationError,
        )
        if hung_after is not None:
            require(
                hung_after > 0,
                f"hung_after must be positive, got {hung_after}",
                ConfigurationError,
            )
        if heartbeat_interval is not None:
            require(
                heartbeat_interval > 0,
                f"heartbeat_interval must be positive, got "
                f"{heartbeat_interval}",
                ConfigurationError,
            )
        require(
            max_restarts >= 0,
            f"max_restarts must be >= 0, got {max_restarts}",
            ConfigurationError,
        )
        if rss_limit_bytes is not None:
            require(
                rss_limit_bytes > 0,
                f"rss_limit_bytes must be positive, got {rss_limit_bytes}",
                ConfigurationError,
            )
        require(
            kill_grace >= 0,
            f"kill_grace must be >= 0, got {kill_grace}",
            ConfigurationError,
        )
        if not parallel_available():
            raise ConfigurationError(
                "parallel execution needs the 'fork' start method; "
                "use the serial path on this platform"
            )
        self.jobs = jobs
        self.timeout = timeout
        self.retry_attempts = retry_attempts
        self.retry_delay = retry_delay
        self.is_transient = is_transient or (lambda exc: False)
        self.hung_after = hung_after
        self.heartbeat_interval = heartbeat_interval or (
            hung_after / 4 if hung_after is not None else None
        )
        self.max_restarts = max_restarts
        self.rss_limit_bytes = rss_limit_bytes
        self.kill_grace = kill_grace
        self.registry = registry
        self._context = multiprocessing.get_context("fork")

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[PoolTask],
        on_result: Optional[Callable[[PoolResult], None]] = None,
    ) -> List[PoolResult]:
        """Run every task; return results in submission order.

        ``on_result`` fires in *completion* order as workers finish
        (the campaign runner checkpoints its manifest there); the
        returned list is always in submission order, which is what
        makes parallel aggregation bit-identical to serial.
        """
        names = [name for name, _ in tasks]
        require(
            len(names) == len(set(names)),
            f"pool task names must be unique, got {names}",
            ConfigurationError,
        )
        pending: List[_Pending] = [
            _Pending(index=i, name=name, thunk=thunk)
            for i, (name, thunk) in enumerate(tasks)
        ]
        running: List[_Running] = []
        results: Dict[int, PoolResult] = {}
        try:
            while pending or running:
                now = time.monotonic()
                self._fill_slots(pending, running, now)
                self._wait(pending, running)
                now = time.monotonic()
                self._reap_finished(pending, running, results, now, on_result)
                self._supervise(pending, running, results, now, on_result)
        except BaseException:
            # KeyboardInterrupt (or a callback error): reclaim workers
            # before unwinding so no orphan keeps burning CPU.
            for run in running:
                run.process.kill()
                run.process.join()
                run.conn.close()
            raise
        return [results[i] for i in range(len(tasks))]

    # ------------------------------------------------------------------
    def _fill_slots(
        self, pending: List[_Pending], running: List[_Running], now: float
    ) -> None:
        while pending and len(running) < self.jobs:
            ready = [p for p in pending if p.ready_at <= now]
            if not ready:
                break
            task = ready[0]
            pending.remove(task)
            task.attempts += 1
            parent_conn, child_conn = self._context.Pipe(duplex=False)
            process = self._context.Process(
                target=_worker_main,
                args=(
                    task.thunk,
                    child_conn,
                    self.heartbeat_interval if self.hung_after else None,
                    self.rss_limit_bytes,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            running.append(
                _Running(
                    pending=task,
                    process=process,
                    conn=parent_conn,
                    started=now,
                    deadline=(now + self.timeout) if self.timeout else None,
                    last_heartbeat=now,
                    next_rss_poll=now + self.RSS_POLL_INTERVAL,
                )
            )

    def _wait(self, pending: List[_Pending], running: List[_Running]) -> None:
        now = time.monotonic()
        wake_times = [run.deadline for run in running if run.deadline]
        if self.hung_after is not None:
            wake_times.extend(
                run.last_heartbeat + self.hung_after for run in running
            )
        if self.rss_limit_bytes is not None:
            wake_times.extend(run.next_rss_poll for run in running)
        wake_times.extend(p.ready_at for p in pending if p.ready_at > now)
        wait = max(0.0, min(wake_times) - now) if wake_times else None
        if running:
            multiprocessing.connection.wait(
                [run.conn for run in running], timeout=wait
            )
        elif wait:
            time.sleep(wait)

    def _poll_worker(
        self, run: _Running, now: float
    ) -> Optional[Tuple[str, Any]]:
        """Drain heartbeats; return the final outcome or None if running."""
        try:
            while run.conn.poll():
                message = run.conn.recv()
                if (
                    isinstance(message, tuple)
                    and len(message) == 2
                    and message[0] == "hb"
                ):
                    if self.registry is not None:
                        self.registry.histogram(
                            "pool.heartbeat_gap", 0.1
                        ).observe(now - run.last_heartbeat)
                    run.last_heartbeat = now
                    continue
                return message
        except (EOFError, OSError):
            pass  # pipe closed without a final message
        else:
            if run.process.is_alive():
                return None
        # Worker died without reporting (killed by the OS, or its result
        # pipe broke): surface as a non-transient error rather than
        # hanging the campaign.
        return (
            "error",
            RuntimeError(
                f"worker for task {run.pending.name!r} exited without a "
                f"result (exit code {run.process.exitcode})"
            ),
        )

    def _reap_finished(
        self,
        pending: List[_Pending],
        running: List[_Running],
        results: Dict[int, PoolResult],
        now: float,
        on_result: Optional[Callable[[PoolResult], None]],
    ) -> None:
        for run in list(running):
            outcome = self._poll_worker(run, now)
            if outcome is None:
                continue
            status, payload = outcome
            running.remove(run)
            run.process.join()
            run.conn.close()
            task = run.pending
            if status == "ok":
                result = PoolResult(
                    index=task.index,
                    name=task.name,
                    status="done",
                    value=payload,
                    attempts=task.attempts,
                    elapsed_seconds=now - run.started,
                    restarts=task.restarts,
                )
            elif (
                isinstance(payload, MemoryError)
                and self.rss_limit_bytes is not None
            ):
                # The child's own RLIMIT_DATA tripped: same failure the
                # parent-side poll guards against, same quarantine.
                if self._maybe_restart(task, pending, now, "resource"):
                    continue
                result = self._supervised_result(
                    task, run, now, "resource_exceeded"
                )
            elif (
                self.is_transient(payload)
                and task.attempts < self.retry_attempts
            ):
                task.ready_at = now + self.retry_delay(task.attempts)
                pending.append(task)
                continue
            else:
                result = PoolResult(
                    index=task.index,
                    name=task.name,
                    status="error",
                    error=payload,
                    attempts=task.attempts,
                    elapsed_seconds=now - run.started,
                    restarts=task.restarts,
                )
            results[task.index] = result
            if on_result is not None:
                on_result(result)

    # ------------------------------------------------------------------
    def _terminate(self, run: _Running) -> None:
        """Escalating teardown: SIGTERM, a grace period, then SIGKILL."""
        run.process.terminate()
        run.process.join(self.kill_grace)
        if run.process.is_alive():
            run.process.kill()
        run.process.join()
        run.conn.close()

    def _maybe_restart(
        self, task: _Pending, pending: List[_Pending], now: float, kind: str
    ) -> bool:
        """Requeue a supervised-kill victim if its restart budget allows."""
        if task.restarts >= self.max_restarts:
            return False
        task.restarts += 1
        task.ready_at = now
        pending.append(task)
        if self.registry is not None:
            self.registry.counter("pool.worker_restarts", kind=kind).inc()
        return True

    def _supervised_result(
        self, task: _Pending, run: _Running, now: float, status: str
    ) -> PoolResult:
        if status == "hung":
            error: BaseException = TaskHungError(
                f"task {task.name!r} sent no heartbeat for "
                f"{self.hung_after}s and its worker was torn down "
                f"({task.restarts} restart(s) used)"
            )
            if self.registry is not None:
                self.registry.counter("pool.hung_workers").inc()
        elif status == "resource_exceeded":
            error = ResourceExceededError(
                f"task {task.name!r} exceeded the per-worker memory "
                f"ceiling of {self.rss_limit_bytes} bytes "
                f"({task.restarts} restart(s) used)"
            )
            if self.registry is not None:
                self.registry.counter("pool.resource_exceeded").inc()
        else:
            error = TaskTimeoutError(
                f"task {task.name!r} exceeded its wall-clock budget "
                f"of {self.timeout}s and its worker was killed"
            )
        return PoolResult(
            index=task.index,
            name=task.name,
            status=status,
            error=error,
            attempts=task.attempts,
            elapsed_seconds=now - run.started,
            restarts=task.restarts,
        )

    def _supervise(
        self,
        pending: List[_Pending],
        running: List[_Running],
        results: Dict[int, PoolResult],
        now: float,
        on_result: Optional[Callable[[PoolResult], None]],
    ) -> None:
        """Timeout, liveness and resource enforcement for live workers."""
        for run in list(running):
            task = run.pending
            verdict: Optional[Tuple[str, str]] = None
            if run.deadline is not None and now >= run.deadline:
                # Hard budget: applies even to heartbeating (slow)
                # workers, and is never restarted.
                verdict = ("timeout", "")
            elif (
                self.hung_after is not None
                and now - run.last_heartbeat >= self.hung_after
            ):
                verdict = ("hung", "hung")
            elif (
                self.rss_limit_bytes is not None and now >= run.next_rss_poll
            ):
                run.next_rss_poll = now + self.RSS_POLL_INTERVAL
                rss = _process_rss_bytes(run.process.pid)
                if rss is not None and rss > self.rss_limit_bytes:
                    verdict = ("resource_exceeded", "resource")
            if verdict is None:
                continue
            status, restart_kind = verdict
            self._terminate(run)
            running.remove(run)
            if restart_kind and self._maybe_restart(
                task, pending, now, restart_kind
            ):
                continue
            result = self._supervised_result(task, run, now, status)
            results[task.index] = result
            if on_result is not None:
                on_result(result)


def run_parallel(
    tasks: Sequence[PoolTask],
    jobs: int,
    timeout: Optional[float] = None,
) -> List[Any]:
    """Run ``tasks`` with ``jobs`` workers; return values in task order.

    The strict variant used by the plain (non-robust) sweeps: the first
    failing task — in canonical submission order, regardless of which
    worker failed first — has its worker-side exception re-raised in the
    parent, matching the serial loop's fail-fast behaviour.
    """
    results = TaskPool(jobs=jobs, timeout=timeout).run(tasks)
    for result in results:
        if not result.ok:
            raise result.error  # noqa: B904 - worker traceback is lost
    return [result.value for result in results]
