"""Parallel task execution with a deterministic merge.

The paper's evaluation is a grid of *independent* simulations —
configurations × address ranges × seeds — so the sweep and campaign
layers can fan the grid out across worker processes and merge the
results back **deterministically**: every result is keyed by its stable
task name and returned in canonical submission order, so a parallel run
is bit-identical to the serial one (same thunks, same inputs, no shared
mutable state between tasks).

Design notes
------------
* **Fork-backed process-per-task pool.**  Task thunks are closures over
  configs and trace factories, which do not survive pickling; with the
  ``fork`` start method a worker inherits the thunk through the forked
  address space, so arbitrary closures run unchanged.  Only the task's
  *result* (or its exception) crosses the process boundary, via a pipe.
* **Parent-enforced timeouts.**  The serial campaign runner's SIGALRM
  timeout only works on the main thread of the executing process — a
  hung worker cannot be trusted to interrupt itself.  Here the *parent*
  tracks one deadline per in-flight task and SIGKILLs the worker when
  it expires, so a genuinely wedged simulation (busy loop, deadlock)
  is reclaimed.
* **Bounded concurrency.**  At most ``jobs`` workers run at once;
  completed slots are refilled from the pending queue in submission
  order (transient retries re-enter the queue with a backoff deadline).
* On platforms without ``fork`` (Windows), :func:`parallel_available`
  is ``False`` and every caller falls back to its serial path.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, TaskTimeoutError
from repro.common.validation import require

#: A pool task: a stable name plus a nullary callable producing the
#: task's result (the same shape the campaign runner uses).
PoolTask = Tuple[str, Callable[[], Any]]

#: Decides whether a worker-side exception is transient (retryable).
TransientPredicate = Callable[[BaseException], bool]


def parallel_available() -> bool:
    """Whether the fork-backed pool can run on this platform."""
    return hasattr(os, "fork") and (
        "fork" in multiprocessing.get_all_start_methods()
    )


def effective_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/0 means one per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    require(jobs >= 1, f"jobs must be >= 1, got {jobs}", ConfigurationError)
    return jobs


@dataclass(frozen=True)
class PoolResult:
    """The outcome of one pool task, in the parent process."""

    index: int
    name: str
    #: ``"done"``, ``"error"`` (worker raised) or ``"timeout"`` (killed).
    status: str
    value: Any = None
    #: The worker's exception, re-hydrated in the parent (``error`` /
    #: ``timeout`` status only).
    error: Optional[BaseException] = None
    attempts: int = 1
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the task produced a value."""
        return self.status == "done"


def _worker_main(thunk: Callable[[], Any], conn) -> None:
    """Run one task in a forked child; ship the outcome up the pipe."""
    try:
        payload: Tuple[str, Any] = ("ok", thunk())
    except BaseException as exc:  # noqa: BLE001 - ships to the parent
        payload = ("error", exc)
    try:
        conn.send(payload)
    except Exception as exc:
        # The value (or the exception) did not survive pickling; report
        # that instead of dying silently with an EOF in the parent.
        try:
            conn.send(
                (
                    "error",
                    RuntimeError(
                        f"task result could not cross the process "
                        f"boundary: {exc}"
                    ),
                )
            )
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class _Pending:
    index: int
    name: str
    thunk: Callable[[], Any]
    attempts: int = 0
    ready_at: float = 0.0


@dataclass
class _Running:
    pending: _Pending
    process: multiprocessing.process.BaseProcess
    conn: Any
    started: float
    deadline: Optional[float]


class TaskPool:
    """Runs named tasks in forked workers; merges results deterministically.

    Parameters
    ----------
    jobs:
        Maximum concurrent worker processes (>= 1).
    timeout:
        Per-task wall-clock budget in seconds, enforced by the parent —
        an expired worker is SIGKILLed and its task reports status
        ``"timeout"`` with a :class:`TaskTimeoutError`.  ``None``
        disables it.
    retry_attempts / retry_delay / is_transient:
        Bounded retry for worker failures ``is_transient`` accepts:
        the task re-enters the queue after ``retry_delay(attempt)``
        seconds, at most ``retry_attempts`` total attempts.  Timeouts
        are never retried (a hung task will hang again).
    """

    def __init__(
        self,
        jobs: int,
        timeout: Optional[float] = None,
        retry_attempts: int = 1,
        retry_delay: Callable[[int], float] = lambda attempt: 0.0,
        is_transient: Optional[TransientPredicate] = None,
    ) -> None:
        require(jobs >= 1, f"jobs must be >= 1, got {jobs}", ConfigurationError)
        if timeout is not None:
            require(
                timeout > 0,
                f"timeout must be positive, got {timeout}",
                ConfigurationError,
            )
        require(
            retry_attempts >= 1,
            f"retry_attempts must be >= 1, got {retry_attempts}",
            ConfigurationError,
        )
        if not parallel_available():
            raise ConfigurationError(
                "parallel execution needs the 'fork' start method; "
                "use the serial path on this platform"
            )
        self.jobs = jobs
        self.timeout = timeout
        self.retry_attempts = retry_attempts
        self.retry_delay = retry_delay
        self.is_transient = is_transient or (lambda exc: False)
        self._context = multiprocessing.get_context("fork")

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[PoolTask],
        on_result: Optional[Callable[[PoolResult], None]] = None,
    ) -> List[PoolResult]:
        """Run every task; return results in submission order.

        ``on_result`` fires in *completion* order as workers finish
        (the campaign runner checkpoints its manifest there); the
        returned list is always in submission order, which is what
        makes parallel aggregation bit-identical to serial.
        """
        names = [name for name, _ in tasks]
        require(
            len(names) == len(set(names)),
            f"pool task names must be unique, got {names}",
            ConfigurationError,
        )
        pending: List[_Pending] = [
            _Pending(index=i, name=name, thunk=thunk)
            for i, (name, thunk) in enumerate(tasks)
        ]
        running: List[_Running] = []
        results: Dict[int, PoolResult] = {}
        try:
            while pending or running:
                now = time.monotonic()
                self._fill_slots(pending, running, now)
                self._wait(pending, running)
                now = time.monotonic()
                self._reap_finished(pending, running, results, now, on_result)
                self._kill_expired(running, results, now, on_result)
        except BaseException:
            # KeyboardInterrupt (or a callback error): reclaim workers
            # before unwinding so no orphan keeps burning CPU.
            for run in running:
                run.process.kill()
                run.process.join()
                run.conn.close()
            raise
        return [results[i] for i in range(len(tasks))]

    # ------------------------------------------------------------------
    def _fill_slots(
        self, pending: List[_Pending], running: List[_Running], now: float
    ) -> None:
        while pending and len(running) < self.jobs:
            ready = [p for p in pending if p.ready_at <= now]
            if not ready:
                break
            task = ready[0]
            pending.remove(task)
            task.attempts += 1
            parent_conn, child_conn = self._context.Pipe(duplex=False)
            process = self._context.Process(
                target=_worker_main,
                args=(task.thunk, child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            running.append(
                _Running(
                    pending=task,
                    process=process,
                    conn=parent_conn,
                    started=now,
                    deadline=(now + self.timeout) if self.timeout else None,
                )
            )

    def _wait(self, pending: List[_Pending], running: List[_Running]) -> None:
        now = time.monotonic()
        wake_times = [run.deadline for run in running if run.deadline]
        wake_times.extend(p.ready_at for p in pending if p.ready_at > now)
        wait = max(0.0, min(wake_times) - now) if wake_times else None
        if running:
            multiprocessing.connection.wait(
                [run.conn for run in running], timeout=wait
            )
        elif wait:
            time.sleep(wait)

    def _reap_finished(
        self,
        pending: List[_Pending],
        running: List[_Running],
        results: Dict[int, PoolResult],
        now: float,
        on_result: Optional[Callable[[PoolResult], None]],
    ) -> None:
        for run in list(running):
            if not (run.conn.poll() or not run.process.is_alive()):
                continue
            try:
                status, payload = run.conn.recv()
            except (EOFError, OSError):
                # Worker died without reporting (killed by the OS, or
                # its result pipe broke): surface as a non-transient
                # error rather than hanging the campaign.
                status, payload = (
                    "error",
                    RuntimeError(
                        f"worker for task {run.pending.name!r} exited "
                        f"without a result (exit code "
                        f"{run.process.exitcode})"
                    ),
                )
            running.remove(run)
            run.process.join()
            run.conn.close()
            task = run.pending
            if status == "ok":
                result = PoolResult(
                    index=task.index,
                    name=task.name,
                    status="done",
                    value=payload,
                    attempts=task.attempts,
                    elapsed_seconds=now - run.started,
                )
            elif (
                self.is_transient(payload)
                and task.attempts < self.retry_attempts
            ):
                task.ready_at = now + self.retry_delay(task.attempts)
                pending.append(task)
                continue
            else:
                result = PoolResult(
                    index=task.index,
                    name=task.name,
                    status="error",
                    error=payload,
                    attempts=task.attempts,
                    elapsed_seconds=now - run.started,
                )
            results[task.index] = result
            if on_result is not None:
                on_result(result)

    def _kill_expired(
        self,
        running: List[_Running],
        results: Dict[int, PoolResult],
        now: float,
        on_result: Optional[Callable[[PoolResult], None]],
    ) -> None:
        for run in list(running):
            if run.deadline is None or now < run.deadline:
                continue
            run.process.kill()
            run.process.join()
            run.conn.close()
            running.remove(run)
            task = run.pending
            result = PoolResult(
                index=task.index,
                name=task.name,
                status="timeout",
                error=TaskTimeoutError(
                    f"task {task.name!r} exceeded its wall-clock budget "
                    f"of {self.timeout}s and its worker was killed"
                ),
                attempts=task.attempts,
                elapsed_seconds=now - run.started,
            )
            results[task.index] = result
            if on_result is not None:
                on_result(result)


def run_parallel(
    tasks: Sequence[PoolTask],
    jobs: int,
    timeout: Optional[float] = None,
) -> List[Any]:
    """Run ``tasks`` with ``jobs`` workers; return values in task order.

    The strict variant used by the plain (non-robust) sweeps: the first
    failing task — in canonical submission order, regardless of which
    worker failed first — has its worker-side exception re-raised in the
    parent, matching the serial loop's fail-fast behaviour.
    """
    results = TaskPool(jobs=jobs, timeout=timeout).run(tasks)
    for result in results:
        if not result.ok:
            raise result.error  # noqa: B904 - worker traceback is lost
    return [result.value for result in results]
