"""The slot-accurate trace-driven simulator.

This package reproduces the paper's "in-house trace simulator that
simulates the cache subsystem of a four-core system" (Section 5),
generalised to any core count, geometry and partition map.  Time
advances in TDM bus slots; private-cache execution is folded between
slot boundaries.
"""

from repro.sim.cache import (
    SimResultCache,
    active_result_cache,
    clear_result_cache,
    install_result_cache,
    result_cache_key,
)
from repro.sim.config import SystemConfig
from repro.sim.events import EventKind, SimEvent, EventLog
from repro.sim.parallel import (
    PoolResult,
    TaskPool,
    effective_jobs,
    parallel_available,
    run_parallel,
)
from repro.sim.report import CoreReport, RequestRecord, SimReport
from repro.sim.simulator import Simulator, simulate
from repro.sim.sweeps import SweepResult, compare_configs, sweep_seeds

__all__ = [
    "SimResultCache",
    "active_result_cache",
    "clear_result_cache",
    "install_result_cache",
    "result_cache_key",
    "SystemConfig",
    "EventKind",
    "SimEvent",
    "EventLog",
    "CoreReport",
    "RequestRecord",
    "SimReport",
    "Simulator",
    "simulate",
    "SweepResult",
    "compare_configs",
    "sweep_seeds",
    "PoolResult",
    "TaskPool",
    "effective_jobs",
    "parallel_available",
    "run_parallel",
]
