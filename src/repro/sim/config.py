"""System configuration: everything needed to build one simulated system.

Defaults reproduce the paper's evaluation platform (Section 5): four
cores, a 4-way × 16-set private L2, a 16-way × 32-set LLC, 64-byte
lines, a 1S-TDM bus.  The slot width of 50 cycles is inferred from the
paper's analytical numbers (Figure 7: the SS bound of 5000 cycles equals
``(2·3·4+1)·4·SW``, so ``SW = 50``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.bus.arbiter import ArbitrationPolicy
from repro.bus.schedule import TdmSchedule, one_slot_tdm
from repro.common.errors import ConfigurationError
from repro.common.validation import require, require_non_negative, require_positive
from repro.cpu.private_stack import PrivateStackConfig
from repro.llc.partition import PartitionMap, PartitionSpec
from repro.mem.dram import DramConfig

#: Slot width implied by the paper's Figure 7 analytical WCLs.
PAPER_SLOT_WIDTH = 50

#: The paper's LLC geometry (Section 5).
PAPER_LLC_SETS = 32
PAPER_LLC_WAYS = 16
PAPER_LINE_SIZE = 64


@dataclass(frozen=True)
class SystemConfig:
    """Full description of one simulated platform.

    Parameters
    ----------
    partitions:
        The LLC carving; every core in ``range(num_cores)`` must belong
        to exactly one partition.
    schedule:
        Explicit TDM schedule.  When ``None``, a 1S-TDM schedule over
        ``num_cores`` cores in core order is built (the paper's
        ``{c_ua, c_2, ..., c_N}``).  Passing a non-1S-TDM schedule is
        allowed — that is how the Section 4.1 unbounded scenario is
        demonstrated — but shared partitions then lose their WCL bound.
    llc_hit_latency / llc_miss_latency:
        Cycles from slot start to the response for an LLC hit / for a
        miss that allocates and fetches from DRAM.  Both must fit in a
        slot: the model (and the analysis) require the LLC to respond
        within the requester's slot.
    max_slots:
        Safety stop; a simulation exceeding it reports ``timed_out``
        instead of hanging (used to *detect* starvation).
    """

    num_cores: int = 4
    partitions: Sequence[PartitionSpec] = ()
    slot_width: int = PAPER_SLOT_WIDTH
    schedule: Optional[TdmSchedule] = None
    schedule_order: Optional[Sequence[int]] = None
    line_size: int = PAPER_LINE_SIZE
    llc_sets: int = PAPER_LLC_SETS
    llc_ways: int = PAPER_LLC_WAYS
    llc_policy: str = "lru"
    llc_hit_latency: int = 20
    llc_miss_latency: int = 45
    stack: PrivateStackConfig = field(default_factory=PrivateStackConfig)
    arbitration: ArbitrationPolicy = ArbitrationPolicy.ROUND_ROBIN
    dram: DramConfig = field(default_factory=DramConfig)
    seed: int = 1
    max_slots: int = 2_000_000
    record_events: bool = False
    drain_writebacks: bool = True
    #: Checked mode: install the per-slot invariant monitor
    #: (:mod:`repro.robustness.invariants`) on the engine, so model
    #: invariants — inclusivity, one outstanding request per core,
    #: PENDING_EVICT accounting, sequencer FIFO consistency, observed
    #: latency within the analytical WCL — are verified after *every*
    #: slot instead of only once after the run.  Off by default: the
    #: per-slot checks cost wall clock (see
    #: ``benchmarks/test_bench_checked_overhead.py``), and the post-run
    #: inclusivity check still always runs.
    checked: bool = False
    #: Metrics mode: install the per-slot occupancy sampler
    #: (:mod:`repro.obs.recorder`) on the engine, so the report carries
    #: PWB/PRB occupancy and sequencer QLT-depth histograms over time
    #: in addition to the always-on counters.  Off by default: the
    #: sampler touches every buffer once per slot (see
    #: ``benchmarks/test_bench_metrics_overhead.py`` for the ≤ 15%
    #: budget); disabled runs pay a single ``is None`` test per slot.
    record_metrics: bool = False
    #: Whether a dirty victim owned by the *requesting* core is written
    #: back within the same slot (the requester already holds the bus,
    #: so the victim data can ride along with its request).  True makes
    #: the private-partition critical path match the paper's analytical
    #: ``(2N+1)·SW`` (450 cycles in Figure 7).  False routes
    #: self-evictions through the PWB like any other write-back, which
    #: reproduces the Figure 8 regime where strict partitions pay an
    #: extra write-back round trip per conflict miss.
    self_writeback_in_slot: bool = True
    #: Which slot-engine execution strategy to use.  ``"fast"`` (the
    #: default) enables the idle-slot fast-forward path: stretches of
    #: bus slots in which no core can produce a transaction are skipped
    #: analytically instead of being ticked one by one, with reports,
    #: ``slot_usage`` and all counters bit-identical to the reference
    #: loop (see ``docs/MODEL.md``).  ``"reference"`` always ticks every
    #: slot.  The fast engine silently falls back to the reference loop
    #: whenever exactness cannot be guaranteed cheaply: recorded/streamed
    #: events, per-slot samplers (``record_metrics``), any pre/post-slot
    #: hook (fault injection, ``checked`` invariant monitors) or a
    #: ``random`` replacement policy (its shared RNG stream cannot be
    #: kept in lock-step with the prediction clone).
    engine: str = "fast"
    #: Hardware queue count of each partition's set sequencer (QLT
    #: size).  ``None`` gives one queue per LLC set (never overflows,
    #: the paper's implicit assumption); small values let experiments
    #: study graceful degradation — an overflowed registration falls
    #: back to best-effort (NSS) handling for that request.
    sequencer_max_queues: Optional[int] = None

    def __post_init__(self) -> None:
        require_positive(self.num_cores, "num_cores", ConfigurationError)
        require_positive(self.slot_width, "slot_width", ConfigurationError)
        require_positive(self.line_size, "line_size", ConfigurationError)
        require_positive(self.llc_sets, "llc_sets", ConfigurationError)
        require_positive(self.llc_ways, "llc_ways", ConfigurationError)
        require_positive(self.llc_hit_latency, "llc_hit_latency", ConfigurationError)
        require_positive(self.llc_miss_latency, "llc_miss_latency", ConfigurationError)
        require_non_negative(self.seed, "seed", ConfigurationError)
        require_positive(self.max_slots, "max_slots", ConfigurationError)
        if self.sequencer_max_queues is not None:
            require_positive(
                self.sequencer_max_queues, "sequencer_max_queues", ConfigurationError
            )
        require(
            self.engine in ("fast", "reference"),
            f"engine must be 'fast' or 'reference', got {self.engine!r}",
            ConfigurationError,
        )
        require(
            self.llc_hit_latency <= self.slot_width,
            f"llc_hit_latency ({self.llc_hit_latency}) must fit in a slot "
            f"({self.slot_width}): the LLC responds within the requester's slot",
            ConfigurationError,
        )
        require(
            self.llc_miss_latency <= self.slot_width,
            f"llc_miss_latency ({self.llc_miss_latency}) must fit in a slot "
            f"({self.slot_width}): the LLC responds within the requester's slot",
            ConfigurationError,
        )
        require(
            self.dram.fetch_latency <= self.llc_miss_latency,
            f"llc_miss_latency ({self.llc_miss_latency}) must cover the DRAM "
            f"fetch ({self.dram.fetch_latency})",
            ConfigurationError,
        )
        require(
            bool(self.partitions),
            "SystemConfig needs at least one partition",
            ConfigurationError,
        )
        require(
            not (self.schedule is not None and self.schedule_order is not None),
            "give either schedule or schedule_order, not both",
            ConfigurationError,
        )
        # Validate the carving and core coverage eagerly.
        partition_map = self.build_partition_map()
        covered = set(partition_map.cores)
        expected = set(range(self.num_cores))
        require(
            covered == expected,
            f"partitions must cover exactly cores {sorted(expected)}, "
            f"got {sorted(covered)}",
            ConfigurationError,
        )
        schedule = self.build_schedule()
        require(
            set(schedule.cores) == expected,
            f"schedule must cover exactly cores {sorted(expected)}, "
            f"got {sorted(schedule.cores)}",
            ConfigurationError,
        )
        require(
            schedule.slot_width == self.slot_width,
            f"schedule slot width {schedule.slot_width} != config slot_width "
            f"{self.slot_width}",
            ConfigurationError,
        )

    def build_partition_map(self) -> PartitionMap:
        """Validate and return the LLC carving."""
        return PartitionMap(list(self.partitions), self.llc_sets, self.llc_ways)

    def build_schedule(self) -> TdmSchedule:
        """The TDM schedule the bus will follow."""
        if self.schedule is not None:
            return self.schedule
        return one_slot_tdm(self.num_cores, self.slot_width, self.schedule_order)

    @property
    def period_cycles(self) -> int:
        """Cycles per TDM period."""
        return self.build_schedule().period_cycles

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        schedule = self.build_schedule()
        parts = ", ".join(
            f"{p.name}({p.num_sets}x{p.num_ways}w, cores={list(p.cores)}"
            f"{', SS' if p.sequencer else ''})"
            for p in self.partitions
        )
        return (
            f"{self.num_cores} cores, LLC {self.llc_sets}x{self.llc_ways}w "
            f"{self.line_size}B lines, SW={self.slot_width}, "
            f"schedule={list(schedule.slot_owners)} "
            f"({'1S-TDM' if schedule.is_one_slot else 'general TDM'}), "
            f"partitions: {parts}"
        )
