"""Content-addressed simulation result cache with bit-identical replay.

Every ``repro-llc fig7/fig8/compare/all`` invocation re-simulates
configurations that have already been run — the paper's sweeps share
many (schedule, partition, workload) points, and CI re-runs the same
scenarios on every push.  This module turns repeated sweeps into
near-zero-cost lookups:

* A **canonical fingerprint** keys each completed run: SHA-256 over
  canonical JSON of the full :class:`~repro.sim.config.SystemConfig`,
  the per-core workload traces (length-framed per record, so no two
  distinct record sequences can collide by re-chunking), the engine
  selection (part of the config) and a model/schema version stamp
  (:data:`MODEL_SCHEMA_VERSION`) bumped on any intentional change to
  the simulation model, which invalidates every older entry at once.
* The **cached value** stores the complete report (per-request records,
  per-core aggregates, LLC/DRAM/sequencer counters, slot usage, the
  event log when the run recorded one, and the per-slot sampler's
  metric rows), wrapped in the same two-layer integrity document the
  checkpoint layer writes (payload digest + tmp-fsync-rename), so a
  kill mid-write can never leave a readable half-entry.
* **Verification on read**: an unreadable, truncated, corrupted,
  version-mismatched or swapped-on-disk entry is detected (payload
  digest, kind/version stamps, embedded key, event-log fingerprint),
  counted in the ``sim_cache.corruption`` / ``sim_cache.version_mismatch``
  counters, deleted, and the run transparently recomputed — a stale or
  tampered result is never surfaced.

The hard guarantee mirrors the checkpoint layer's: a cache **hit
produces byte-identical reports, metrics exports and figures** to a
fresh simulation, serial and under ``--jobs N`` (fork workers inherit
the installed cache and deduplicate through the shared directory; the
atomic rename makes concurrent same-key stores benign).

Install the cache process-wide with :func:`install_result_cache`
(the CLI's ``--cache DIR`` lands there);
:func:`repro.sim.simulator.simulate` consults it on every plain call.
Runs with a streaming ``event_sink`` bypass the cache entirely — their
side effects happen *during* the run and cannot be replayed from a
stored report.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.common.errors import CheckpointError, ConfigurationError
from repro.common.fileio import (
    Durability,
    count_io,
    persist_text,
    read_bytes,
    sweep_stale_tmp,
)
from repro.common.validation import require
from repro.sim.events import EventKind, EventLog, SimEvent
from repro.sim.report import CoreReport, RequestRecord, SimReport
from repro.workloads.trace import MemoryTrace

#: Entry-format version: bumped on incompatible changes to the cached
#: payload layout.  A mismatch discards the entry (recompute, never
#: trust).
RESULT_CACHE_VERSION = 1

#: File-format discriminator, so an unrelated JSON file dropped into
#: the cache directory is rejected instead of mis-parsed.
RESULT_CACHE_KIND = "repro-sim-result"

#: The model/schema stamp folded into every cache key.  Bump it on any
#: intentional change to the simulation model's observable behaviour
#: (event stream, latency accounting, report fields): every existing
#: entry then misses by construction and is recomputed under the new
#: model — the invalidation story documented in docs/PERFORMANCE.md.
MODEL_SCHEMA_VERSION = 1


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Canonical fingerprints
# ----------------------------------------------------------------------
def config_key_document(config) -> Dict[str, Any]:
    """The config as canonical JSON-ready data, every field included.

    Unlike :func:`repro.robustness.checkpoint.config_fingerprint` (a
    repr hash, opaque), this walks the dataclass tree field by field so
    the key document is stable, inspectable and — crucially — complete:
    *every* declared field enters the key, including ones left at their
    default, so two configs differing in any field (``seed``,
    ``drain_writebacks``, ``engine``, a nested latency) can never
    silently collide on one key.
    """
    return _jsonify(config)


def _jsonify(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # fields() skips non-field memo slots (TdmSchedule._positions),
        # which asdict-style __dict__ walks would drag into the key.
        return {
            f.name: _jsonify(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, enum.Enum):
        # Enum members (ArbitrationPolicy, ...) key by their value.
        return value.value
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonify(val) for key, val in value.items()}
    if isinstance(value, (int, float, str)):
        return value
    raise ConfigurationError(
        f"cannot build a cache key over {type(value).__name__!r} "
        f"({value!r}); extend repro.sim.cache._jsonify"
    )


def trace_cache_fingerprint(trace: MemoryTrace) -> str:
    """SHA-256 over a trace's records, length-framed per record.

    Each record's canonical line is prefixed with its byte length
    (4-byte big-endian), so the digest depends on the exact record
    *sequence*, not merely the concatenated bytes — no two distinct
    chunkings of the same byte stream can collide.  The trace *name* is
    deliberately excluded: the simulation result does not depend on it,
    and keying on it would miss renamed-but-identical workloads.

    Traces are immutable, so the digest is memoised on the trace
    object (same trick as the checkpoint layer's fingerprint).
    """
    cached = getattr(trace, "_result_cache_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for record in trace:
        line = record.to_line().encode()
        digest.update(len(line).to_bytes(4, "big"))
        digest.update(line)
    fingerprint = digest.hexdigest()
    trace._result_cache_fingerprint = fingerprint
    return fingerprint


def result_cache_key(
    config,
    traces: Mapping[int, MemoryTrace],
    start_cycles: Optional[Mapping[int, int]] = None,
) -> str:
    """The canonical cache key of one ``simulate()`` call.

    Covers everything the report is a deterministic function of: the
    full config (engine selection included), every core's trace, any
    start-cycle offsets, and the model/schema version stamp.  Mapping
    iteration order does not matter — the document is serialised with
    sorted keys — and zero start-cycle offsets are dropped before
    keying: a missing core defaults to cycle 0 in the simulator, so
    ``{0: 0}``, ``{}`` and ``None`` all describe the same run.
    """
    offsets = (
        {core: cycle for core, cycle in start_cycles.items() if cycle}
        if start_cycles
        else {}
    )
    document = {
        "kind": RESULT_CACHE_KIND,
        "version": RESULT_CACHE_VERSION,
        "model_schema_version": MODEL_SCHEMA_VERSION,
        "config": config_key_document(config),
        "traces": {
            str(core): trace_cache_fingerprint(trace)
            for core, trace in traces.items()
        },
        "start_cycles": (
            {str(core): cycle for core, cycle in offsets.items()}
            if offsets
            else None
        ),
    }
    return hashlib.sha256(_canonical(document).encode()).hexdigest()


# ----------------------------------------------------------------------
# Report (de)serialisation
# ----------------------------------------------------------------------
def _event_state(event: SimEvent) -> List[Any]:
    return [
        event.cycle,
        event.slot,
        event.kind.value,
        event.core,
        event.block,
        event.set_index,
        event.way,
        event.detail,
    ]


def _load_event(state: List[Any]) -> SimEvent:
    cycle, slot, kind, core, block, set_index, way, detail = state
    return SimEvent(
        cycle=cycle,
        slot=slot,
        kind=EventKind(kind),
        core=core,
        block=block,
        set_index=set_index,
        way=way,
        detail=detail,
    )


def event_log_fingerprint(events: List[List[Any]]) -> str:
    """SHA-256 over the flattened event states of one stored log."""
    return hashlib.sha256(_canonical(events).encode()).hexdigest()


def _dataclass_state(value) -> Dict[str, Any]:
    return {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}


def report_state(report: SimReport) -> Dict[str, Any]:
    """The report as plain JSON-ready data, losslessly.

    Requests are flattened to a stride-7 list and events to stride-8
    lists (the checkpoint layer's encoding): hot sweeps produce tens of
    thousands of both, and per-record dicts would triple the entry
    size.  Integer-keyed maps become sorted ``[key, value]`` pairs so
    the canonical JSON is order-independent.
    """
    flat_requests: List[Any] = []
    for record in report.requests:
        flat_requests.extend(
            [
                record.core,
                record.block,
                record.enqueued_at,
                record.first_on_bus_at,
                record.completed_at,
                record.bus_attempts,
                int(record.served_by_hit),
            ]
        )
    events: Optional[List[List[Any]]] = None
    if report.events.enabled:
        events = [_event_state(event) for event in report.events]
    return {
        "total_slots": report.total_slots,
        "total_cycles": report.total_cycles,
        "timed_out": report.timed_out,
        "core_reports": [
            [
                core,
                {
                    "finish_time": core_report.finish_time,
                    "requests": core_report.requests,
                    "private_hits": core_report.private_hits,
                    "observed_wcl": core_report.observed_wcl,
                    "observed_bus_wcl": core_report.observed_bus_wcl,
                    "mean_latency": core_report.mean_latency,
                    "max_bus_attempts": core_report.max_bus_attempts,
                    "outstanding_block": core_report.outstanding_block,
                    "outstanding_attempts": core_report.outstanding_attempts,
                },
            ]
            for core, core_report in sorted(report.core_reports.items())
        ],
        "requests": flat_requests,
        "llc_stats": _dataclass_state(report.llc_stats),
        "llc_back_invalidations": report.llc_back_invalidations,
        "llc_blocked_slots": report.llc_blocked_slots,
        "sequencer_stats": [
            [name, _dataclass_state(stats)]
            for name, stats in sorted(report.sequencer_stats.items())
        ],
        "pwb_max_occupancy": [
            [core, occupancy]
            for core, occupancy in sorted(report.pwb_max_occupancy.items())
        ],
        "dram_reads": report.dram_reads,
        "dram_writes": report.dram_writes,
        "slot_usage": [
            [core, dict(usage)] for core, usage in sorted(report.slot_usage.items())
        ],
        "arbiter_contended": [
            [core, count]
            for core, count in sorted(report.arbiter_contended.items())
        ],
        "events": events,
        "metrics_rows": (
            report.metrics.rows() if report.metrics is not None else None
        ),
    }


def load_report(state: Mapping[str, Any]) -> SimReport:
    """Rebuild a :class:`SimReport` from :func:`report_state` output.

    Every call builds fresh objects, so two hits on the same entry
    never share mutable state.
    """
    from repro.cache.stats import CacheStats
    from repro.sequencer.set_sequencer import SequencerStats

    flat = state["requests"]
    requests = [
        RequestRecord(
            core=flat[i],
            block=flat[i + 1],
            enqueued_at=flat[i + 2],
            first_on_bus_at=flat[i + 3],
            completed_at=flat[i + 4],
            bus_attempts=flat[i + 5],
            served_by_hit=bool(flat[i + 6]),
        )
        for i in range(0, len(flat), 7)
    ]
    events = EventLog(enabled=state["events"] is not None)
    if state["events"] is not None:
        events._events = [_load_event(item) for item in state["events"]]
    metrics = None
    if state["metrics_rows"] is not None:
        from repro.obs.metrics import registry_from_rows

        metrics = registry_from_rows(state["metrics_rows"])
    return SimReport(
        total_slots=state["total_slots"],
        total_cycles=state["total_cycles"],
        timed_out=state["timed_out"],
        core_reports={
            core: CoreReport(core=core, **fields)
            for core, fields in state["core_reports"]
        },
        requests=requests,
        llc_stats=CacheStats(**state["llc_stats"]),
        llc_back_invalidations=state["llc_back_invalidations"],
        llc_blocked_slots=state["llc_blocked_slots"],
        sequencer_stats={
            name: SequencerStats(**fields)
            for name, fields in state["sequencer_stats"]
        },
        pwb_max_occupancy={
            core: occupancy for core, occupancy in state["pwb_max_occupancy"]
        },
        dram_reads=state["dram_reads"],
        dram_writes=state["dram_writes"],
        slot_usage={core: dict(usage) for core, usage in state["slot_usage"]},
        arbiter_contended={
            core: count for core, count in state["arbiter_contended"]
        },
        events=events,
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class CacheDirStats:
    """What ``repro-llc cache stats`` reports about one directory."""

    entries: int
    total_bytes: int


class SimResultCache:
    """A content-addressed result store over one directory.

    One JSON file per entry (``res-<key>.json``), written with the
    tmp-fsync-rename discipline and verified on every read.  An
    in-process memo deduplicates identical lookups *within* a campaign
    (the second identical ``simulate()`` call never touches the disk);
    across fork workers the shared directory provides the dedup.

    ``registry`` (a :class:`repro.obs.metrics.MetricsRegistry`) carries
    the observability counters: ``sim_cache.hits``, ``sim_cache.misses``,
    ``sim_cache.stores``, ``sim_cache.evictions``,
    ``sim_cache.corruption`` and ``sim_cache.version_mismatch``.
    """

    def __init__(self, directory: Union[str, Path], registry=None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # A kill mid-store orphans a *.tmp sibling; it never holds
        # state a committed entry lacks, so clear them on startup.
        sweep_stale_tmp(self.directory)
        if registry is None:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        self.registry = registry
        self._memo: Dict[str, Dict[str, Any]] = {}

    # -- paths ----------------------------------------------------------
    def entry_path(self, key: str) -> Path:
        """Where the entry of one canonical key lives."""
        return self.directory / f"res-{key}.json"

    def _count(self, name: str, amount: int = 1) -> None:
        self.registry.counter(f"sim_cache.{name}").inc(amount)

    # -- lookup / store -------------------------------------------------
    def lookup(
        self,
        config,
        traces: Mapping[int, MemoryTrace],
        start_cycles: Optional[Mapping[int, int]] = None,
    ) -> Optional[SimReport]:
        """The cached report of one run, or ``None`` (counted as a miss).

        A corrupt or version-mismatched entry is deleted, counted, and
        reported as a miss — the caller recomputes; stale bytes are
        never trusted.
        """
        key = result_cache_key(config, traces, start_cycles)
        memo = self._memo.get(key)
        if memo is not None:
            self._count("hits")
            return load_report(memo["report"])
        path = self.entry_path(key)
        try:
            data = read_bytes(path, site="result-cache")
        except FileNotFoundError:
            # A cold miss is normal operation, not a swallowed error.
            self._count("misses")
            return None
        except OSError:
            count_io("io.swallowed.result-cache.read")
            self._count("misses")
            return None
        payload = self._validated_payload(path, data, expected_key=key)
        if payload is None:
            self._count("misses")
            return None
        self._memo[key] = payload
        self._count("hits")
        return load_report(payload["report"])

    def store(
        self,
        config,
        traces: Mapping[int, MemoryTrace],
        start_cycles: Optional[Mapping[int, int]],
        report: SimReport,
    ) -> Optional[Path]:
        """Persist one completed run's report under its canonical key.

        Cache entries are BEST-EFFORT: a failed write degrades through
        the ``result-cache`` circuit breaker (counted, one stderr
        notice) and returns ``None`` — the in-process memo still holds
        the report, so the run's results are unaffected.
        """
        key = result_cache_key(config, traces, start_cycles)
        state = report_state(report)
        payload = {
            "kind": RESULT_CACHE_KIND,
            "version": RESULT_CACHE_VERSION,
            "model_schema_version": MODEL_SCHEMA_VERSION,
            "key": key,
            "event_fingerprint": (
                event_log_fingerprint(state["events"])
                if state["events"] is not None
                else None
            ),
            "report": state,
        }
        body = _canonical(payload)
        digest = hashlib.sha256(body.encode()).hexdigest()
        # Splice the already-canonical body in by hand rather than
        # dumping it a second time: "integrity" < "payload" sorts
        # first, so the bytes match a full canonical dump exactly.
        document = '{"integrity":"%s","payload":%s}' % (digest, body)
        target = persist_text(
            self.entry_path(key),
            document + "\n",
            site="result-cache",
            durability=Durability.BEST_EFFORT,
        )
        self._memo[key] = payload
        if target is not None:
            self._count("stores")
            self._count("stored_bytes", len(document) + 1)
        return target

    # -- validation ------------------------------------------------------
    def _validated_payload(
        self, path: Path, data: bytes, expected_key: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """Verify one entry's document; delete and count on any defect."""
        try:
            payload = _checked_payload(path, data, expected_key)
        except CheckpointError as exc:
            counter = (
                "version_mismatch"
                if "version" in str(exc)
                else "corruption"
            )
            self._count(counter)
            path.unlink(missing_ok=True)
            return None
        return payload

    # -- maintenance -----------------------------------------------------
    def _entries(self) -> List[Path]:
        return sorted(self.directory.glob("res-*.json"))

    def stats(self) -> CacheDirStats:
        """Entry count and total bytes of the directory."""
        entries = self._entries()
        return CacheDirStats(
            entries=len(entries),
            total_bytes=sum(path.stat().st_size for path in entries),
        )

    def verify(self) -> Tuple[List[Path], List[Path]]:
        """Integrity-sweep every entry; returns ``(ok, removed)``.

        Defective entries are deleted (and counted) exactly as a lookup
        would have — verification leaves only trustworthy entries.
        """
        ok: List[Path] = []
        removed: List[Path] = []
        for path in self._entries():
            try:
                data = read_bytes(path, site="result-cache")
            except OSError:
                count_io("io.swallowed.result-cache.read")
                continue
            if self._validated_payload(path, data) is None:
                removed.append(path)
            else:
                ok.append(path)
        return ok, removed

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_secs: Optional[float] = None,
        now: Optional[float] = None,
    ) -> List[Path]:
        """Prune the directory; returns the evicted entry paths.

        Entries older than ``max_age_secs`` go first; then the oldest
        entries are evicted until the directory fits ``max_bytes``.
        Ordering is the deterministic ``(mtime, name)`` pair, so two gc
        runs over the same directory evict the same files.
        """
        require(
            max_bytes is not None or max_age_secs is not None,
            "gc needs max_bytes and/or max_age_secs",
            ConfigurationError,
        )
        if now is None:
            now = time.time()
        entries = []
        for path in self._entries():
            stat = path.stat()
            entries.append((stat.st_mtime, path.name, path, stat.st_size))
        entries.sort()
        evicted: List[Path] = []
        kept: List[Tuple[float, str, Path, int]] = []
        for mtime, name, path, size in entries:
            if max_age_secs is not None and now - mtime > max_age_secs:
                evicted.append(path)
            else:
                kept.append((mtime, name, path, size))
        if max_bytes is not None:
            total = sum(size for _, _, _, size in kept)
            index = 0
            while total > max_bytes and index < len(kept):
                _, _, path, size = kept[index]
                evicted.append(path)
                total -= size
                index += 1
        for path in evicted:
            path.unlink(missing_ok=True)
            self._memo.pop(_key_of_entry(path), None)
            self._count("evictions")
        return evicted


def _key_of_entry(path: Path) -> str:
    name = path.name
    if name.startswith("res-") and name.endswith(".json"):
        return name[len("res-") : -len(".json")]
    return name


def _checked_payload(
    path: Path, data: bytes, expected_key: Optional[str]
) -> Dict[str, Any]:
    """Parse and verify one entry document; raise on any defect.

    Raises :class:`CheckpointError` (the shared integrity-failure
    vocabulary) naming the defect: bytes that are not UTF-8 at all,
    truncated/invalid JSON, missing payload, integrity-digest mismatch
    (a flipped byte anywhere in the payload), wrong kind, malformed or
    mismatched version, an embedded key that does not match the
    requested one (two entries swapped on disk), or an event-log
    fingerprint that does not cover the stored events.
    """
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CheckpointError(
            f"cache entry {path} is not UTF-8 (corrupted bytes): {exc}"
        ) from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"cache entry {path} is not valid JSON (truncated or "
            f"corrupted write?): {exc}"
        ) from exc
    if not isinstance(document, dict) or "payload" not in document:
        raise CheckpointError(f"{path} is not a result-cache entry")
    payload = document["payload"]
    recomputed = hashlib.sha256(_canonical(payload).encode()).hexdigest()
    if document.get("integrity") != recomputed:
        raise CheckpointError(
            f"cache entry {path} failed its integrity check"
        )
    if not isinstance(payload, dict) or payload.get("kind") != RESULT_CACHE_KIND:
        raise CheckpointError(
            f"{path} is not a simulation result entry "
            f"(kind={payload.get('kind') if isinstance(payload, dict) else None!r})"
        )
    version = payload.get("version")
    if version != RESULT_CACHE_VERSION:
        raise CheckpointError(
            f"cache entry {path} has version {version!r}; this build "
            f"reads version {RESULT_CACHE_VERSION}"
        )
    if payload.get("model_schema_version") != MODEL_SCHEMA_VERSION:
        raise CheckpointError(
            f"cache entry {path} was written under model schema version "
            f"{payload.get('model_schema_version')!r}, not "
            f"{MODEL_SCHEMA_VERSION}"
        )
    embedded = payload.get("key")
    expected = expected_key if expected_key is not None else _key_of_entry(path)
    if embedded != expected:
        raise CheckpointError(
            f"cache entry {path} embeds key {embedded!r} but was read "
            f"for key {expected!r} (entries swapped on disk?)"
        )
    report = payload.get("report")
    if not isinstance(report, dict):
        raise CheckpointError(f"cache entry {path} has no report section")
    events = report.get("events")
    fingerprint = payload.get("event_fingerprint")
    if events is not None:
        if fingerprint != event_log_fingerprint(events):
            raise CheckpointError(
                f"cache entry {path} has an event-log fingerprint "
                "mismatch"
            )
    elif fingerprint is not None:
        raise CheckpointError(
            f"cache entry {path} carries an event fingerprint but no "
            "event log"
        )
    return payload


# ----------------------------------------------------------------------
# Process-wide policy (mirrors the auto-checkpoint policy)
# ----------------------------------------------------------------------
_ACTIVE_CACHE: Optional[SimResultCache] = None


def install_result_cache(
    directory: Union[str, Path], registry=None
) -> SimResultCache:
    """Install the process-wide result cache.

    Every subsequent :func:`repro.sim.simulator.simulate` call without
    a streaming ``event_sink`` first looks its canonical key up in
    ``directory`` and, on a miss, stores its finished report there.
    Fork-pool workers inherit the installed cache, which is how
    ``--cache DIR`` threads through ``fig7``/``fig8``/``compare``/
    ``all`` campaigns without each experiment knowing (worker-process
    counters stay in the workers; the shared directory is the contract).
    """
    global _ACTIVE_CACHE
    _ACTIVE_CACHE = SimResultCache(directory, registry=registry)
    return _ACTIVE_CACHE


def clear_result_cache() -> None:
    """Remove the process-wide result cache."""
    global _ACTIVE_CACHE
    _ACTIVE_CACHE = None


def active_result_cache() -> Optional[SimResultCache]:
    """The installed cache, if any."""
    return _ACTIVE_CACHE
