"""The simulator facade: build a system, run it, return the report.

This is the one-call entry point most users (and all experiment
harnesses) go through::

    from repro import SystemConfig, simulate
    report = simulate(config, traces)
    print(report.observed_wcl())
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping, Optional

from repro.common.types import CoreId, Cycle
from repro.sim.config import SystemConfig
from repro.sim.engine import SlotEngine
from repro.sim.events import SimEvent
from repro.sim.report import SimReport
from repro.sim.system import System
from repro.workloads.trace import MemoryTrace


class Simulator:
    """Owns one built system and its engine.

    Use this class directly when you need access to the wired components
    (for scripted scenario tests or invariant checks); use
    :func:`simulate` for the common build-run-report path.
    """

    def __init__(
        self,
        config: SystemConfig,
        traces: Mapping[CoreId, MemoryTrace],
        start_cycles: Optional[Mapping[CoreId, Cycle]] = None,
        event_sink: Optional[Callable[[SimEvent], None]] = None,
        engine: Optional[str] = None,
    ) -> None:
        if engine is not None and engine != config.engine:
            config = dataclasses.replace(config, engine=engine)
        self.config = config
        self.system = System(config, traces, start_cycles)
        self.engine = SlotEngine(self.system)
        if event_sink is not None:
            self.engine.attach_event_sink(event_sink)
        self.monitor = None
        if config.checked:
            # Imported lazily: repro.robustness imports the sim layer.
            from repro.robustness.invariants import InvariantMonitor

            self.monitor = InvariantMonitor.install_checked(self.engine)

    def run(self) -> SimReport:
        """Run to completion (or the slot cap) and return the report."""
        report = self.engine.run()
        # Post-run sanity: the model must leave the hierarchy coherent.
        self.system.check_inclusivity()
        return report


def simulate(
    config: SystemConfig,
    traces: Mapping[CoreId, MemoryTrace],
    start_cycles: Optional[Mapping[CoreId, Cycle]] = None,
    event_sink: Optional[Callable[[SimEvent], None]] = None,
    engine: Optional[str] = None,
) -> SimReport:
    """Build the system described by ``config``, replay ``traces``.

    ``start_cycles`` optionally delays a core's first access — used by
    scripted scenarios that need a precise initial cache state (e.g. the
    Section 4.1 witness fills the set before the victim's request).
    ``event_sink`` streams every engine event as it happens (see
    :class:`repro.obs.tracing.JsonlTraceSink`), independent of
    ``record_events``.  ``engine`` overrides ``config.engine`` for this
    run only (``"fast"`` or ``"reference"``) — the CLI's ``--engine``
    flag lands here.
    """
    return Simulator(config, traces, start_cycles, event_sink, engine).run()
