"""The simulator facade: build a system, run it, return the report.

This is the one-call entry point most users (and all experiment
harnesses) go through::

    from repro import SystemConfig, simulate
    report = simulate(config, traces)
    print(report.observed_wcl())
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping, Optional

from repro.common.types import CoreId, Cycle
from repro.sim.config import SystemConfig
from repro.sim.engine import SlotEngine
from repro.sim.events import SimEvent
from repro.sim.report import SimReport
from repro.sim.system import System
from repro.workloads.trace import MemoryTrace


class Simulator:
    """Owns one built system and its engine.

    Use this class directly when you need access to the wired components
    (for scripted scenario tests or invariant checks); use
    :func:`simulate` for the common build-run-report path.
    """

    def __init__(
        self,
        config: SystemConfig,
        traces: Mapping[CoreId, MemoryTrace],
        start_cycles: Optional[Mapping[CoreId, Cycle]] = None,
        event_sink: Optional[Callable[[SimEvent], None]] = None,
        engine: Optional[str] = None,
    ) -> None:
        if engine is not None and engine != config.engine:
            config = dataclasses.replace(config, engine=engine)
        self.config = config
        self.system = System(config, traces, start_cycles)
        self.engine = SlotEngine(self.system)
        if event_sink is not None:
            self.engine.attach_event_sink(event_sink)
        self.monitor = None
        if config.checked:
            # Imported lazily: repro.robustness imports the sim layer.
            from repro.robustness.invariants import InvariantMonitor

            self.monitor = InvariantMonitor.install_checked(self.engine)

    def run(self) -> SimReport:
        """Run to completion (or the slot cap) and return the report."""
        report = self.engine.run()
        # Post-run sanity: the model must leave the hierarchy coherent.
        self.system.check_inclusivity()
        return report

    def checkpoint(self, path, registry=None):
        """Write a crash-consistent checkpoint of the current state.

        See :mod:`repro.robustness.checkpoint` for the format and the
        guarantees.  Returns the written path.
        """
        # Imported lazily: repro.robustness imports the sim layer.
        from repro.robustness.checkpoint import save_checkpoint

        return save_checkpoint(self, path, registry=registry)

    @classmethod
    def restore(
        cls,
        path,
        config: SystemConfig,
        traces: Mapping[CoreId, MemoryTrace],
        start_cycles: Optional[Mapping[CoreId, Cycle]] = None,
        event_sink: Optional[Callable[[SimEvent], None]] = None,
        engine: Optional[str] = None,
        registry=None,
    ) -> "Simulator":
        """Rebuild a simulator and load a checkpoint into it.

        ``config`` and ``traces`` must match the ones the checkpoint
        was written under (verified by fingerprint); the run then
        continues bit-identically to one that was never interrupted.
        A run that traced events to disk must pass an ``event_sink``
        reopened from the checkpoint's recorded sink state (see
        :meth:`repro.obs.tracing.JsonlTraceSink.reopen`).
        """
        from repro.robustness.checkpoint import (
            load_checkpoint,
            restore_simulator,
        )

        payload = load_checkpoint(path, registry=registry)
        sim = cls(config, traces, start_cycles, event_sink, engine)
        restore_simulator(sim, payload)
        return sim


def simulate(
    config: SystemConfig,
    traces: Mapping[CoreId, MemoryTrace],
    start_cycles: Optional[Mapping[CoreId, Cycle]] = None,
    event_sink: Optional[Callable[[SimEvent], None]] = None,
    engine: Optional[str] = None,
    checkpoint_path=None,
    checkpoint_every_slots: Optional[int] = None,
    checkpoint_every_secs: Optional[float] = None,
) -> SimReport:
    """Build the system described by ``config``, replay ``traces``.

    ``start_cycles`` optionally delays a core's first access — used by
    scripted scenarios that need a precise initial cache state (e.g. the
    Section 4.1 witness fills the set before the victim's request).
    ``event_sink`` streams every engine event as it happens (see
    :class:`repro.obs.tracing.JsonlTraceSink`), independent of
    ``record_events``.  ``engine`` overrides ``config.engine`` for this
    run only (``"fast"`` or ``"reference"``) — the CLI's ``--engine``
    flag lands here.

    Passing ``checkpoint_path`` (plus an interval) runs resumably: the
    simulation periodically writes a crash-consistent checkpoint and, if
    the file already exists, resumes from it instead of starting over —
    with a byte-identical final report.  When no explicit checkpoint
    arguments are given, a process-wide auto-checkpoint policy installed
    via :func:`repro.robustness.checkpoint.install_auto_checkpoints`
    (e.g. by the CLI's ``--checkpoint-dir``) applies; fork-pool workers
    inherit it, which is how campaign tasks checkpoint transparently.

    When a process-wide result cache is installed
    (:func:`repro.sim.cache.install_result_cache`, the CLI's
    ``--cache DIR``), the call first looks up its canonical fingerprint
    — full config, traces, engine, model version — and a hit returns
    the stored report without simulating, byte-identical to a fresh
    run (reports, metrics exports, figures; see
    ``docs/PERFORMANCE.md``).  A miss simulates as usual and stores the
    finished report.  Runs with a streaming ``event_sink`` bypass the
    cache: the sink's side effects happen during the run and cannot be
    replayed from a stored result.
    """
    from repro.sim.cache import active_result_cache

    cache = active_result_cache()
    if cache is not None and event_sink is None:
        cached_config = config
        if engine is not None and engine != config.engine:
            cached_config = dataclasses.replace(config, engine=engine)
        cached = cache.lookup(cached_config, traces, start_cycles)
        if cached is not None:
            return cached
        report = _simulate_uncached(
            config,
            traces,
            start_cycles,
            event_sink,
            engine,
            checkpoint_path,
            checkpoint_every_slots,
            checkpoint_every_secs,
        )
        cache.store(cached_config, traces, start_cycles, report)
        return report
    return _simulate_uncached(
        config,
        traces,
        start_cycles,
        event_sink,
        engine,
        checkpoint_path,
        checkpoint_every_slots,
        checkpoint_every_secs,
    )


def _simulate_uncached(
    config: SystemConfig,
    traces: Mapping[CoreId, MemoryTrace],
    start_cycles: Optional[Mapping[CoreId, Cycle]] = None,
    event_sink: Optional[Callable[[SimEvent], None]] = None,
    engine: Optional[str] = None,
    checkpoint_path=None,
    checkpoint_every_slots: Optional[int] = None,
    checkpoint_every_secs: Optional[float] = None,
) -> SimReport:
    """The build-run-report path of :func:`simulate`, cache-free."""
    if checkpoint_path is None and checkpoint_every_slots is None:
        from repro.robustness.checkpoint import auto_checkpoint_policy

        policy = auto_checkpoint_policy()
        if policy is not None:
            from repro.robustness.checkpoint import (
                default_checkpoint_path,
                run_resumable,
            )

            from repro.common.fileio import Durability

            run_config = config
            if engine is not None and engine != config.engine:
                run_config = dataclasses.replace(config, engine=engine)
            # Policy-driven auto-checkpoints are an accelerator the run
            # can live without: save them BEST-EFFORT so a full scratch
            # directory degrades the store instead of killing the run.
            return run_resumable(
                config,
                traces,
                path=default_checkpoint_path(
                    policy.directory, run_config, traces
                ),
                every_slots=policy.every_slots,
                every_secs=policy.every_secs,
                start_cycles=start_cycles,
                event_sink=event_sink,
                engine=engine,
                durability=Durability.BEST_EFFORT,
                site="auto-checkpoint",
            )
    if checkpoint_path is None and (
        checkpoint_every_slots is not None or checkpoint_every_secs is not None
    ):
        from repro.common.errors import ConfigurationError

        raise ConfigurationError(
            "a checkpoint interval was given without checkpoint_path; "
            "pass checkpoint_path or install an auto-checkpoint policy"
        )
    if checkpoint_path is not None:
        from repro.robustness.checkpoint import run_resumable

        return run_resumable(
            config,
            traces,
            path=checkpoint_path,
            every_slots=checkpoint_every_slots,
            every_secs=checkpoint_every_secs,
            start_cycles=start_cycles,
            event_sink=event_sink,
            engine=engine,
        )
    return Simulator(config, traces, start_cycles, event_sink, engine).run()
