"""Seed sweeps: distributional results instead of single-run numbers.

A single seed gives one sample of observed WCL / execution time; the
WCL experiments in particular care about the *maximum over runs*.  This
module runs the same configuration across many workload seeds and
aggregates — the standard methodology step between "we simulated once"
and a reportable number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.types import CoreId, Cycle
from repro.common.validation import require
from repro.sim.config import SystemConfig
from repro.sim.report import SimReport
from repro.sim.simulator import simulate
from repro.workloads.trace import MemoryTrace

#: Builds one seed's per-core traces.
TraceFactory = Callable[[int], Mapping[CoreId, MemoryTrace]]


@dataclass(frozen=True)
class SweepResult:
    """Aggregates over one configuration's seed sweep."""

    seeds: tuple
    observed_wcls: tuple
    makespans: tuple

    @property
    def max_observed_wcl(self) -> Cycle:
        """The reportable observed WCL: the max across seeds."""
        return max(self.observed_wcls)

    @property
    def mean_makespan(self) -> float:
        """Average execution time across seeds."""
        return sum(self.makespans) / len(self.makespans)

    @property
    def wcl_spread(self) -> Cycle:
        """Max minus min observed WCL (seed sensitivity)."""
        return max(self.observed_wcls) - min(self.observed_wcls)


def run_seed(
    config: SystemConfig,
    trace_factory: TraceFactory,
    seed: int,
    check: Optional[Callable[[SimReport], None]] = None,
) -> SimReport:
    """Run one seed of a sweep; the unit of work sweep runners schedule.

    ``check`` (e.g. a bound assertion) runs on the report before it is
    returned; its exception propagates with the offending seed attached.
    The crash-tolerant sweep (:func:`repro.robustness.runner.sweep_seeds_robust`)
    wraps exactly this function per task.
    """
    report = simulate(config, trace_factory(seed))
    if check is not None:
        try:
            check(report)
        except AssertionError as exc:
            raise AssertionError(f"seed {seed}: {exc}") from exc
    return report


def sweep_seeds(
    config: SystemConfig,
    trace_factory: TraceFactory,
    seeds: Sequence[int],
    check: Optional[Callable[[SimReport], None]] = None,
) -> SweepResult:
    """Run ``config`` once per seed; optionally verify each report."""
    require(bool(seeds), "sweep needs at least one seed", ConfigurationError)
    observed: List[Cycle] = []
    makespans: List[Cycle] = []
    for seed in seeds:
        report = run_seed(config, trace_factory, seed, check)
        observed.append(report.observed_wcl())
        makespans.append(report.makespan)
    return SweepResult(
        seeds=tuple(seeds),
        observed_wcls=tuple(observed),
        makespans=tuple(makespans),
    )


def compare_configs(
    configs: Mapping[str, SystemConfig],
    trace_factory: TraceFactory,
    seeds: Sequence[int],
) -> Dict[str, SweepResult]:
    """Sweep several configurations over the *same* seeded workloads.

    The factory receives only the seed, so every configuration replays
    identical traces — the paper's "same memory addresses across
    different partitioned configurations" requirement, now across a
    whole distribution.
    """
    return {
        name: sweep_seeds(config, trace_factory, seeds)
        for name, config in configs.items()
    }
