"""Seed sweeps: distributional results instead of single-run numbers.

A single seed gives one sample of observed WCL / execution time; the
WCL experiments in particular care about the *maximum over runs*.  This
module runs the same configuration across many workload seeds and
aggregates — the standard methodology step between "we simulated once"
and a reportable number.

Every run goes through :func:`repro.sim.simulator.simulate`, so an
installed result cache (:func:`repro.sim.cache.install_result_cache`,
the CLI's ``--cache DIR``) applies per seed: re-running a sweep with
unchanged configs and seeds replays the stored reports byte-identically
instead of simulating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
)

from repro.common.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
from repro.common.types import CoreId, Cycle
from repro.common.validation import require
from repro.sim.config import SystemConfig
from repro.sim.report import SimReport
from repro.sim.simulator import simulate
from repro.workloads.trace import MemoryTrace

#: Builds one seed's per-core traces.
TraceFactory = Callable[[int], Mapping[CoreId, MemoryTrace]]


@dataclass(frozen=True)
class SweepResult:
    """Aggregates over one configuration's seed sweep."""

    seeds: tuple
    observed_wcls: tuple
    makespans: tuple
    #: Merged per-seed metrics (``sweep_seeds(with_metrics=True)``
    #: only), every series labelled ``seed=<seed>``.  Excluded from
    #: equality: two sweeps are "the same sweep" by their aggregates.
    metrics: Optional["MetricsRegistry"] = field(default=None, compare=False)

    @property
    def max_observed_wcl(self) -> Cycle:
        """The reportable observed WCL: the max across seeds."""
        return max(self.observed_wcls)

    @property
    def mean_makespan(self) -> float:
        """Average execution time across seeds."""
        return sum(self.makespans) / len(self.makespans)

    @property
    def wcl_spread(self) -> Cycle:
        """Max minus min observed WCL (seed sensitivity)."""
        return max(self.observed_wcls) - min(self.observed_wcls)


def require_complete_run(report: SimReport, context: str = "run") -> None:
    """Fail loudly when a report cannot carry WCL evidence.

    A run that hit the slot cap (``timed_out``) or stopped with starved
    cores reports an ``observed_wcl`` computed over the requests that
    *did* complete — ``max(..., default=0)`` — so a fully wedged run
    reports WCL 0 and would vacuously "pass" any analytical bound.
    Every sweep/bound check must reject such reports instead of
    treating them as evidence.
    """
    starved = report.starved_cores()
    if report.timed_out or starved:
        raise SimulationError(
            f"{context} did not complete (timed_out={report.timed_out}, "
            f"starved_cores={starved}); its observed WCL of "
            f"{report.observed_wcl()} cycles covers only the requests "
            "that finished and cannot be checked against a bound"
        )


def run_seed(
    config: SystemConfig,
    trace_factory: TraceFactory,
    seed: int,
    check: Optional[Callable[[SimReport], None]] = None,
    allow_incomplete: bool = False,
) -> SimReport:
    """Run one seed of a sweep; the unit of work sweep runners schedule.

    ``check`` (e.g. a bound assertion) runs on the report before it is
    returned; its exception propagates with the offending seed attached.
    The crash-tolerant sweep (:func:`repro.robustness.runner.sweep_seeds_robust`)
    wraps exactly this function per task.

    A timed-out or starved run raises :class:`SimulationError` (before
    ``check`` sees it) unless ``allow_incomplete=True``: an incomplete
    run's observed WCL covers only the requests that finished, so
    letting it flow into bound checks would pass them vacuously.
    """
    report = simulate(config, trace_factory(seed))
    if not allow_incomplete:
        require_complete_run(report, context=f"seed {seed}")
    if check is not None:
        try:
            check(report)
        except AssertionError as exc:
            raise AssertionError(f"seed {seed}: {exc}") from exc
    return report


def _sweep_reports(
    config: SystemConfig,
    trace_factory: TraceFactory,
    seeds: Sequence[int],
    check: Optional[Callable[[SimReport], None]],
    jobs: int,
) -> List[SimReport]:
    """One report per seed, in seed order, serial or fanned out."""
    from repro.sim.parallel import parallel_available, run_parallel

    if jobs > 1 and len(seeds) > 1 and parallel_available():
        tasks = [
            (
                f"seed-{seed}",
                lambda seed=seed: run_seed(config, trace_factory, seed, check),
            )
            for seed in seeds
        ]
        return run_parallel(tasks, jobs=jobs)
    return [run_seed(config, trace_factory, seed, check) for seed in seeds]


def sweep_seeds(
    config: SystemConfig,
    trace_factory: TraceFactory,
    seeds: Sequence[int],
    check: Optional[Callable[[SimReport], None]] = None,
    jobs: int = 1,
    with_metrics: bool = False,
) -> SweepResult:
    """Run ``config`` once per seed; optionally verify each report.

    With ``jobs > 1`` the per-seed simulations run in worker processes
    (:mod:`repro.sim.parallel`); results are aggregated in canonical
    seed order, so the returned :class:`SweepResult` is bit-identical
    to the serial one.  With ``with_metrics=True`` each seed's report
    is distilled into a ``seed``-labelled registry and merged in seed
    order into ``result.metrics`` — the same canonical-order merge, so
    parallel metrics equal serial metrics byte for byte.
    """
    require(bool(seeds), "sweep needs at least one seed", ConfigurationError)
    reports = _sweep_reports(config, trace_factory, seeds, check, jobs)
    metrics = None
    if with_metrics:
        from repro.obs.collect import collect_metrics
        from repro.obs.metrics import merge_all

        metrics = merge_all(
            [
                collect_metrics(report, config.slot_width).relabel(seed=seed)
                for seed, report in zip(seeds, reports)
            ]
        )
    return SweepResult(
        seeds=tuple(seeds),
        observed_wcls=tuple(report.observed_wcl() for report in reports),
        makespans=tuple(report.makespan for report in reports),
        metrics=metrics,
    )


def compare_configs(
    configs: Mapping[str, SystemConfig],
    trace_factory: TraceFactory,
    seeds: Sequence[int],
    jobs: int = 1,
) -> Dict[str, SweepResult]:
    """Sweep several configurations over the *same* seeded workloads.

    The factory receives only the seed, so every configuration replays
    identical traces — the paper's "same memory addresses across
    different partitioned configurations" requirement, now across a
    whole distribution.

    With ``jobs > 1`` the whole configuration × seed grid is flattened
    into one task pool, then re-aggregated per configuration in
    canonical (insertion, seed) order — identical to the serial result.
    """
    from repro.sim.parallel import parallel_available, run_parallel

    names = list(configs)
    if jobs > 1 and len(names) * len(seeds) > 1 and parallel_available():
        tasks = [
            (
                f"{name}/seed-{seed}",
                lambda name=name, seed=seed: run_seed(
                    configs[name], trace_factory, seed
                ),
            )
            for name in names
            for seed in seeds
        ]
        reports = run_parallel(tasks, jobs=jobs)
        per_config = {
            name: reports[i * len(seeds) : (i + 1) * len(seeds)]
            for i, name in enumerate(names)
        }
        return {
            name: SweepResult(
                seeds=tuple(seeds),
                observed_wcls=tuple(r.observed_wcl() for r in cell),
                makespans=tuple(r.makespan for r in cell),
            )
            for name, cell in per_config.items()
        }
    return {
        name: sweep_seeds(config, trace_factory, seeds)
        for name, config in configs.items()
    }
