"""Simulation reports: per-request records and aggregate results.

The two quantities the paper's evaluation plots come straight from
here: **observed WCL** (the maximum request latency of a core, Figure 7)
and **execution time** (the cycle at which a core's trace finishes,
Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.bus.buffers import PendingRequest
from repro.cache.stats import CacheStats
from repro.common.errors import SimulationError
from repro.common.types import BlockAddress, CoreId, Cycle
from repro.sim.events import EventLog

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.system import System


@dataclass(frozen=True)
class RequestRecord:
    """One completed LLC request, as measured."""

    core: CoreId
    block: BlockAddress
    enqueued_at: Cycle
    first_on_bus_at: Cycle
    completed_at: Cycle
    bus_attempts: int
    #: Whether the LLC served the request without a DRAM fetch.
    served_by_hit: bool

    @property
    def latency(self) -> Cycle:
        """End-to-end latency: L2 miss to LLC response."""
        return self.completed_at - self.enqueued_at

    @property
    def bus_latency(self) -> Cycle:
        """Latency from the first bus broadcast to the response.

        This is the quantity Theorems 4.7/4.8 bound: their critical
        instance starts at the slot in which the request is issued.
        """
        return self.completed_at - self.first_on_bus_at


@dataclass
class CoreReport:
    """Aggregate results for one core."""

    core: CoreId
    finish_time: Optional[Cycle]
    requests: int
    private_hits: int
    observed_wcl: Cycle
    observed_bus_wcl: Cycle
    mean_latency: float
    max_bus_attempts: int
    outstanding_block: Optional[BlockAddress] = None
    outstanding_attempts: int = 0

    @property
    def completed(self) -> bool:
        """Whether the core's trace ran to completion."""
        return self.finish_time is not None


@dataclass
class SimReport:
    """Everything a simulation produced."""

    total_slots: int
    total_cycles: Cycle
    timed_out: bool
    core_reports: Dict[CoreId, CoreReport]
    requests: List[RequestRecord]
    llc_stats: CacheStats
    llc_back_invalidations: int
    llc_blocked_slots: int
    sequencer_stats: Dict[str, "object"]
    pwb_max_occupancy: Dict[CoreId, int]
    dram_reads: int
    dram_writes: int
    #: Per core: how many of its bus slots went to requests,
    #: write-backs, or passed idle.
    slot_usage: Dict[CoreId, Dict[str, int]] = field(default_factory=dict)
    #: Per core: slots where PRB *and* PWB both had work and the
    #: arbiter had to pick (Corollary 4.5 pressure).
    arbiter_contended: Dict[CoreId, int] = field(default_factory=dict)
    events: EventLog = field(default_factory=lambda: EventLog(enabled=False))
    #: Per-slot sampler output (``record_metrics=True`` runs only);
    #: merged into the derived catalogue by
    #: :func:`repro.obs.collect.collect_metrics`.
    metrics: Optional["MetricsRegistry"] = None

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> Cycle:
        """Largest per-core finish time (the Figure 8 execution time)."""
        times = [
            report.finish_time
            for report in self.core_reports.values()
            if report.finish_time is not None
        ]
        return max(times) if times else 0

    def execution_time(self, core: CoreId) -> Cycle:
        """Finish time of one core; raises if it never finished."""
        report = self.core_reports[core]
        if report.finish_time is None:
            raise SimulationError(
                f"core {core} did not finish (timed_out={self.timed_out})"
            )
        return report.finish_time

    def observed_wcl(self, core: Optional[CoreId] = None) -> Cycle:
        """Max request latency of one core, or across all cores."""
        if core is not None:
            return self.core_reports[core].observed_wcl
        return max(
            (report.observed_wcl for report in self.core_reports.values()),
            default=0,
        )

    def observed_bus_wcl(self, core: Optional[CoreId] = None) -> Cycle:
        """Max first-broadcast-to-response latency (the theorem's clock)."""
        if core is not None:
            return self.core_reports[core].observed_bus_wcl
        return max(
            (report.observed_bus_wcl for report in self.core_reports.values()),
            default=0,
        )

    def latencies(self, core: Optional[CoreId] = None) -> List[Cycle]:
        """All request latencies, optionally filtered by core."""
        return [
            record.latency
            for record in self.requests
            if core is None or record.core == core
        ]

    def bus_utilization(self, core: Optional[CoreId] = None) -> float:
        """Fraction of (the core's) bus slots that carried a transaction.

        System-wide when ``core`` is ``None``.  0.0 when no slots ran.
        """
        usage = (
            [self.slot_usage[core]]
            if core is not None
            else list(self.slot_usage.values())
        )
        busy = sum(u["request"] + u["writeback"] for u in usage)
        total = busy + sum(u["idle"] for u in usage)
        return busy / total if total else 0.0

    def starved_cores(self) -> List[CoreId]:
        """Cores left with an uncompleted request when the run stopped.

        Non-empty together with ``timed_out`` is the signature of the
        Section 4.1 unbounded-latency scenario.
        """
        return [
            report.core
            for report in self.core_reports.values()
            if report.outstanding_block is not None
        ]


def build_report(
    system: "System",
    completed: Sequence[PendingRequest],
    total_slots: int,
    timed_out: bool,
    events: EventLog,
    slot_usage: Optional[Dict[CoreId, Dict[str, int]]] = None,
    metrics: Optional["MetricsRegistry"] = None,
) -> SimReport:
    """Assemble the report from a finished (or stopped) engine run."""
    records: List[RequestRecord] = []
    for request in completed:
        if request.completed_at is None or request.first_on_bus_at is None:
            raise SimulationError("completed list holds an unfinished request")
        records.append(
            RequestRecord(
                core=request.core,
                block=request.block,
                enqueued_at=request.enqueued_at,
                first_on_bus_at=request.first_on_bus_at,
                completed_at=request.completed_at,
                bus_attempts=request.bus_attempts,
                served_by_hit=request.served_by_hit,
            )
        )
    core_reports: Dict[CoreId, CoreReport] = {}
    for core_id, core in system.cores.items():
        core_records = [record for record in records if record.core == core_id]
        latencies = [record.latency for record in core_records]
        bus_latencies = [record.bus_latency for record in core_records]
        outstanding = system.prbs[core_id].entry
        core_reports[core_id] = CoreReport(
            core=core_id,
            finish_time=core.finish_time,
            requests=len(core_records),
            private_hits=core.private_hits,
            observed_wcl=max(latencies, default=0),
            observed_bus_wcl=max(bus_latencies, default=0),
            mean_latency=(sum(latencies) / len(latencies)) if latencies else 0.0,
            max_bus_attempts=max(
                (record.bus_attempts for record in core_records), default=0
            ),
            outstanding_block=outstanding.block if outstanding else None,
            outstanding_attempts=outstanding.bus_attempts if outstanding else 0,
        )
    return SimReport(
        total_slots=total_slots,
        total_cycles=total_slots * system.schedule.slot_width,
        timed_out=timed_out,
        core_reports=core_reports,
        requests=records,
        llc_stats=system.llc.stats,
        llc_back_invalidations=system.llc.extra.back_invalidations,
        llc_blocked_slots=system.llc.extra.blocked_no_free_entry,
        sequencer_stats={
            name: sequencer.stats for name, sequencer in system.sequencers.items()
        },
        pwb_max_occupancy={
            core_id: pwb.max_occupancy for core_id, pwb in system.pwbs.items()
        },
        dram_reads=system.dram.stats.reads,
        dram_writes=system.dram.stats.writes,
        slot_usage=dict(slot_usage or {}),
        arbiter_contended={
            core_id: arbiter.contended_slots
            for core_id, arbiter in system.arbiters.items()
        },
        events=events,
        metrics=metrics,
    )
