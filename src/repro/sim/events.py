"""Structured simulation events.

When a simulation runs with ``record_events=True``, the engine appends
one :class:`SimEvent` per observable action.  The event log is how the
paper's step-by-step figures (Figures 2, 3 and 4) are encoded as
integration tests: a scripted scenario runs and the test asserts the
exact slot-by-slot sequence of evictions, write-backs and responses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.common.types import BlockAddress, CoreId, Cycle, SlotIndex


class EventKind(enum.Enum):
    """The observable actions of the slot engine."""

    SLOT_IDLE = "slot-idle"
    REQ_BROADCAST = "req-broadcast"
    LLC_HIT = "llc-hit"
    LLC_ALLOC = "llc-alloc"
    EVICT_START = "evict-start"
    BACK_INVALIDATE = "back-invalidate"
    ENTRY_FREED = "entry-freed"
    WB_SENT = "wb-sent"
    RESPONSE = "response"
    SEQ_REGISTER = "seq-register"
    SEQ_BLOCKED = "seq-blocked"
    BLOCKED_FULL = "blocked-full"
    CORE_DONE = "core-done"


@dataclass(frozen=True)
class SimEvent:
    """One engine action, time-stamped by cycle and bus slot."""

    cycle: Cycle
    slot: SlotIndex
    kind: EventKind
    core: Optional[CoreId] = None
    block: Optional[BlockAddress] = None
    set_index: Optional[int] = None
    way: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        parts = [f"[c{self.cycle:>7} s{self.slot:>5}] {self.kind.value}"]
        if self.core is not None:
            parts.append(f"core={self.core}")
        if self.block is not None:
            parts.append(f"block={self.block:#x}")
        if self.set_index is not None:
            parts.append(f"set={self.set_index}")
        if self.way is not None:
            parts.append(f"way={self.way}")
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


class EventLog:
    """Append-only event container with query helpers for tests.

    Besides in-memory recording (``enabled``), the log supports
    streaming **sinks**: callables receiving every appended event as it
    happens (:class:`repro.obs.tracing.JsonlTraceSink` is the standard
    one).  Sinks fire even when in-memory recording is disabled, which
    is how long campaigns trace to disk without the ``O(events)``
    memory footprint.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[SimEvent] = []
        self._sinks: List[Callable[[SimEvent], None]] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self._events)

    @property
    def active(self) -> bool:
        """Whether appended events go anywhere (storage or a sink)."""
        return self.enabled or bool(self._sinks)

    def attach_sink(self, sink: Callable[[SimEvent], None]) -> None:
        """Stream every future event to ``sink`` (storage unaffected)."""
        self._sinks.append(sink)

    def append(self, event: SimEvent) -> None:
        """Record an event (no-op when disabled and no sink attached)."""
        if self.enabled:
            self._events.append(event)
        for sink in self._sinks:
            sink(event)

    def all(self) -> List[SimEvent]:
        """All recorded events, in order."""
        return list(self._events)

    def of_kind(self, kind: EventKind) -> List[SimEvent]:
        """Events of one kind, in order."""
        return [event for event in self._events if event.kind is kind]

    def for_core(self, core: CoreId) -> List[SimEvent]:
        """Events attributed to one core, in order."""
        return [event for event in self._events if event.core == core]

    def counts(self) -> Dict[EventKind, int]:
        """Histogram of event kinds."""
        histogram: Dict[EventKind, int] = {}
        for event in self._events:
            histogram[event.kind] = histogram.get(event.kind, 0) + 1
        return histogram

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable dump (first ``limit`` events)."""
        events = self._events if limit is None else self._events[:limit]
        return "\n".join(str(event) for event in events)
