"""Synthetic workload generation (Section 5, "Workload generation").

The paper: "We use synthetic workloads consisting of memory requests to
random addresses within various address ranges.  We enforce disjoint
address ranges for each core to guarantee that accesses to shared data
does not occur.  For a certain address range, a core issues the same
memory addresses across different partitioned configurations."

Determinism is achieved by seeding each core's stream with
``(seed, core)`` only — the partition configuration never enters the
seed, so the same (core, range, length) triple replays identically
across SS / NSS / P runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.types import AccessType, CoreId
from repro.common.validation import require, require_non_negative, require_positive
from repro.mem.address import AddressRange
from repro.workloads.trace import MemoryTrace, TraceRecord


@dataclass(frozen=True)
class SyntheticWorkloadConfig:
    """Parameters of the paper's synthetic workload.

    Parameters
    ----------
    num_requests:
        Records per core trace.
    address_range_size:
        Byte span each core draws addresses from (the x-axis of
        Figures 7 and 8).
    line_size:
        Cache line size; addresses are line-aligned like real L2-miss
        streams (sub-line offsets never change cache behaviour).
    write_fraction:
        Probability a record is a write.  Writes dirty private copies
        and therefore force bus write-backs on LLC evictions — the
        worst-case-relevant behaviour; the default makes every access a
        write as the WCL experiment intends.
    seed:
        Base seed; core ``i`` uses stream ``seed * 1_000_003 + i``.
    range_stride:
        Byte distance between consecutive cores' range bases; defaults
        to ``address_range_size`` (tightly packed disjoint ranges).
    max_think_cycles:
        When positive, each record carries a uniform random compute gap
        in ``[0, max_think_cycles]`` — think time before the access.
        The paper's workload is back-to-back (0, the default).
    """

    num_requests: int = 1000
    address_range_size: int = 4096
    line_size: int = 64
    write_fraction: float = 1.0
    seed: int = 2022
    range_stride: Optional[int] = None
    max_think_cycles: int = 0

    def __post_init__(self) -> None:
        require_positive(self.num_requests, "num_requests", ConfigurationError)
        require_positive(self.address_range_size, "address_range_size", ConfigurationError)
        require_positive(self.line_size, "line_size", ConfigurationError)
        require(
            0.0 <= self.write_fraction <= 1.0,
            f"write_fraction must be in [0, 1], got {self.write_fraction}",
            ConfigurationError,
        )
        require_non_negative(self.seed, "seed", ConfigurationError)
        require_non_negative(self.max_think_cycles, "max_think_cycles", ConfigurationError)
        if self.range_stride is not None:
            require(
                self.range_stride >= self.address_range_size,
                "range_stride smaller than address_range_size would overlap "
                "the per-core ranges",
                ConfigurationError,
            )

    def core_range(self, core: CoreId) -> AddressRange:
        """The disjoint address range assigned to ``core``."""
        stride = self.range_stride or self.address_range_size
        return AddressRange(base=core * stride, size=self.address_range_size)


def generate_core_trace(
    config: SyntheticWorkloadConfig, core: CoreId
) -> MemoryTrace:
    """Generate one core's random-address trace.

    The stream depends only on ``(config.seed, core, num_requests,
    address_range_size, write_fraction)`` — never on the partition
    configuration — so Section 5's replay guarantee holds.
    """
    rng = random.Random(config.seed * 1_000_003 + core)
    core_range = config.core_range(core)
    num_lines = core_range.num_blocks(config.line_size)
    first_block = core_range.base // config.line_size
    records: List[TraceRecord] = []
    for _ in range(config.num_requests):
        block = first_block + rng.randrange(num_lines)
        address = block * config.line_size
        is_write = rng.random() < config.write_fraction
        access = AccessType.WRITE if is_write else AccessType.READ
        think = (
            rng.randint(0, config.max_think_cycles)
            if config.max_think_cycles
            else 0
        )
        records.append(
            TraceRecord(address=address, access=access, compute_cycles=think)
        )
    return MemoryTrace(records, name=f"synthetic-core{core}")


def generate_disjoint_workload(
    config: SyntheticWorkloadConfig, cores: Sequence[CoreId]
) -> Dict[CoreId, MemoryTrace]:
    """Generate the full per-core workload with disjoint address ranges."""
    require(bool(cores), "workload needs at least one core", ConfigurationError)
    require(
        len(set(cores)) == len(cores),
        f"duplicate cores in workload: {list(cores)}",
        ConfigurationError,
    )
    ranges = [config.core_range(core) for core in cores]
    for i, first in enumerate(ranges):
        for second in ranges[i + 1 :]:
            require(
                not first.overlaps(second),
                "per-core address ranges overlap; Section 5 requires them disjoint",
                ConfigurationError,
            )
    return {core: generate_core_trace(config, core) for core in cores}
