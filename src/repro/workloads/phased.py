"""Phased (Markov-modulated) workload generation.

Uniform random traffic (Section 5's generator) has no temporal
locality, which understates both cache benefit and the variance sharing
exploits.  Real control loops alternate *phases*: a hot loop over a
small buffer, a sequential scan over a frame, bursts of random lookups.
This generator models a task as a small Markov chain over such phases —
per step it emits one access according to the current phase's pattern
and then maybe transitions.

The chain is seeded, so traces replay identically across partition
configurations, preserving the property the paper's methodology needs.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.types import AccessType, CoreId
from repro.common.validation import require, require_non_negative, require_positive
from repro.workloads.trace import MemoryTrace, TraceRecord


class PhaseKind(enum.Enum):
    """Access pattern of one phase."""

    #: Uniform random over the phase's range.
    RANDOM = "random"
    #: Sequential sweep (line by line, wrapping).
    SEQUENTIAL = "sequential"
    #: Repeated accesses to a small hot set of lines.
    HOT_SET = "hot-set"


@dataclass(frozen=True)
class Phase:
    """One phase of a task's behaviour."""

    name: str
    kind: PhaseKind
    range_bytes: int
    write_fraction: float = 0.5
    #: HOT_SET only: number of distinct hot lines.
    hot_lines: int = 8

    def __post_init__(self) -> None:
        require(bool(self.name), "phase name must be non-empty", ConfigurationError)
        require_positive(self.range_bytes, "range_bytes", ConfigurationError)
        require(
            0.0 <= self.write_fraction <= 1.0,
            f"write_fraction must be in [0, 1], got {self.write_fraction}",
            ConfigurationError,
        )
        require_positive(self.hot_lines, "hot_lines", ConfigurationError)


@dataclass(frozen=True)
class PhasedWorkloadConfig:
    """A Markov chain over phases plus global trace parameters."""

    phases: Tuple[Phase, ...]
    #: transition[i][j]: probability of moving from phase i to phase j
    #: *after each access*; rows must sum to 1.
    transitions: Tuple[Tuple[float, ...], ...]
    num_requests: int = 1000
    line_size: int = 64
    seed: int = 2022
    base_address: int = 0

    def __post_init__(self) -> None:
        require(bool(self.phases), "need at least one phase", ConfigurationError)
        require_positive(self.num_requests, "num_requests", ConfigurationError)
        require_positive(self.line_size, "line_size", ConfigurationError)
        require_non_negative(self.base_address, "base_address", ConfigurationError)
        n = len(self.phases)
        require(
            len(self.transitions) == n,
            f"transition matrix needs {n} rows, got {len(self.transitions)}",
            ConfigurationError,
        )
        for i, row in enumerate(self.transitions):
            require(
                len(row) == n,
                f"transition row {i} needs {n} entries, got {len(row)}",
                ConfigurationError,
            )
            require(
                all(p >= 0 for p in row) and abs(sum(row) - 1.0) < 1e-9,
                f"transition row {i} must be a probability distribution "
                f"(got sum {sum(row)})",
                ConfigurationError,
            )

    @property
    def footprint_bytes(self) -> int:
        """The largest phase range (the task's total footprint)."""
        return max(phase.range_bytes for phase in self.phases)


def generate_phased_trace(
    config: PhasedWorkloadConfig, core: CoreId = 0
) -> MemoryTrace:
    """Generate one core's phased trace (seeded by ``(seed, core)``)."""
    rng = random.Random(config.seed * 9_176_867 + core)
    records: List[TraceRecord] = []
    phase_index = 0
    sequential_cursor = 0
    hot_sets: Dict[int, List[int]] = {}
    while len(records) < config.num_requests:
        phase = config.phases[phase_index]
        num_lines = max(1, phase.range_bytes // config.line_size)
        if phase.kind is PhaseKind.RANDOM:
            line = rng.randrange(num_lines)
        elif phase.kind is PhaseKind.SEQUENTIAL:
            line = sequential_cursor % num_lines
            sequential_cursor += 1
        else:  # HOT_SET
            hot = hot_sets.get(phase_index)
            if hot is None:
                population = range(num_lines)
                hot = rng.sample(population, min(phase.hot_lines, num_lines))
                hot_sets[phase_index] = hot
            line = rng.choice(hot)
        address = config.base_address + line * config.line_size
        access = (
            AccessType.WRITE
            if rng.random() < phase.write_fraction
            else AccessType.READ
        )
        records.append(TraceRecord(address=address, access=access))
        phase_index = rng.choices(
            range(len(config.phases)),
            weights=config.transitions[phase_index],
        )[0]
    return MemoryTrace(records, name=f"phased-core{core}")


def control_task_config(
    num_requests: int = 1000,
    footprint_bytes: int = 8192,
    line_size: int = 64,
    seed: int = 2022,
    base_address: int = 0,
) -> PhasedWorkloadConfig:
    """A ready-made control-loop-like task: hot loop, scan, lookups.

    80% of the time it spins on a small hot set, occasionally scanning
    its full state (a frame/batch) or doing random lookups — a shape
    much closer to the paper's motivating automotive consolidation than
    uniform random.
    """
    phases = (
        Phase("hot-loop", PhaseKind.HOT_SET, footprint_bytes // 8,
              write_fraction=0.7, hot_lines=8),
        Phase("scan", PhaseKind.SEQUENTIAL, footprint_bytes, write_fraction=0.2),
        Phase("lookup", PhaseKind.RANDOM, footprint_bytes, write_fraction=0.4),
    )
    transitions = (
        (0.95, 0.03, 0.02),
        (0.10, 0.88, 0.02),
        (0.30, 0.05, 0.65),
    )
    return PhasedWorkloadConfig(
        phases=phases,
        transitions=transitions,
        num_requests=num_requests,
        line_size=line_size,
        seed=seed,
        base_address=base_address,
    )


def generate_phased_workload(
    cores: Sequence[CoreId],
    num_requests: int = 1000,
    footprint_bytes: int = 8192,
    line_size: int = 64,
    seed: int = 2022,
    stride: Optional[int] = None,
) -> Dict[CoreId, MemoryTrace]:
    """Disjoint phased workloads, one control-task chain per core."""
    stride = stride or 2 * footprint_bytes
    require(
        stride >= footprint_bytes,
        "stride smaller than the footprint would overlap per-core ranges",
        ConfigurationError,
    )
    traces: Dict[CoreId, MemoryTrace] = {}
    for core in cores:
        config = control_task_config(
            num_requests=num_requests,
            footprint_bytes=footprint_bytes,
            line_size=line_size,
            seed=seed,
            base_address=core * stride,
        )
        traces[core] = generate_phased_trace(config, core)
    return traces
