"""Named workload suites.

A suite is a reproducible (seeded) bundle of per-core traces plus the
metadata describing what it stresses.  The registry gives experiments,
the CLI (``repro-llc workload``) and downstream users one vocabulary:

========================  ====================================================
``fig7``                  the Figure 7 WCL workload: all-write random
                          addresses, disjoint equal ranges
``fig8``                  the Figure 8 graded workload (core i sweeps
                          ``range >> i``)
``storm``                 the adversarial single-set conflict storm
``pingpong``              the two-line deterministic ping-pong
``readonly``              the Figure 7 workload with reads only (no
                          write-backs anywhere — a contrast workload)
``mixed``                 50% writes, moderate locality
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping

from repro.common.errors import ConfigurationError
from repro.common.types import CoreId
from repro.workloads.adversarial import conflict_storm_traces, pingpong_traces
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)
from repro.workloads.trace import MemoryTrace


@dataclass(frozen=True)
class SuiteSpec:
    """One registered workload suite."""

    name: str
    description: str
    builder: Callable[[int, int, int, int], Mapping[CoreId, MemoryTrace]]

    def build(
        self,
        num_cores: int,
        num_requests: int = 500,
        address_range: int = 4096,
        seed: int = 2022,
    ) -> Dict[CoreId, MemoryTrace]:
        """Materialise the suite's traces."""
        return dict(self.builder(num_cores, num_requests, address_range, seed))


def _synthetic(write_fraction: float):
    def build(num_cores, num_requests, address_range, seed):
        config = SyntheticWorkloadConfig(
            num_requests=num_requests,
            address_range_size=address_range,
            write_fraction=write_fraction,
            seed=seed,
        )
        return generate_disjoint_workload(config, list(range(num_cores)))

    return build


def _fig8(num_cores, num_requests, address_range, seed):
    from repro.experiments.fig8 import graded_workload

    return graded_workload(num_cores, address_range, num_requests, seed)


def _storm(num_cores, num_requests, address_range, seed):
    lines_per_core = max(4, address_range // 64 // max(num_cores, 1))
    repeats = max(1, num_requests // lines_per_core)
    return conflict_storm_traces(
        cores=list(range(num_cores)),
        partition_sets=1,
        lines_per_core=lines_per_core,
        repeats=repeats,
        seed=seed,
    )


def _pingpong(num_cores, num_requests, _address_range, _seed):
    return pingpong_traces(
        cores=list(range(num_cores)),
        partition_sets=1,
        repeats=max(1, num_requests // 2),
    )


_REGISTRY: Dict[str, SuiteSpec] = {}


def register_suite(spec: SuiteSpec) -> None:
    """Add a suite to the registry (rejects duplicate names)."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(f"workload suite {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec


def get_suite(name: str) -> SuiteSpec:
    """Look a suite up by name."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown workload suite {name!r}; available: {', '.join(suite_names())}"
        )
    return spec


def suite_names() -> List[str]:
    """All registered suite names, sorted."""
    return sorted(_REGISTRY)


for _spec in (
    SuiteSpec(
        "fig7",
        "Figure 7 WCL workload: all-write random, disjoint equal ranges",
        _synthetic(1.0),
    ),
    SuiteSpec(
        "fig8",
        "Figure 8 graded workload: core i sweeps range >> i",
        _fig8,
    ),
    SuiteSpec(
        "storm",
        "adversarial single-set conflict storm (all writes)",
        _storm,
    ),
    SuiteSpec(
        "pingpong",
        "two-line deterministic ping-pong per core on one set",
        _pingpong,
    ),
    SuiteSpec(
        "readonly",
        "Figure 7 workload with reads only (no write-backs)",
        _synthetic(0.0),
    ),
    SuiteSpec(
        "mixed",
        "50% writes, disjoint equal ranges",
        _synthetic(0.5),
    ),
):
    register_suite(_spec)
