"""Memory traces: the input format of the trace-driven simulator.

A trace is an ordered list of :class:`TraceRecord` (byte address +
access type + optional compute gap).  The on-disk format is one record
per line::

    # comment
    R 0x1a40
    W 0x1a80 +120
    I 0x0400

The optional ``+N`` suffix is the number of cycles the core computes
*before* issuing the access — how CPU-bound phases between memory
operations are expressed.  The format is trivially diffable and
versionable — the property that lets the paper replay "the same memory
addresses across different partitioned configurations" (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Union, overload

from repro.common.errors import TraceError
from repro.common.fileio import Durability, persist_text
from repro.common.types import AccessType, Address


@dataclass(frozen=True)
class TraceRecord:
    """One memory access of a core's task.

    ``compute_cycles`` is the think time the core spends *before*
    issuing this access (0 for back-to-back memory operations).
    """

    address: Address
    access: AccessType = AccessType.READ
    compute_cycles: int = 0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise TraceError(f"trace address must be non-negative, got {self.address}")
        if self.compute_cycles < 0:
            raise TraceError(
                f"compute_cycles must be non-negative, got {self.compute_cycles}"
            )

    def to_line(self) -> str:
        """Serialise to the one-line text form."""
        base = f"{self.access.value} {self.address:#x}"
        if self.compute_cycles:
            return f"{base} +{self.compute_cycles}"
        return base

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        """Parse the one-line text form."""
        parts = line.split()
        if len(parts) not in (2, 3):
            raise TraceError(f"malformed trace line: {line!r}")
        type_token, address_token = parts[0], parts[1]
        try:
            access = AccessType.from_token(type_token)
        except ValueError as exc:
            raise TraceError(str(exc)) from None
        try:
            address = int(address_token, 0)
        except ValueError:
            raise TraceError(f"malformed address in trace line: {line!r}") from None
        compute_cycles = 0
        if len(parts) == 3:
            gap_token = parts[2]
            if not gap_token.startswith("+"):
                raise TraceError(
                    f"compute gap must look like +N in trace line: {line!r}"
                )
            try:
                compute_cycles = int(gap_token[1:])
            except ValueError:
                raise TraceError(
                    f"malformed compute gap in trace line: {line!r}"
                ) from None
        return cls(address=address, access=access, compute_cycles=compute_cycles)


class MemoryTrace(Sequence[TraceRecord]):
    """An immutable ordered sequence of trace records."""

    def __init__(self, records: Iterable[TraceRecord] = (), name: str = "") -> None:
        self._records: List[TraceRecord] = list(records)
        self.name = name

    def __len__(self) -> int:
        return len(self._records)

    @overload
    def __getitem__(self, index: int) -> TraceRecord: ...

    @overload
    def __getitem__(self, index: slice) -> "MemoryTrace": ...

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[TraceRecord, "MemoryTrace"]:
        if isinstance(index, slice):
            return MemoryTrace(self._records[index], name=self.name)
        return self._records[index]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryTrace):
            return NotImplemented
        return self._records == other._records

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<MemoryTrace{label} len={len(self)}>"

    def addresses(self) -> List[Address]:
        """All byte addresses, in order."""
        return [record.address for record in self._records]

    def write_fraction(self) -> float:
        """Fraction of records that are writes (0.0 for an empty trace)."""
        if not self._records:
            return 0.0
        writes = sum(1 for record in self._records if record.access.is_write)
        return writes / len(self._records)

    def footprint_blocks(self, line_size: int) -> int:
        """Number of distinct cache lines the trace touches."""
        return len({record.address // line_size for record in self._records})


def write_trace(trace: MemoryTrace, path: Union[str, Path]) -> None:
    """Write a trace to disk in the text format."""
    target = Path(path)
    lines = [f"# trace {trace.name or target.stem}: {len(trace)} records"]
    lines.extend(record.to_line() for record in trace)
    persist_text(
        target,
        "\n".join(lines) + "\n",
        site="workload-trace",
        durability=Durability.ESSENTIAL,
    )


def read_trace(path: Union[str, Path], name: str = "") -> MemoryTrace:
    """Read a trace from disk, skipping blank lines and ``#`` comments."""
    source = Path(path)
    records: List[TraceRecord] = []
    for lineno, raw in enumerate(source.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            records.append(TraceRecord.from_line(line))
        except TraceError as exc:
            raise TraceError(f"{source}:{lineno}: {exc}") from None
    return MemoryTrace(records, name=name or source.stem)
