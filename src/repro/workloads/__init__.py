"""Workloads: trace records, generators and experiment suites.

The paper evaluates with synthetic workloads of "memory requests to
random addresses within various address ranges", with disjoint ranges
per core and the *same* per-core address stream replayed across all
partition configurations (Section 5).  :mod:`repro.workloads.synthetic`
implements exactly that; :mod:`repro.workloads.adversarial` builds
access patterns that steer the system toward the analytical worst case.
"""

from repro.workloads.trace import MemoryTrace, TraceRecord, read_trace, write_trace
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_core_trace,
    generate_disjoint_workload,
)
from repro.workloads.phased import (
    Phase,
    PhaseKind,
    PhasedWorkloadConfig,
    control_task_config,
    generate_phased_trace,
    generate_phased_workload,
)
from repro.workloads.adversarial import (
    conflict_storm_traces,
    pingpong_traces,
)

__all__ = [
    "MemoryTrace",
    "TraceRecord",
    "read_trace",
    "write_trace",
    "SyntheticWorkloadConfig",
    "generate_core_trace",
    "generate_disjoint_workload",
    "conflict_storm_traces",
    "pingpong_traces",
    "Phase",
    "PhaseKind",
    "PhasedWorkloadConfig",
    "control_task_config",
    "generate_phased_trace",
    "generate_phased_workload",
]
