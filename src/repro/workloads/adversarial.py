"""Adversarial access patterns that stress the worst case.

The analytical WCLs (Theorems 4.7/4.8) bound a *critical instance* that
random traffic rarely produces.  These generators construct traces that
push the system toward it: every core issues writes to distinct lines
that all fold onto the **same partition set**, so every LLC miss finds
the set full of lines privately (and dirtily) cached by other cores —
maximising evictions, back-invalidations and bus write-backs, exactly
the mechanism of Figures 2–4.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.common.errors import ConfigurationError
from repro.common.types import AccessType, CoreId
from repro.common.validation import require, require_positive
from repro.workloads.trace import MemoryTrace, TraceRecord


def _conflict_blocks(
    core_slot: int, partition_sets: int, target_set: int, count: int, spacing: int
) -> List[int]:
    """``count`` distinct blocks for one core, all folding to ``target_set``.

    Disjointness across cores comes from striding each core's blocks by
    ``spacing * partition_sets``.
    """
    base = target_set + core_slot * count * partition_sets * spacing
    return [base + j * partition_sets for j in range(count)]


def conflict_storm_traces(
    cores: Sequence[CoreId],
    partition_sets: int,
    lines_per_core: int,
    repeats: int,
    line_size: int = 64,
    target_set: int = 0,
    seed: int = 7,
    shuffle: bool = True,
) -> Dict[CoreId, MemoryTrace]:
    """All-write traces where every access folds onto one partition set.

    Parameters
    ----------
    cores:
        Participating cores (they must share the partition for the storm
        to cause inter-core evictions).
    partition_sets:
        ``s`` of the shared partition (the fold modulus).
    lines_per_core:
        Distinct lines each core cycles through; choose ``> ways`` to
        guarantee every access eventually misses.
    repeats:
        How many passes over the per-core working set each trace makes.
    shuffle:
        Randomise the per-pass order (seeded); a deterministic rotation
        is used otherwise.
    """
    require(bool(cores), "need at least one core", ConfigurationError)
    require_positive(partition_sets, "partition_sets", ConfigurationError)
    require_positive(lines_per_core, "lines_per_core", ConfigurationError)
    require_positive(repeats, "repeats", ConfigurationError)
    require(
        0 <= target_set < partition_sets,
        f"target_set must be in [0, {partition_sets}), got {target_set}",
        ConfigurationError,
    )
    traces: Dict[CoreId, MemoryTrace] = {}
    for slot, core in enumerate(cores):
        blocks = _conflict_blocks(slot, partition_sets, target_set, lines_per_core, 1)
        rng = random.Random(seed * 65_537 + core)
        records: List[TraceRecord] = []
        for pass_index in range(repeats):
            order = list(blocks)
            if shuffle:
                rng.shuffle(order)
            else:
                rotation = pass_index % len(order)
                order = order[rotation:] + order[:rotation]
            records.extend(
                TraceRecord(address=block * line_size, access=AccessType.WRITE)
                for block in order
            )
        traces[core] = MemoryTrace(records, name=f"storm-core{core}")
    return traces


def pingpong_traces(
    cores: Sequence[CoreId],
    partition_sets: int,
    repeats: int,
    line_size: int = 64,
    target_set: int = 0,
) -> Dict[CoreId, MemoryTrace]:
    """Two-line ping-pong per core, all folding onto one partition set.

    With ``2 * n`` distinct lines contending for ``w`` ways, each access
    alternates between a line just evicted and one about to be — a
    compact deterministic pattern useful for step-by-step scenario tests.
    """
    require(bool(cores), "need at least one core", ConfigurationError)
    require_positive(partition_sets, "partition_sets", ConfigurationError)
    require_positive(repeats, "repeats", ConfigurationError)
    traces: Dict[CoreId, MemoryTrace] = {}
    for slot, core in enumerate(cores):
        blocks = _conflict_blocks(slot, partition_sets, target_set, 2, 1)
        records = [
            TraceRecord(address=blocks[i % 2] * line_size, access=AccessType.WRITE)
            for i in range(2 * repeats)
        ]
        traces[core] = MemoryTrace(records, name=f"pingpong-core{core}")
    return traces
