"""Command-line interface: ``python -m repro`` or ``repro-llc``.

Subcommands
-----------
``fig7``
    Reproduce Figure 7 (observed vs analytical WCL for SS/NSS/P).
``fig8``
    Reproduce one Figure 8 sub-figure (execution time at fixed total
    partition capacity).
``bounds``
    Print the analytical WCL bounds for a configuration notation.
``unbounded``
    Run the Section 4.1 starvation witness.
``simulate``
    Run one configuration notation against a named workload suite and
    print (optionally export) the report.
``stats``
    Run one configuration and print its full metrics catalogue
    (optionally exporting metrics and a JSONL event trace).
``workload``
    Materialise a named workload suite to trace files on disk.
``timeline``
    Run a short simulation and render the ASCII slot timeline.
``tightness``
    Probe how close adversarial steering gets to the bounds.
``all``
    Regenerate every artifact through the crash-tolerant campaign
    runner (per-task timeouts, retry, quarantine, manifest resume);
    exits non-zero if any artifact fails or is quarantined.
``fuzz``
    Run a seeded chaos-fuzz campaign: boundary-biased random scenarios
    cross-checked by the differential oracle, with failing cases
    shrunk to minimal repro artifacts; exits non-zero on any finding.
``repro``
    Replay a repro artifact deterministically and report whether the
    recorded failure still reproduces.
``cache``
    Inspect a content-addressed result cache directory: ``stats``,
    ``verify`` (discard corrupt or stale entries) and ``gc``
    (``--max-bytes`` / ``--max-age`` pruning).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

from repro.analysis.unbounded import starvation_witness
from repro.analysis.wcl import analytical_wcl_cycles
from repro.experiments.configs import PAPER_CORE_CAPACITY_LINES
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import SUBFIGURES, run_fig8
from repro.experiments.tables import render_table
from repro.llc.partition import PartitionNotation
from repro.sim.config import PAPER_SLOT_WIDTH


def _export_metrics(registry, path: str) -> int:
    """Write ``registry`` to ``path`` (suffix picks the format).

    Returns 0 on success, 2 on a bad path / unsupported suffix — the
    argparse "usage error" exit code, with a clean one-line message
    instead of a traceback.
    """
    from repro.common.errors import ObservabilityError
    from repro.obs.exporters import write_metrics

    try:
        write_metrics(registry, path)
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"metrics written to {path}")
    return 0


@contextlib.contextmanager
def _auto_checkpoints(args: argparse.Namespace):
    """Install the process-wide checkpoint policy for one command.

    Engaged by ``--checkpoint-dir``: every simulation the command runs
    (including in fork-pool workers, which inherit the policy) writes
    periodic crash-consistent checkpoints there and resumes from them
    after a kill, with byte-identical output.
    """
    directory = getattr(args, "checkpoint_dir", None)
    if not directory:
        yield
        return
    from repro.robustness.checkpoint import (
        DEFAULT_POLL_SLOTS,
        clear_auto_checkpoints,
        install_auto_checkpoints,
    )

    every = args.checkpoint_every
    secs = args.checkpoint_every_secs
    if every is None and secs is None:
        every = DEFAULT_POLL_SLOTS
    install_auto_checkpoints(directory, every_slots=every, every_secs=secs)
    try:
        yield
    finally:
        clear_auto_checkpoints()


@contextlib.contextmanager
def _result_cache(args: argparse.Namespace):
    """Install the process-wide result cache for one command.

    Engaged by ``--cache DIR`` (and vetoed by ``--no-cache``): every
    plain simulation the command runs — including in fork-pool workers,
    which inherit the installed cache — is first looked up by canonical
    fingerprint in DIR and, on a miss, stored there.  Cached and fresh
    runs produce byte-identical output.  A one-line counter summary
    goes to stderr when the command finishes (serial counters only:
    worker-process hits stay in the workers; the shared directory is
    the cross-process contract).
    """
    directory = getattr(args, "cache", None)
    if not directory or getattr(args, "no_cache", False):
        yield
        return
    from repro.sim.cache import clear_result_cache, install_result_cache

    cache = install_result_cache(directory)
    try:
        yield
    finally:
        clear_result_cache()
        counters = {
            name: 0
            for name in ("hits", "misses", "stores", "evictions", "corruption")
        }
        for (name, _labels), metric in cache.registry:
            short = name.removeprefix("sim_cache.")
            if short in counters:
                counters[short] = metric.value
        print(
            "cache: "
            + ", ".join(f"{value} {name}" for name, value in counters.items())
            + f" ({directory})",
            file=sys.stderr,
        )


def _io_fault_spec(text: str):
    """argparse type for ``--io-fault`` (usage errors exit 2 cleanly)."""
    from repro.common.errors import ConfigurationError
    from repro.robustness.iofault import IoFaultSpec

    try:
        return IoFaultSpec.parse(text)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _install_io_faults(args: argparse.Namespace):
    """Install the ``--io-fault`` plan for one invocation, if requested."""
    specs = getattr(args, "io_fault", None)
    if not specs:
        return None
    from repro.robustness.iofault import IoFaultPlan, install_io_faults

    return install_io_faults(
        IoFaultPlan(specs, seed=getattr(args, "io_fault_seed", 0))
    )


def _rss_limit_bytes(args: argparse.Namespace) -> Optional[int]:
    mb = getattr(args, "worker_rss_limit_mb", None)
    return None if mb is None else mb * (1 << 20)


def _checkpoint_interval_without_path(args: argparse.Namespace) -> bool:
    """--checkpoint-every* without --checkpoint is a usage error."""
    if args.checkpoint:
        return False
    if args.checkpoint_every is None and args.checkpoint_every_secs is None:
        return False
    print(
        "error: --checkpoint-every/--checkpoint-every-secs need "
        "--checkpoint PATH to write to",
        file=sys.stderr,
    )
    return True


def _cmd_fig7(args: argparse.Namespace) -> int:
    with _auto_checkpoints(args), _result_cache(args):
        result = run_fig7(
            num_requests=args.requests,
            seed=args.seed,
            adversarial=args.adversarial,
            checked=args.checked,
            jobs=args.jobs,
            with_metrics=bool(args.metrics),
            engine=args.engine,
        )
    print(result.render())
    if args.metrics:
        status = _export_metrics(result.metrics, args.metrics)
        if status != 0:
            return status
    if not result.all_complete():
        print(
            "ERROR: a simulation timed out or starved; its rows carry "
            "no WCL evidence",
            file=sys.stderr,
        )
        return 1
    if not result.all_within_bounds():
        print("ERROR: an observed WCL exceeded its analytical bound", file=sys.stderr)
        return 1
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    with _auto_checkpoints(args), _result_cache(args):
        result = run_fig8(
            args.subfigure,
            num_requests=args.requests,
            seed=args.seed,
            jobs=args.jobs,
            with_metrics=bool(args.metrics),
            engine=args.engine,
        )
    print(result.render())
    print(
        f"\naverage SS speedup vs P:   {result.average_speedup_vs_p():.2f}x"
        f"\naverage SS speedup vs NSS: {result.average_speedup_vs_nss():.2f}x"
    )
    if args.metrics:
        return _export_metrics(result.metrics, args.metrics)
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    notation = PartitionNotation.parse(args.notation)
    cycles = analytical_wcl_cycles(
        notation,
        total_cores=args.cores,
        slot_width=args.slot_width,
        core_capacity_lines=args.capacity_lines,
    )
    print(
        render_table(
            headers=["notation", "N", "SW", "WCL (cycles)", "WCL (slots)"],
            rows=[[str(notation), args.cores, args.slot_width, cycles,
                   cycles // args.slot_width]],
            title="Analytical worst-case latency",
        )
    )
    return 0


def _cmd_unbounded(args: argparse.Namespace) -> int:
    result = starvation_witness(
        stream_lengths=tuple(args.lengths), ways=args.ways
    )
    rows = [
        [length, multi, one]
        for length, multi, one in zip(
            result.stream_lengths,
            result.multi_slot_latencies,
            result.one_slot_latencies,
        )
    ]
    print(
        render_table(
            headers=["interferer stream", "multi-slot TDM latency", "1S-TDM latency"],
            rows=rows,
            title="Section 4.1 witness: victim latency (cycles)",
        )
    )
    print(
        f"\nmulti-slot latency grows with the stream: {result.multi_slot_growth}"
        f"\n1S-TDM latency bounded by Theorem 4.7 "
        f"({result.one_slot_bound_cycles} cycles): {result.one_slot_bounded}"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    with _result_cache(args):
        return _cmd_simulate_inner(args)


def _cmd_simulate_inner(args: argparse.Namespace) -> int:
    from repro.experiments.configs import build_system_for_notation
    from repro.sim.export import (
        core_latency_stats,
        write_report_json,
        write_requests_csv,
    )
    from repro.sim.simulator import simulate
    from repro.workloads.suites import get_suite

    config = build_system_for_notation(args.notation, num_cores=args.cores)
    import dataclasses

    if args.checked:
        config = dataclasses.replace(config, checked=True)
    if args.engine:
        config = dataclasses.replace(config, engine=args.engine)
    if _checkpoint_interval_without_path(args):
        return 2
    suite = get_suite(args.suite)
    if args.seeds:
        conflicting = [
            flag
            for flag, value in (
                ("--json", args.json),
                ("--csv", args.csv),
                ("--checkpoint", args.checkpoint),
            )
            if value
        ]
        if conflicting:
            print(
                f"error: {', '.join(conflicting)} cannot be combined with "
                "--seeds: a sweep has no single report to export or "
                "checkpoint (--metrics aggregates across seeds and is "
                "allowed; use 'all --checkpoint-dir' for campaign-level "
                "checkpointing)",
                file=sys.stderr,
            )
            return 2
        return _simulate_sweep(args, config, suite)
    traces = suite.build(
        num_cores=args.cores,
        num_requests=args.requests,
        address_range=args.range,
        seed=args.seed,
    )
    from repro.common.errors import CheckpointError

    try:
        report = simulate(
            config,
            traces,
            checkpoint_path=args.checkpoint,
            checkpoint_every_slots=args.checkpoint_every,
            checkpoint_every_secs=args.checkpoint_every_secs,
        )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = []
    for core in range(args.cores):
        core_report = report.core_reports[core]
        rows.append(
            [
                f"core {core}",
                core_report.requests,
                core_report.observed_wcl,
                f"{core_report.mean_latency:.0f}",
                core_report.finish_time,
            ]
        )
    print(
        render_table(
            ["core", "LLC requests", "observed WCL", "mean latency", "finish"],
            rows,
            title=f"{args.notation} on suite {args.suite!r}",
        )
    )
    if report.requests:
        stats = core_latency_stats(report)
        print(
            f"\nlatency p50/p90/p99/max: {stats.p50}/{stats.p90}/"
            f"{stats.p99}/{stats.maximum} cycles over {stats.count} requests"
        )
    if args.json:
        write_report_json(report, args.json)
        print(f"report written to {args.json}")
    if args.csv:
        write_requests_csv(report, args.csv)
        print(f"per-request CSV written to {args.csv}")
    if args.metrics:
        from repro.obs.collect import collect_metrics

        status = _export_metrics(
            collect_metrics(report, config.slot_width), args.metrics
        )
        if status != 0:
            return status
    if report.timed_out:
        print("WARNING: simulation hit the slot cap", file=sys.stderr)
        return 1
    return 0


def _simulate_sweep(args: argparse.Namespace, config, suite) -> int:
    """``simulate --seeds ...``: a distributional sweep of one notation."""
    from repro.sim.sweeps import sweep_seeds

    result = sweep_seeds(
        config,
        lambda seed: suite.build(
            num_cores=args.cores,
            num_requests=args.requests,
            address_range=args.range,
            seed=seed,
        ),
        seeds=args.seeds,
        jobs=args.jobs,
        with_metrics=bool(args.metrics),
    )
    print(
        render_table(
            headers=["seed", "observed WCL", "makespan"],
            rows=[
                [seed, wcl, makespan]
                for seed, wcl, makespan in zip(
                    result.seeds, result.observed_wcls, result.makespans
                )
            ],
            title=f"{args.notation} on suite {args.suite!r} "
            f"({len(result.seeds)} seeds)",
        )
    )
    print(
        f"\nmax observed WCL: {result.max_observed_wcl} cycles"
        f"\nmean makespan:    {result.mean_makespan:.0f} cycles"
        f"\nWCL spread:       {result.wcl_spread} cycles"
    )
    if args.metrics:
        return _export_metrics(result.metrics, args.metrics)
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.workloads.suites import get_suite, suite_names
    from repro.workloads.trace import write_trace

    if args.list:
        for name in suite_names():
            print(f"{name:10} {get_suite(name).description}")
        return 0
    suite = get_suite(args.suite)
    traces = suite.build(
        num_cores=args.cores,
        num_requests=args.requests,
        address_range=args.range,
        seed=args.seed,
    )
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for core, trace in sorted(traces.items()):
        path = out_dir / f"{args.suite}-core{core}.trace"
        write_trace(trace, path)
        print(f"wrote {len(trace)} records to {path}")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.experiments.configs import build_system_for_notation
    from repro.sim.simulator import Simulator
    from repro.sim.timeline import render_timeline
    from repro.workloads.suites import get_suite

    config = dataclasses.replace(
        build_system_for_notation(args.notation, num_cores=args.cores),
        record_events=True,
    )
    traces = get_suite(args.suite).build(
        num_cores=args.cores,
        num_requests=args.requests,
        address_range=args.range,
        seed=args.seed,
    )
    sim = Simulator(config, traces)
    report = sim.run()
    print(
        render_timeline(
            report.events,
            sim.system.schedule,
            num_cores=args.cores,
            start_slot=args.start_slot,
            num_slots=args.slots,
        )
    )
    return 0


def _cmd_tightness(args: argparse.Namespace) -> int:
    from repro.experiments.tightness import run_tightness

    result = run_tightness(repeats=args.repeats)
    print(result.render())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.experiments.configs import build_system_for_notation
    from repro.obs.collect import collect_metrics
    from repro.obs.exporters import render_metrics_table
    from repro.obs.tracing import JsonlTraceSink
    from repro.common.errors import ObservabilityError
    from repro.sim.simulator import simulate
    from repro.workloads.suites import get_suite

    config = build_system_for_notation(args.notation, num_cores=args.cores)
    if args.record_metrics:
        config = dataclasses.replace(config, record_metrics=True)
    if _checkpoint_interval_without_path(args):
        return 2
    traces = get_suite(args.suite).build(
        num_cores=args.cores,
        num_requests=args.requests,
        address_range=args.range,
        seed=args.seed,
    )
    from pathlib import Path

    from repro.common.errors import CheckpointError

    sink = None
    if args.trace:
        try:
            if args.checkpoint and Path(args.checkpoint).exists():
                # Resuming: rewind the trace file to the checkpointed
                # offset so the resumed run appends exactly where the
                # snapshot left off (byte-identical final trace).
                from repro.robustness.checkpoint import (
                    checkpoint_sink_states,
                )

                states = checkpoint_sink_states(args.checkpoint)
                if states:
                    sink = JsonlTraceSink.reopen(args.trace, states[0])
            if sink is None:
                sink = JsonlTraceSink(args.trace)
        except (ObservabilityError, CheckpointError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        report = simulate(
            config,
            traces,
            event_sink=sink,
            checkpoint_path=args.checkpoint,
            checkpoint_every_slots=args.checkpoint_every,
            checkpoint_every_secs=args.checkpoint_every_secs,
        )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if sink is not None:
            sink.close()
    registry = collect_metrics(report, config.slot_width)
    print(render_metrics_table(registry))
    if args.trace:
        print(f"\n{sink.emitted} events traced to {args.trace}")
    if args.metrics:
        return _export_metrics(registry, args.metrics)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.compare import compare_notations

    with _auto_checkpoints(args), _result_cache(args):
        result = compare_notations(
            args.notations,
            suite=args.suite,
            num_cores=args.cores,
            num_requests=args.requests,
            address_range=args.range,
            seed=args.seed,
            jobs=args.jobs,
            with_metrics=bool(args.metrics),
            engine=args.engine,
        )
    print(result.render())
    print(
        f"\nfastest: {result.fastest().notation}; "
        f"lowest observed WCL: {result.lowest_wcl().notation}"
    )
    if args.metrics:
        return _export_metrics(result.metrics, args.metrics)
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    from repro.robustness.runner import (
        RetryPolicy,
        campaign_metrics,
        run_all_robust,
    )

    with _result_cache(args):
        result = run_all_robust(
            out_dir=args.out,
            num_requests=args.requests,
            timeout=args.timeout,
            retry=RetryPolicy(max_attempts=args.retries),
            resume=args.resume,
            jobs=args.jobs,
            progress=print,
            with_metrics=bool(args.metrics),
            engine=args.engine,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            checkpoint_every_secs=args.checkpoint_every_secs,
            hung_after=args.hung_after,
            max_restarts=args.worker_restarts,
            rss_limit_bytes=_rss_limit_bytes(args),
        )
    print("\n" + result.summary())
    print(f"\nartifacts written to {args.out}/")
    if args.metrics:
        from repro.common.fileio import io_metrics

        registry = campaign_metrics(result)
        if io_metrics().rows():
            # Degradation counters (io.fault.*, io.degraded.*) ride
            # along in the requested export; a clean run has no io.*
            # rows, so the bytes of undegraded runs are unchanged.
            registry = registry.merged(io_metrics())
        status = _export_metrics(registry, args.metrics)
        if status != 0:
            return status
    if result.quarantined:
        names = ", ".join(outcome.name for outcome in result.quarantined)
        print(f"ERROR: quarantined tasks: {names}", file=sys.stderr)
    # Non-zero when any artifact failed its checks OR any task was
    # quarantined — a green exit means the full suite reproduced.
    return 0 if result.all_ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.obs.metrics import MetricsRegistry
    from repro.robustness.fuzz import run_fuzz

    registry = MetricsRegistry() if args.metrics else None
    report = run_fuzz(
        budget=args.budget,
        seed=args.seed,
        out_dir=args.out,
        jobs=args.jobs,
        fault_rate=args.chaos,
        resume=args.resume,
        timeout=args.timeout,
        shrink_failures=args.shrink,
        progress=print if args.verbose else None,
        registry=registry,
        hung_after=args.hung_after,
        max_restarts=args.worker_restarts,
        rss_limit_bytes=_rss_limit_bytes(args),
    )
    print(report.summary_lines())
    if args.out:
        print(f"report written to {args.out}/fuzz-report.json")
    if args.metrics:
        status = _export_metrics(registry, args.metrics)
        if status != 0:
            return status
    return 0 if report.ok else 1


def _cmd_repro(args: argparse.Namespace) -> int:
    from repro.common.errors import FuzzError
    from repro.robustness.shrink import replay_artifact

    try:
        replay = replay_artifact(args.artifact)
    except FuzzError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    case = replay.case
    summary = (
        f"case {case.case_id}: {case.total_requests} request(s), "
        f"{case.config['num_cores']} core(s)"
    )
    if case.fault:
        summary += f", injected {case.fault['kind']} at slot {case.fault['slot']}"
    print(summary)
    print(f"expected signature: {replay.expected_signature}")
    print(f"observed signature: {replay.result.signature or '(case passed)'}")
    for violation in replay.result.violations[:10]:
        print(f"  {violation['check']}: {violation['detail']}")
    if replay.reproduced:
        print("REPRODUCED")
        return 0
    print("NOT REPRODUCED: the failure no longer matches", file=sys.stderr)
    return 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.sim.cache import SimResultCache

    cache = SimResultCache(args.dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"entries:     {stats.entries}")
        print(f"total bytes: {stats.total_bytes}")
        return 0
    if args.action == "verify":
        ok, removed = cache.verify()
        print(
            f"{len(ok)} entry(ies) ok, "
            f"{len(removed)} defective entry(ies) removed"
        )
        return 1 if removed else 0
    # gc
    if args.max_bytes is None and args.max_age is None:
        print(
            "error: gc needs --max-bytes and/or --max-age",
            file=sys.stderr,
        )
        return 2
    evicted = cache.gc(max_bytes=args.max_bytes, max_age_secs=args.max_age)
    stats = cache.stats()
    print(
        f"{len(evicted)} entry(ies) evicted; "
        f"{stats.entries} entry(ies), {stats.total_bytes} bytes remain"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-llc",
        description="Predictable sharing of LLC partitions (DAC 2022) — "
        "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def parse_jobs(text: str) -> int:
        from repro.common.errors import ConfigurationError
        from repro.sim.parallel import effective_jobs

        try:
            return effective_jobs(int(text))
        except (ValueError, ConfigurationError) as exc:
            raise argparse.ArgumentTypeError(str(exc))

    def add_jobs_arg(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--jobs",
            type=parse_jobs,
            default=1,
            help="worker processes for independent simulations (default: "
            "1, serial; 0 = one per CPU); results are merged "
            "deterministically, so any value yields identical output",
        )

    def add_engine_arg(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--engine",
            choices=["fast", "reference"],
            default=None,
            help="slot engine: 'fast' skips provably idle slot stretches "
            "in O(cores), 'reference' ticks every slot; reports, metrics "
            "and figures are bit-identical under either (default: the "
            "config's engine, normally 'fast')",
        )

    def add_checkpoint_file_args(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--checkpoint",
            metavar="PATH",
            default=None,
            help="run resumably: periodically write a crash-consistent "
            "checkpoint of the full simulator state to PATH, and resume "
            "from it if the file already exists; a killed run resumed "
            "this way produces byte-identical reports, metrics and "
            "traces (the file is removed on normal completion)",
        )
        sub_parser.add_argument(
            "--checkpoint-every",
            type=int,
            metavar="SLOTS",
            default=None,
            help="checkpoint interval in TDM slots (default: 16384)",
        )
        sub_parser.add_argument(
            "--checkpoint-every-secs",
            type=float,
            metavar="SECS",
            default=None,
            help="checkpoint interval in wall-clock seconds (may be "
            "combined with --checkpoint-every)",
        )

    def add_checkpoint_dir_args(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--checkpoint-dir",
            metavar="DIR",
            default=None,
            help="checkpoint every simulation this command runs into DIR "
            "(one file per configuration+workload, inherited by --jobs "
            "workers); a killed run resumed with the same flags produces "
            "byte-identical artifacts",
        )
        sub_parser.add_argument(
            "--checkpoint-every",
            type=int,
            metavar="SLOTS",
            default=None,
            help="checkpoint interval in TDM slots (default: 16384)",
        )
        sub_parser.add_argument(
            "--checkpoint-every-secs",
            type=float,
            metavar="SECS",
            default=None,
            help="checkpoint interval in wall-clock seconds",
        )

    def add_supervision_args(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--hung-after",
            type=float,
            metavar="SECS",
            default=None,
            help="liveness watchdog for --jobs workers: a worker that "
            "sends no heartbeat for SECS seconds is torn down (SIGTERM "
            "then SIGKILL); slow-but-alive workers are unaffected and "
            "run until --timeout",
        )
        sub_parser.add_argument(
            "--worker-restarts",
            type=int,
            metavar="N",
            default=0,
            help="restart a hung or memory-killed task up to N times "
            "before quarantining it (restarts resume from the last "
            "checkpoint when --checkpoint-dir is set; default: 0)",
        )
        sub_parser.add_argument(
            "--worker-rss-limit-mb",
            type=int,
            metavar="MB",
            default=None,
            help="per-worker resident-memory ceiling; a worker past it "
            "is killed and its task quarantined as resource_exceeded",
        )

    def add_cache_args(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--cache",
            metavar="DIR",
            default=None,
            help="content-addressed result cache: look every simulation "
            "up by canonical fingerprint (config + traces + engine + "
            "model version) in DIR and store misses there; cached runs "
            "produce byte-identical reports, metrics and figures "
            "(inherited by --jobs workers; see 'repro-llc cache' for "
            "stats/verify/gc)",
        )
        sub_parser.add_argument(
            "--no-cache",
            action="store_true",
            help="ignore --cache for this invocation (always simulate)",
        )

    def add_metrics_arg(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--metrics",
            metavar="PATH",
            help="export the run's metrics here; the suffix picks the "
            "format (.jsonl, .csv or .prom — Prometheus text format); "
            "output is byte-identical for any --jobs value",
        )

    def add_io_fault_args(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--io-fault",
            metavar="SPEC",
            action="append",
            type=_io_fault_spec,
            default=None,
            help="inject a deterministic filesystem fault at the Nth "
            "matching I/O operation, e.g. 'enospc@3', "
            "'eio@1x*,site=result-cache', 'corrupt-read@1,path=res-*' "
            "(repeatable; grammar in docs/ROBUSTNESS.md); ESSENTIAL "
            "artifacts retry then fail loudly, BEST-EFFORT stores "
            "degrade through a circuit breaker and the run continues",
        )
        sub_parser.add_argument(
            "--io-fault-seed",
            type=int,
            default=0,
            metavar="N",
            help="seed for randomized fault payloads (read corruption)",
        )

    fig7 = sub.add_parser("fig7", help="reproduce Figure 7 (WCL)")
    fig7.add_argument("--requests", type=int, default=400)
    fig7.add_argument("--seed", type=int, default=2022)
    add_jobs_arg(fig7)
    add_metrics_arg(fig7)
    add_engine_arg(fig7)
    add_checkpoint_dir_args(fig7)
    add_cache_args(fig7)
    add_io_fault_args(fig7)
    fig7.add_argument(
        "--adversarial",
        action="store_true",
        help="steer replacement/arbitration toward the worst case "
        "(separates NSS from SS at every range)",
    )
    fig7.add_argument(
        "--checked",
        action="store_true",
        help="run under the per-slot invariant monitor (slower; aborts "
        "on model-state corruption)",
    )
    fig7.set_defaults(func=_cmd_fig7)

    fig8 = sub.add_parser("fig8", help="reproduce a Figure 8 sub-figure")
    fig8.add_argument("subfigure", choices=sorted(SUBFIGURES))
    fig8.add_argument("--requests", type=int, default=2000)
    fig8.add_argument("--seed", type=int, default=2022)
    add_jobs_arg(fig8)
    add_metrics_arg(fig8)
    add_engine_arg(fig8)
    add_checkpoint_dir_args(fig8)
    add_cache_args(fig8)
    add_io_fault_args(fig8)
    fig8.set_defaults(func=_cmd_fig8)

    bounds = sub.add_parser("bounds", help="print analytical WCL bounds")
    bounds.add_argument("notation", help="e.g. SS(1,16,4), NSS(2,16,4), P(1,16)")
    bounds.add_argument("--cores", type=int, default=4)
    bounds.add_argument("--slot-width", type=int, default=PAPER_SLOT_WIDTH)
    bounds.add_argument(
        "--capacity-lines", type=int, default=PAPER_CORE_CAPACITY_LINES
    )
    bounds.set_defaults(func=_cmd_bounds)

    unbounded = sub.add_parser(
        "unbounded", help="run the Section 4.1 starvation witness"
    )
    unbounded.add_argument(
        "--lengths", type=int, nargs="+", default=[50, 100, 200]
    )
    unbounded.add_argument("--ways", type=int, default=4)
    unbounded.set_defaults(func=_cmd_unbounded)

    def add_workload_args(
        sub_parser: argparse.ArgumentParser, requests_default: int = 300
    ) -> None:
        sub_parser.add_argument("--cores", type=int, default=4)
        sub_parser.add_argument(
            "--requests",
            type=int,
            default=requests_default,
            help=f"LLC requests per core (default: {requests_default})",
        )
        sub_parser.add_argument("--range", type=int, default=4096)
        sub_parser.add_argument("--seed", type=int, default=2022)

    simulate_cmd = sub.add_parser(
        "simulate", help="run a notation against a workload suite"
    )
    simulate_cmd.add_argument("notation", help="e.g. SS(1,16,4)")
    simulate_cmd.add_argument("--suite", default="fig7")
    add_workload_args(simulate_cmd)
    simulate_cmd.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        help="sweep these workload seeds instead of a single --seed run "
        "and report the WCL/makespan distribution (conflicts with "
        "--json/--csv, which export a single run's report; --metrics "
        "aggregates across seeds and is allowed)",
    )
    add_jobs_arg(simulate_cmd)
    add_metrics_arg(simulate_cmd)
    add_engine_arg(simulate_cmd)
    add_checkpoint_file_args(simulate_cmd)
    add_cache_args(simulate_cmd)
    add_io_fault_args(simulate_cmd)
    simulate_cmd.add_argument("--json", help="write the aggregate report here")
    simulate_cmd.add_argument("--csv", help="write per-request records here")
    simulate_cmd.add_argument(
        "--checked",
        action="store_true",
        help="run under the per-slot invariant monitor",
    )
    simulate_cmd.set_defaults(func=_cmd_simulate)

    stats_cmd = sub.add_parser(
        "stats",
        help="run a notation and print its full metrics catalogue",
    )
    stats_cmd.add_argument("notation", nargs="?", default="SS(1,16,4)")
    stats_cmd.add_argument("--suite", default="fig7")
    add_workload_args(stats_cmd)
    add_metrics_arg(stats_cmd)
    stats_cmd.add_argument(
        "--record-metrics",
        action="store_true",
        help="also run the per-slot occupancy sampler (PWB/PRB "
        "occupancy and sequencer QLT-depth histograms over time)",
    )
    stats_cmd.add_argument(
        "--trace",
        metavar="PATH",
        help="stream every engine event to PATH as JSON lines while "
        "the simulation runs (O(1) memory, any run length)",
    )
    add_checkpoint_file_args(stats_cmd)
    add_io_fault_args(stats_cmd)
    stats_cmd.set_defaults(func=_cmd_stats)

    workload_cmd = sub.add_parser(
        "workload", help="dump a named workload suite to trace files"
    )
    workload_cmd.add_argument("suite", nargs="?", default="fig7")
    workload_cmd.add_argument("--list", action="store_true", help="list suites")
    add_workload_args(workload_cmd)
    workload_cmd.add_argument("--out", default="traces")
    workload_cmd.set_defaults(func=_cmd_workload)

    timeline_cmd = sub.add_parser(
        "timeline", help="render an ASCII slot timeline of a short run"
    )
    timeline_cmd.add_argument("notation", nargs="?", default="SS(1,16,4)")
    timeline_cmd.add_argument("--suite", default="storm")
    # The timeline renders per-slot detail, so it defaults to a much
    # shorter run than the other workload commands; registering the
    # default on the argument itself keeps --help truthful (a bare
    # set_defaults() after add_workload_args silently diverged).
    add_workload_args(timeline_cmd, requests_default=60)
    timeline_cmd.add_argument("--start-slot", type=int, default=0)
    timeline_cmd.add_argument("--slots", type=int, default=80)
    timeline_cmd.set_defaults(func=_cmd_timeline)

    tightness_cmd = sub.add_parser(
        "tightness", help="probe bound tightness with adversarial steering"
    )
    tightness_cmd.add_argument("--repeats", type=int, default=40)
    tightness_cmd.set_defaults(func=_cmd_tightness)

    all_cmd = sub.add_parser(
        "all", help="regenerate every artifact into a results directory"
    )
    all_cmd.add_argument("--out", default="results")
    all_cmd.add_argument("--requests", type=int, default=300)
    all_cmd.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="skip artifacts a previous (interrupted) run already "
        "completed, per the manifest in --out (--no-resume starts over)",
    )
    all_cmd.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-artifact wall-clock budget in seconds (hung artifacts "
        "are quarantined)",
    )
    all_cmd.add_argument(
        "--retries",
        type=int,
        default=3,
        help="attempts per artifact for transient (host-level) failures",
    )
    add_jobs_arg(all_cmd)
    add_metrics_arg(all_cmd)
    add_engine_arg(all_cmd)
    add_checkpoint_dir_args(all_cmd)
    add_cache_args(all_cmd)
    add_io_fault_args(all_cmd)
    add_supervision_args(all_cmd)
    all_cmd.set_defaults(func=_cmd_all)

    fuzz_cmd = sub.add_parser(
        "fuzz",
        help="chaos-fuzz random scenarios against the differential oracle",
    )
    fuzz_cmd.add_argument(
        "--budget",
        type=int,
        default=200,
        help="number of generated cases (default: 200)",
    )
    fuzz_cmd.add_argument(
        "--seed",
        type=int,
        default=0,
        help="campaign seed; (budget, seed) fixes the exact case list",
    )
    fuzz_cmd.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write fuzz-report.json, the resume manifest and any repro "
        "artifacts here (use a fresh directory per budget/seed)",
    )
    fuzz_cmd.add_argument(
        "--chaos",
        type=float,
        default=0.0,
        metavar="RATE",
        help="inject a deterministic engine fault into this fraction of "
        "cases; every fault that fires must be caught by the oracle "
        "(a missed fault fails the campaign)",
    )
    fuzz_cmd.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="skip cases a previous (interrupted) campaign in --out "
        "already ran, per its manifest (--no-resume starts over)",
    )
    fuzz_cmd.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-case wall-clock budget in seconds (hung cases are "
        "quarantined and count as failures)",
    )
    fuzz_cmd.add_argument(
        "--shrink",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="delta-debug each failing case down to a minimal "
        "repro-<case>.json artifact in --out",
    )
    fuzz_cmd.add_argument(
        "--verbose",
        action="store_true",
        help="print per-case progress while the campaign runs",
    )
    add_jobs_arg(fuzz_cmd)
    add_metrics_arg(fuzz_cmd)
    add_supervision_args(fuzz_cmd)
    fuzz_cmd.set_defaults(func=_cmd_fuzz)

    repro_cmd = sub.add_parser(
        "repro", help="replay a minimized repro artifact deterministically"
    )
    repro_cmd.add_argument(
        "artifact", help="a repro-*.json file written by 'fuzz'"
    )
    repro_cmd.set_defaults(func=_cmd_repro)

    compare_cmd = sub.add_parser(
        "compare", help="compare partition configurations on one workload"
    )
    compare_cmd.add_argument(
        "notations", nargs="+", help="e.g. SS(2,16,4) NSS(2,16,4) P(1,16)"
    )
    compare_cmd.add_argument("--suite", default="fig7")
    add_workload_args(compare_cmd)
    add_jobs_arg(compare_cmd)
    add_metrics_arg(compare_cmd)
    add_engine_arg(compare_cmd)
    add_checkpoint_dir_args(compare_cmd)
    add_cache_args(compare_cmd)
    add_io_fault_args(compare_cmd)
    compare_cmd.set_defaults(func=_cmd_compare)

    cache_cmd = sub.add_parser(
        "cache", help="inspect or prune a result cache directory"
    )
    cache_cmd.add_argument(
        "action",
        choices=("stats", "verify", "gc"),
        help="stats: entry/byte counts; verify: check every entry and "
        "remove defective ones (exit 1 if any removed); gc: prune by "
        "size and/or age",
    )
    cache_cmd.add_argument("dir", help="cache directory (as given to --cache)")
    cache_cmd.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="gc: evict oldest entries until the cache fits this size",
    )
    cache_cmd.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="SECS",
        help="gc: evict entries not touched for this many seconds",
    )
    cache_cmd.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Each invocation starts with fresh I/O seam state (closed circuit
    breakers, zeroed ``io.*`` counters), installs any ``--io-fault``
    plan around the whole command — so requested exports and summaries
    are inside the fault window too — and maps a
    :class:`~repro.common.errors.PersistenceError` (an ESSENTIAL
    artifact that could not be written after bounded retries) to a
    clean one-line error and exit code 1.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.common.errors import ObservabilityError, PersistenceError
    from repro.common.fileio import reset_io_state

    reset_io_state()
    plan = _install_io_faults(args)
    try:
        return args.func(args)
    except PersistenceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ObservabilityError as exc:
        # e.g. a trace sink that failed mid-run: requested output,
        # loud failure with the offending path, usage-error exit code.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if plan is not None:
            from repro.robustness.iofault import clear_io_faults

            clear_io_faults()
            print(
                f"io-fault: {plan.fired_count} fault(s) injected over "
                f"{plan.operations} seam operation(s)",
                file=sys.stderr,
            )


if __name__ == "__main__":
    sys.exit(main())
