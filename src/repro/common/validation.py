"""Argument validation helpers.

The simulator's public constructors validate eagerly so that a bad
configuration fails at build time with a :class:`ConfigurationError`
rather than corrupting a simulation hours in.  These helpers keep those
checks one-liners at the call sites.
"""

from __future__ import annotations

from typing import Type

from repro.common.errors import ConfigurationError
from repro.common.intmath import is_power_of_two


def require(
    condition: bool,
    message: str,
    error: Type[Exception] = ConfigurationError,
) -> None:
    """Raise ``error(message)`` unless ``condition`` holds."""
    if not condition:
        raise error(message)


def require_positive(
    value: int,
    name: str,
    error: Type[Exception] = ConfigurationError,
) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise error(f"{name} must be a positive integer, got {value!r}")
    return value


def require_non_negative(
    value: int,
    name: str,
    error: Type[Exception] = ConfigurationError,
) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise error(f"{name} must be a non-negative integer, got {value!r}")
    return value


def require_power_of_two(
    value: int,
    name: str,
    error: Type[Exception] = ConfigurationError,
) -> int:
    """Validate that ``value`` is a positive power of two and return it."""
    require_positive(value, name, error)
    if not is_power_of_two(value):
        raise error(f"{name} must be a power of two, got {value}")
    return value


def require_in_range(
    value: int,
    low: int,
    high: int,
    name: str,
    error: Type[Exception] = ConfigurationError,
) -> int:
    """Validate that ``low <= value <= high`` and return ``value``."""
    require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{name} must be an integer, got {value!r}",
        error,
    )
    if not low <= value <= high:
        raise error(f"{name} must be in [{low}, {high}], got {value}")
    return value
