"""Shared low-level utilities used across the repro package.

This package deliberately contains no simulation logic.  It provides the
exception hierarchy, common enumerations and type aliases, byte-size
parsing, integer helpers and argument-validation helpers that every other
subpackage builds on.
"""

from repro.common.errors import (
    ReproError,
    ConfigurationError,
    GeometryError,
    ScheduleError,
    PartitionError,
    SimulationError,
    TraceError,
    AnalysisError,
)
from repro.common.types import AccessType, EntryState, TransactionKind
from repro.common.units import format_bytes, parse_bytes
from repro.common.intmath import ceil_div, ilog2, is_power_of_two
from repro.common.validation import (
    require,
    require_positive,
    require_non_negative,
    require_power_of_two,
    require_in_range,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "ScheduleError",
    "PartitionError",
    "SimulationError",
    "TraceError",
    "AnalysisError",
    "AccessType",
    "EntryState",
    "TransactionKind",
    "format_bytes",
    "parse_bytes",
    "ceil_div",
    "ilog2",
    "is_power_of_two",
    "require",
    "require_positive",
    "require_non_negative",
    "require_power_of_two",
    "require_in_range",
]
