"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  The subclasses partition failures by
the subsystem that detected them, which keeps error handling in the
experiment harnesses explicit about what went wrong.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A system, workload or experiment configuration is invalid."""


class GeometryError(ConfigurationError):
    """A cache geometry (sets / ways / line size) is malformed."""


class ScheduleError(ConfigurationError):
    """A TDM schedule is malformed or violates a required property.

    Raised, for example, when a 1S-TDM schedule (Definition 4.1 of the
    paper) is requested but the provided slot assignment gives some core
    more than one slot per period.
    """


class PartitionError(ConfigurationError):
    """An LLC partition specification is malformed or inconsistent.

    Covers overlapping partitions, partitions that exceed the physical
    LLC geometry, and cores assigned to no (or more than one) partition.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This always indicates a bug in the model (an invariant such as
    inclusivity or one-outstanding-request was violated), never a bad
    user input; bad inputs raise :class:`ConfigurationError` up front.
    """


class TraceError(ReproError):
    """A memory trace is malformed or cannot be parsed."""


class AnalysisError(ReproError):
    """A worst-case latency analysis was asked an unanswerable question.

    For example, requesting a finite WCL bound for a non-1S-TDM schedule
    where the paper proves the latency is unbounded (Section 4.1).
    """
