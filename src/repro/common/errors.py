"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  The subclasses partition failures by
the subsystem that detected them, which keeps error handling in the
experiment harnesses explicit about what went wrong.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A system, workload or experiment configuration is invalid."""


class GeometryError(ConfigurationError):
    """A cache geometry (sets / ways / line size) is malformed."""


class ScheduleError(ConfigurationError):
    """A TDM schedule is malformed or violates a required property.

    Raised, for example, when a 1S-TDM schedule (Definition 4.1 of the
    paper) is requested but the provided slot assignment gives some core
    more than one slot per period.
    """


class PartitionError(ConfigurationError):
    """An LLC partition specification is malformed or inconsistent.

    Covers overlapping partitions, partitions that exceed the physical
    LLC geometry, and cores assigned to no (or more than one) partition.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This always indicates a bug in the model (an invariant such as
    inclusivity or one-outstanding-request was violated), never a bad
    user input; bad inputs raise :class:`ConfigurationError` up front.
    """


class InvariantViolation(SimulationError):
    """A per-slot model invariant failed while the engine was running.

    Raised by the :mod:`repro.robustness.invariants` monitor (checked
    mode).  Unlike a bare :class:`SimulationError`, the violation names
    the invariant and carries the slot, core and set where it tripped,
    so a failing run points at the exact state transition that broke
    the model the WCL theorems rely on.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        slot: "int | None" = None,
        core: "int | None" = None,
        set_index: "int | None" = None,
    ) -> None:
        self.invariant = invariant
        self.slot = slot
        self.core = core
        self.set_index = set_index
        context = []
        if slot is not None:
            context.append(f"slot {slot}")
        if core is not None:
            context.append(f"core {core}")
        if set_index is not None:
            context.append(f"set {set_index}")
        where = f" at {', '.join(context)}" if context else ""
        super().__init__(f"invariant '{invariant}' violated{where}: {message}")


class CampaignError(ReproError):
    """A sweep/reproduction campaign could not be run or resumed.

    Covers malformed run manifests and misconfigured campaign runners;
    individual task failures do *not* raise this — they are quarantined
    in the run manifest so the campaign can continue.
    """


class TaskTimeoutError(CampaignError):
    """A campaign task exceeded its wall-clock budget and was aborted."""


class TaskHungError(CampaignError):
    """A pool worker stopped heartbeating and was torn down.

    Distinct from :class:`TaskTimeoutError`: a *slow* worker keeps
    heartbeating and is allowed to run until its hard wall-clock
    budget, while a *hung* one (wedged interpreter, deadlock, stalled
    syscall) goes silent and is reclaimed as soon as the liveness
    watchdog notices.
    """


class ResourceExceededError(CampaignError):
    """A pool worker exceeded its resident-memory ceiling and was killed.

    Raised in the parent by the per-worker RSS guard
    (:class:`repro.sim.parallel.TaskPool`); the task is quarantined
    with a ``resource_exceeded`` signature so a leaky configuration is
    diagnosable from the run manifest.
    """


class PersistenceError(ReproError):
    """An ESSENTIAL artifact could not be persisted after bounded retries.

    Raised by :func:`repro.common.fileio.persist_text` when a write that
    the user explicitly requested (campaign manifest, figure/report
    output, ``--metrics`` export, explicit ``--checkpoint`` file) keeps
    failing after the retry budget is exhausted.  Deliberately *not* an
    :class:`OSError` subclass: the persistence layer already performed
    its own bounded retries, so campaign-level transient-retry machinery
    must not retry it again — it propagates to the CLI, which reports
    the offending path and exits nonzero.

    BEST-EFFORT artifacts (result-cache entries, auto-checkpoints) never
    raise this; they degrade through a per-store circuit breaker and the
    run continues with correct results.
    """


class CheckpointError(ReproError):
    """A simulation checkpoint cannot be written, read or applied.

    Covers corrupted or truncated checkpoint files (integrity-hash
    mismatch), version skew (a checkpoint written by a newer build),
    fingerprint mismatches (restoring against a different configuration
    or different traces), and simulator states that cannot be
    checkpointed at all (caller-supplied oracle callbacks, foreign
    engine hooks, non-file event sinks).
    """


class TraceError(ReproError):
    """A memory trace is malformed or cannot be parsed."""


class FuzzError(ReproError):
    """A fuzz campaign, shrink run or repro artifact is unusable.

    Covers oracle checks requested on runs recorded without events,
    shrinking a case that does not actually fail, and repro artifacts
    that are malformed or carry an unsupported schema version.
    """


class ObservabilityError(ReproError):
    """A metrics/tracing request is malformed or cannot be served.

    Covers mismatched merges (histograms of different bucket widths,
    a counter merged into a gauge), relabeling that would alias two
    series, and exporter paths with an unsupported format suffix.
    """


class AnalysisError(ReproError):
    """A worst-case latency analysis was asked an unanswerable question.

    For example, requesting a finite WCL bound for a non-1S-TDM schedule
    where the paper proves the latency is unbounded (Section 4.1).
    """
