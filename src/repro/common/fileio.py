"""Crash-consistent file writes behind one instrumented I/O seam.

Every durable artifact this library writes — campaign manifests,
metrics exports, simulation checkpoints, result-cache entries, trace
sinks — must survive a kill at any instant with either the *previous*
complete generation or the *new* complete generation on disk, never a
truncated hybrid.  The recipe is the classic one (write a sibling temp
file, ``fsync`` it, atomically ``os.replace`` it over the target, then
``fsync`` the directory so the rename itself is durable), and it lives
here so every persistence layer shares one audited implementation
instead of several drifting copies.

Beyond crash consistency this module is the package's single **I/O
seam**: each primitive operation (open / write / fsync / replace /
fsync-dir / read) is labelled with the *site* that issued it
("manifest", "result-cache", "checkpoint", "metrics-export", ...) and
checked against an installable fault hook before touching the kernel.
:mod:`repro.robustness.iofault` installs seeded, deterministic fault
plans through that hook; production runs pay one ``None`` check per
operation.

Failures are governed by a two-class **durability policy**
(:class:`Durability`, applied by :func:`persist_text`):

``ESSENTIAL``
    Artifacts the user asked for (manifests, figure/report outputs,
    ``--metrics`` / explicit ``--checkpoint`` files, trace sinks).
    Bounded retry with exponential backoff; if the write still fails,
    a loud :class:`~repro.common.errors.PersistenceError` naming the
    path, site and errno propagates and the process exits nonzero.

``BEST_EFFORT``
    Acceleration/convenience state the run can recompute (result-cache
    entries, auto-checkpoints).  A per-site circuit breaker disables
    the store after :data:`DEGRADE_AFTER` consecutive failures with a
    one-line stderr notice; every lost write is counted in the
    ``io.degraded.*`` / ``io.skipped.*`` metrics and the run continues
    with byte-identical results.

A crash *between* writing the temp file and the rename can orphan a
``<name>.tmp`` sibling; it never holds state the target lacks, so
readers call :func:`cleanup_stale_tmp` on startup.  A *failure* inside
:func:`atomic_write_text` unlinks its own temp file best-effort, so an
ENOSPC mid-write does not leak partial data either.
"""

from __future__ import annotations

import enum
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.common.errors import PersistenceError

#: Operation labels the seam distinguishes.  Fault specs may filter on
#: them ("write", "fsync", "replace", ...); "fsync-dir" is the
#: directory flush after a rename.
IO_OPS = ("open", "write", "fsync", "replace", "fsync-dir", "read")

#: Consecutive best-effort failures after which a site's circuit
#: breaker opens and the store is disabled for the rest of the run.
DEGRADE_AFTER = 3


@dataclass(frozen=True)
class IoOperation:
    """One primitive I/O operation about to be issued through the seam."""

    op: str
    path: Path
    site: str

    def describe(self) -> str:
        return f"{self.op}[{self.site}] {self.path}"


@dataclass(frozen=True)
class IoFaultAction:
    """What an installed fault hook wants done to one operation.

    ``error`` alone: raise it instead of performing the operation.
    ``short_write_fraction`` (write ops): write only that prefix of the
    text, flush it, then raise ``error`` — models a partial write that
    reached the disk before the failure.  ``corrupt`` (read ops):
    perform the read, then pass the bytes through the callable —
    models silent media corruption that integrity checks must catch.
    """

    error: Optional[OSError] = None
    short_write_fraction: Optional[float] = None
    corrupt: Optional[Callable[[bytes], bytes]] = None


# The installable fault hook: consulted before every seam operation.
# Returns None (proceed normally) or an IoFaultAction.
IoFaultHook = Callable[[IoOperation], Optional[IoFaultAction]]

_FAULT_HOOK: Optional[IoFaultHook] = None


def install_io_fault_hook(hook: IoFaultHook) -> None:
    """Install ``hook`` as the process-wide I/O fault hook.

    Replaces any previously installed hook.  Fork-based workers inherit
    the installed hook, so a fault plan installed before a parallel
    campaign governs the workers too.
    """
    global _FAULT_HOOK
    _FAULT_HOOK = hook


def clear_io_fault_hook() -> None:
    """Remove the installed I/O fault hook (no-op when none is set)."""
    global _FAULT_HOOK
    _FAULT_HOOK = None


def io_fault_hook() -> Optional[IoFaultHook]:
    """The currently installed fault hook, or None."""
    return _FAULT_HOOK


# --------------------------------------------------------------------------
# io.* metrics
# --------------------------------------------------------------------------

_IO_REGISTRY = None  # lazily created repro.obs.metrics.MetricsRegistry


def io_metrics():
    """The process-wide registry holding ``io.*`` counters (lazy)."""
    global _IO_REGISTRY
    if _IO_REGISTRY is None:
        from repro.obs.metrics import MetricsRegistry

        _IO_REGISTRY = MetricsRegistry()
    return _IO_REGISTRY


def count_io(name: str) -> None:
    """Increment the ``io.*`` counter ``name`` by one."""
    io_metrics().counter(name).inc()


def reset_io_state() -> None:
    """Reset the seam's process-wide state (hook, metrics, breakers).

    Test fixtures call this between cases so a breaker tripped by one
    injected fault schedule cannot silently disable a store in the
    next; the CLI calls it at entry so every invocation starts with
    closed breakers and zeroed ``io.*`` counters.
    """
    global _IO_REGISTRY
    clear_io_fault_hook()
    _IO_REGISTRY = None
    _BREAKERS.clear()


# --------------------------------------------------------------------------
# Seam primitives
# --------------------------------------------------------------------------


def check_io(op: str, path: Union[str, Path], site: str) -> Optional[IoFaultAction]:
    """Consult the fault hook for one operation; raise plain faults.

    Returns the action only when it needs cooperation from the caller
    (short write, read corruption); a plain injected error is raised
    here so most call sites stay one-liners.
    """
    hook = _FAULT_HOOK
    if hook is None:
        return None
    action = hook(IoOperation(op=op, path=Path(path), site=site))
    if action is None:
        return None
    if (
        action.error is not None
        and action.short_write_fraction is None
        and action.corrupt is None
    ):
        raise action.error
    return action


def guarded_write(handle, text: str, path: Union[str, Path], site: str) -> None:
    """Write ``text`` to ``handle`` through the seam (short-write aware)."""
    action = check_io("write", path, site)
    if action is None:
        handle.write(text)
        return
    if action.short_write_fraction is not None:
        prefix = text[: int(len(text) * action.short_write_fraction)]
        handle.write(prefix)
        handle.flush()
    if action.error is not None:
        raise action.error


def guarded_fsync(handle, path: Union[str, Path], site: str) -> None:
    """``os.fsync(handle)`` through the seam."""
    check_io("fsync", path, site)
    os.fsync(handle.fileno())


def guarded_replace(tmp: Path, path: Path, site: str) -> None:
    """``os.replace(tmp, path)`` through the seam."""
    check_io("replace", path, site)
    os.replace(tmp, path)


def read_bytes(path: Union[str, Path], site: str = "unlabelled") -> bytes:
    """Read a file's bytes through the seam (corruption-injectable)."""
    path = Path(path)
    action = check_io("read", path, site)
    data = path.read_bytes()
    if action is not None and action.corrupt is not None:
        data = action.corrupt(data)
    return data


def read_text(path: Union[str, Path], site: str = "unlabelled") -> str:
    """Read a file's text through the seam (corruption-injectable)."""
    return read_bytes(path, site=site).decode("utf-8")


# --------------------------------------------------------------------------
# Crash-consistent writes
# --------------------------------------------------------------------------


def tmp_sibling(path: Union[str, Path]) -> Path:
    """The temp-file sibling :func:`atomic_write_text` stages through."""
    path = Path(path)
    return path.with_name(path.name + ".tmp")


def cleanup_stale_tmp(path: Union[str, Path]) -> None:
    """Remove an orphaned ``.tmp`` sibling left by a crash mid-write."""
    tmp_sibling(path).unlink(missing_ok=True)


def sweep_stale_tmp(directory: Union[str, Path]) -> int:
    """Remove every orphaned ``*.tmp`` in ``directory``; return the count.

    The per-file :func:`cleanup_stale_tmp` needs to know the target
    name; directory-granular stores (the result cache) instead sweep
    all orphans at startup, before any entry of the directory is read.
    """
    directory = Path(directory)
    removed = 0
    if not directory.is_dir():
        return removed
    for orphan in sorted(directory.glob("*.tmp")):
        orphan.unlink(missing_ok=True)
        removed += 1
    return removed


def fsync_directory(directory: Union[str, Path], site: str = "unlabelled") -> None:
    """Flush a directory so a completed rename survives power loss.

    Failure here is tolerated (some filesystems refuse directory
    fsync) but no longer invisible: every swallow is counted in
    ``io.swallowed.fsync-dir`` so a store that silently lost its
    rename durability shows up in the metrics export.
    """
    try:
        check_io("fsync-dir", directory, site)
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        count_io("io.swallowed.fsync-dir")


def atomic_write_text(
    path: Union[str, Path],
    text: str,
    mkdir: bool = True,
    site: str = "unlabelled",
) -> Path:
    """Write ``text`` to ``path`` crash-consistently; return the path.

    The parent directory is created if missing (unless ``mkdir`` is
    False — callers that treat a missing parent as a user error pass
    that and map the resulting :class:`OSError`).  A reader never
    observes a partial file: until the final ``os.replace`` the target
    holds its previous content (or does not exist), and afterwards it
    holds exactly ``text``.

    If any step fails (ENOSPC mid-write, fsync error, rename error)
    the staged ``.tmp`` sibling is unlinked best-effort before the
    exception propagates, so a failed write leaks no partial data.
    """
    path = Path(path)
    if mkdir:
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = tmp_sibling(path)
    try:
        check_io("open", tmp, site)
        with open(tmp, "w") as handle:
            guarded_write(handle, text, tmp, site)
            handle.flush()
            guarded_fsync(handle, tmp, site)
        guarded_replace(tmp, path, site)
    except BaseException:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            count_io("io.swallowed.tmp-unlink")
        raise
    fsync_directory(path.parent, site=site)
    return path


# --------------------------------------------------------------------------
# Durability policy
# --------------------------------------------------------------------------


class Durability(enum.Enum):
    """How hard :func:`persist_text` fights for an artifact."""

    #: User-requested output: retry with backoff, then fail loudly.
    ESSENTIAL = "essential"
    #: Recomputable acceleration state: degrade through a breaker.
    BEST_EFFORT = "best-effort"


@dataclass(frozen=True)
class EssentialRetryPolicy:
    """Bounded retry schedule for ESSENTIAL writes."""

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return self.backoff_base * (self.backoff_factor ** (attempt - 1))


_RETRY_POLICY = EssentialRetryPolicy()
_sleep = time.sleep  # monkeypatchable in tests


def set_essential_retry(policy: EssentialRetryPolicy) -> None:
    """Replace the process-wide ESSENTIAL retry policy (tests, tuning)."""
    global _RETRY_POLICY
    _RETRY_POLICY = policy


def essential_retry_policy() -> EssentialRetryPolicy:
    return _RETRY_POLICY


class CircuitBreaker:
    """Consecutive-failure breaker guarding one BEST-EFFORT site."""

    def __init__(self, site: str, threshold: int = DEGRADE_AFTER) -> None:
        self.site = site
        self.threshold = threshold
        self.consecutive_failures = 0
        self.open = False

    def record_failure(self) -> bool:
        """Note a failure; return True when this one tripped the breaker."""
        self.consecutive_failures += 1
        if not self.open and self.consecutive_failures >= self.threshold:
            self.open = True
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0


_BREAKERS: Dict[str, CircuitBreaker] = {}


def circuit_breaker(site: str) -> CircuitBreaker:
    """The (lazily created) breaker guarding ``site``."""
    breaker = _BREAKERS.get(site)
    if breaker is None:
        breaker = _BREAKERS[site] = CircuitBreaker(site)
    return breaker


def persist_text(
    path: Union[str, Path],
    text: str,
    *,
    site: str,
    durability: Durability = Durability.ESSENTIAL,
    mkdir: bool = True,
) -> Optional[Path]:
    """Write ``text`` to ``path`` under the durability policy.

    ESSENTIAL: retries :class:`EssentialRetryPolicy.max_attempts` times
    with exponential backoff (``io.retry.<site>`` counted per retry),
    then raises :class:`~repro.common.errors.PersistenceError` with the
    path, site and underlying errno.  Returns the path on success.

    BEST_EFFORT: one attempt through the site's circuit breaker.
    Returns the path on success, ``None`` when the write was lost —
    either skipped because the breaker is already open
    (``io.skipped.<site>``) or failed and degraded
    (``io.degraded.<site>``).  The breaker opens after
    :data:`DEGRADE_AFTER` consecutive failures with a one-line stderr
    notice; the caller continues without the store.
    """
    path = Path(path)
    if durability is Durability.ESSENTIAL:
        policy = _RETRY_POLICY
        last: Optional[OSError] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return atomic_write_text(path, text, mkdir=mkdir, site=site)
            except OSError as exc:
                last = exc
                count_io(f"io.fault.{site}")
                if attempt < policy.max_attempts:
                    count_io(f"io.retry.{site}")
                    _sleep(policy.delay(attempt))
        errno_part = (
            f" [errno {last.errno}]" if getattr(last, "errno", None) else ""
        )
        raise PersistenceError(
            f"cannot persist essential artifact {path} (site '{site}')"
            f" after {policy.max_attempts} attempt(s): {last}{errno_part};"
            " free disk space / fix permissions on the target directory"
            " and re-run — completed work is resumable from the manifest"
        ) from last
    breaker = circuit_breaker(site)
    if breaker.open:
        count_io(f"io.skipped.{site}")
        return None
    try:
        result = atomic_write_text(path, text, mkdir=mkdir, site=site)
    except OSError as exc:
        count_io(f"io.fault.{site}")
        count_io(f"io.degraded.{site}")
        if breaker.record_failure():
            print(
                f"io: best-effort store '{site}' disabled after"
                f" {breaker.threshold} consecutive failures"
                f" (last: {exc}); run continues without it",
                file=sys.stderr,
            )
        return None
    breaker.record_success()
    return result
