"""Crash-consistent file writes.

Every durable artifact this library writes — campaign manifests,
metrics exports, simulation checkpoints — must survive a kill at any
instant with either the *previous* complete generation or the *new*
complete generation on disk, never a truncated hybrid.  The recipe is
the classic one (write a sibling temp file, ``fsync`` it, atomically
``os.replace`` it over the target, then ``fsync`` the directory so the
rename itself is durable), and it lives here so the manifest runner,
the exporters and the checkpoint layer share one audited
implementation instead of three drifting copies.

A crash *between* writing the temp file and the rename can orphan a
``<name>.tmp`` sibling; it never holds state the target lacks, so
readers call :func:`cleanup_stale_tmp` on startup.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union


def tmp_sibling(path: Union[str, Path]) -> Path:
    """The temp-file sibling :func:`atomic_write_text` stages through."""
    path = Path(path)
    return path.with_name(path.name + ".tmp")


def cleanup_stale_tmp(path: Union[str, Path]) -> None:
    """Remove an orphaned ``.tmp`` sibling left by a crash mid-write."""
    tmp_sibling(path).unlink(missing_ok=True)


def sweep_stale_tmp(directory: Union[str, Path]) -> int:
    """Remove every orphaned ``*.tmp`` in ``directory``; return the count.

    The per-file :func:`cleanup_stale_tmp` needs to know the target
    name; directory-granular stores (the result cache) instead sweep
    all orphans at startup, before any entry of the directory is read.
    """
    directory = Path(directory)
    removed = 0
    if not directory.is_dir():
        return removed
    for orphan in sorted(directory.glob("*.tmp")):
        orphan.unlink(missing_ok=True)
        removed += 1
    return removed


def fsync_directory(directory: Union[str, Path]) -> None:
    """Flush a directory so a completed rename survives power loss."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass


def atomic_write_text(
    path: Union[str, Path], text: str, mkdir: bool = True
) -> Path:
    """Write ``text`` to ``path`` crash-consistently; return the path.

    The parent directory is created if missing (unless ``mkdir`` is
    False — callers that treat a missing parent as a user error pass
    that and map the resulting :class:`OSError`).  A reader never
    observes a partial file: until the final ``os.replace`` the target
    holds its previous content (or does not exist), and afterwards it
    holds exactly ``text``.
    """
    path = Path(path)
    if mkdir:
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = tmp_sibling(path)
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_directory(path.parent)
    return path
