"""Byte-size parsing and formatting.

Experiment configurations in the paper are stated in bytes ("4096-byte
partition", "64-byte cache line", "address range of 2048-byte").  These
helpers let configuration files and CLI flags use human-readable forms
such as ``"4KiB"`` while the library works in plain integers.
"""

from __future__ import annotations

import re

_UNIT_FACTORS = {
    "": 1,
    "b": 1,
    "k": 1024,
    "kb": 1024,
    "kib": 1024,
    "m": 1024**2,
    "mb": 1024**2,
    "mib": 1024**2,
    "g": 1024**3,
    "gb": 1024**3,
    "gib": 1024**3,
}

_SIZE_RE = re.compile(r"^\s*(\d+)\s*([a-zA-Z]*)\s*$")


def parse_bytes(text: str | int) -> int:
    """Parse a byte size such as ``"4KiB"``, ``"64"`` or ``4096``.

    Integers pass through unchanged.  Units are case-insensitive and use
    binary (1024-based) factors, matching how cache sizes are quoted.

    >>> parse_bytes("4KiB")
    4096
    >>> parse_bytes("64")
    64
    """
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"byte size must be non-negative, got {text}")
        return text
    match = _SIZE_RE.match(text)
    if not match:
        raise ValueError(f"cannot parse byte size: {text!r}")
    value, unit = match.groups()
    factor = _UNIT_FACTORS.get(unit.lower())
    if factor is None:
        raise ValueError(f"unknown byte-size unit {unit!r} in {text!r}")
    return int(value) * factor


def format_bytes(size: int) -> str:
    """Format a byte count compactly (``4096`` -> ``"4KiB"``).

    Sizes that are not whole multiples of a binary unit are returned in
    plain bytes so the output always round-trips through
    :func:`parse_bytes` without loss.
    """
    if size < 0:
        raise ValueError(f"byte size must be non-negative, got {size}")
    for factor, suffix in ((1024**3, "GiB"), (1024**2, "MiB"), (1024, "KiB")):
        if size >= factor and size % factor == 0:
            return f"{size // factor}{suffix}"
    return f"{size}B"
