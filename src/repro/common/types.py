"""Common enumerations and type aliases.

The aliases exist to make signatures self-describing: a ``CoreId`` is an
``int`` index into the system's core list, a ``Cycle`` is an absolute
simulation time in clock cycles, and a ``SlotIndex`` is an absolute bus
slot number (slot ``k`` spans cycles ``[k*SW, (k+1)*SW)``).
"""

from __future__ import annotations

import enum

# Index of a core in the system (0-based).
CoreId = int

# Absolute simulation time, in clock cycles.
Cycle = int

# Absolute bus slot number since simulation start.
SlotIndex = int

# A physical byte address.
Address = int

# A cache block (line) address: ``address // line_size``.
BlockAddress = int


class AccessType(enum.Enum):
    """Kind of memory access issued by a core."""

    READ = "R"
    WRITE = "W"
    INSTR = "I"

    @property
    def is_write(self) -> bool:
        """Whether this access dirties the touched cache line."""
        return self is AccessType.WRITE

    @property
    def is_instruction(self) -> bool:
        """Whether this access targets the L1 instruction cache."""
        return self is AccessType.INSTR

    @classmethod
    def from_token(cls, token: str) -> "AccessType":
        """Parse a one-letter trace token (``R``/``W``/``I``)."""
        try:
            return cls(token.upper())
        except ValueError:
            raise ValueError(f"unknown access type token: {token!r}") from None


class EntryState(enum.Enum):
    """Lifecycle of one LLC entry (a way within a set).

    The three-state lifecycle is the heart of the paper's model of an
    inclusive LLC behind a TDM bus:

    * ``FREE`` — the entry holds no line and may be allocated.
    * ``VALID`` — the entry holds a line; it may also be cached privately
      by one or more cores (tracked by the owner directory).
    * ``PENDING_EVICT`` — the LLC selected this entry's line as a victim,
      but a core still holds a *dirty* private copy.  The entry cannot be
      reused until that core spends one of its bus slots writing the line
      back (Section 3, "an eviction in the LLC would force evictions in
      the private caches"; Figure 2 step 2).
    """

    FREE = "free"
    VALID = "valid"
    PENDING_EVICT = "pending-evict"


class TransactionKind(enum.Enum):
    """Kind of bus transaction an L2 controller can start in its slot."""

    REQUEST = "request"
    WRITE_BACK = "write-back"
