"""Small integer helpers used by cache geometry and schedule math."""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """Whether ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Exact integer log base 2 of a power of two.

    >>> ilog2(64)
    6
    """
    if not is_power_of_two(value):
        raise ValueError(f"ilog2 requires a positive power of two, got {value}")
    return value.bit_length() - 1


def ceil_div(numerator: int, denominator: int) -> int:
    """Ceiling integer division for non-negative numerators.

    >>> ceil_div(7, 2)
    4
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)
