"""The set sequencer (Section 4.5 of the paper).

The set sequencer is the paper's micro-architectural contribution: a
Queue Lookup Table (QLT) that maps each LLC set with pending misses to a
FIFO queue in the Sequencer (SQ), recording the broadcast order of the
requests on the shared bus.  A freed entry in a set may only be claimed
by the core at the head of that set's queue, which removes the
"distance increase" mechanism of Observation 3 and drops the WCL from
Theorem 4.7's partition-size-dependent bound to Theorem 4.8's
``(2(n-1)·n + 1)·N·SW``.
"""

from repro.sequencer.qlt import QueueLookupTable
from repro.sequencer.sq import SequencerQueue
from repro.sequencer.set_sequencer import SetSequencer, SequencerStats

__all__ = [
    "QueueLookupTable",
    "SequencerQueue",
    "SetSequencer",
    "SequencerStats",
]
