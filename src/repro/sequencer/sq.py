"""A single FIFO queue of the Sequencer (SQ) structure.

One queue holds the cores with a pending miss on one LLC set, in the
order their requests were first broadcast on the shared bus (Figure 6:
"set sequencer stores the order in which the requests arrived at the
LLC (broadcast order on the shared bus)").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.common.errors import SimulationError
from repro.common.types import CoreId


class SequencerQueue:
    """FIFO of cores awaiting a free entry in one LLC set."""

    def __init__(self, queue_id: int) -> None:
        self.queue_id = queue_id
        self._cores: Deque[CoreId] = deque()
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._cores)

    @property
    def is_empty(self) -> bool:
        return not self._cores

    @property
    def head(self) -> Optional[CoreId]:
        """Core entitled to the next freed entry, if any."""
        return self._cores[0] if self._cores else None

    def contains(self, core: CoreId) -> bool:
        """Whether ``core`` is queued here."""
        return core in self._cores

    def enqueue(self, core: CoreId) -> None:
        """Append ``core``; each core may appear at most once.

        A core has at most one outstanding request (Section 3), so a
        duplicate enqueue indicates an engine bug.
        """
        if core in self._cores:
            raise SimulationError(
                f"core {core} already queued in sequencer queue {self.queue_id}"
            )
        self._cores.append(core)
        self.max_depth = max(self.max_depth, len(self._cores))

    def pop_head(self, core: CoreId) -> None:
        """Remove ``core`` from the head (its request completed)."""
        if not self._cores or self._cores[0] != core:
            raise SimulationError(
                f"core {core} popped from queue {self.queue_id} but head is "
                f"{self._cores[0] if self._cores else None}"
            )
        self._cores.popleft()

    def remove(self, core: CoreId) -> bool:
        """Remove ``core`` from any position (request cancelled or hit).

        Returns whether it was present.
        """
        try:
            self._cores.remove(core)
            return True
        except ValueError:
            return False

    def snapshot(self) -> tuple[CoreId, ...]:
        """The queued cores, head first."""
        return tuple(self._cores)
