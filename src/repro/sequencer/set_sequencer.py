"""The set sequencer facade: QLT + SQ (Figure 6).

The slot engine talks to this class only:

* :meth:`register` — a request missed and could not complete; record it
  in broadcast order (idempotent per outstanding request).
* :meth:`may_claim` — may this core take a free entry in this set now?
  True iff the core heads the set's queue (or was never sequenced, e.g.
  after a QLT overflow).
* :meth:`complete` — the core's request finished; pop it and recycle
  the queue if drained.
* :meth:`cancel` — the request stopped needing an allocation (it became
  a hit because a sharer fetched the same line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.common.types import CoreId
from repro.sequencer.qlt import QueueLookupTable


@dataclass
class SequencerStats:
    """Occupancy and traffic counters for the set sequencer."""

    registrations: int = 0
    completions: int = 0
    cancellations: int = 0
    head_grants: int = 0
    blocked_not_head: int = 0
    max_active_sets: int = 0


class SetSequencer:
    """Orders pending misses per LLC set in bus-broadcast order."""

    def __init__(self, num_sets: int, max_queues: Optional[int] = None) -> None:
        self.qlt = QueueLookupTable(num_sets, max_queues)
        self.stats = SequencerStats()
        # core -> set it is queued for (a core has one outstanding request)
        self._queued_set: Dict[CoreId, int] = {}
        # cores whose registration overflowed the QLT (handled best-effort)
        self._unsequenced: Set[CoreId] = set()

    def is_queued(self, core: CoreId) -> bool:
        """Whether ``core`` currently has a sequenced pending miss."""
        return core in self._queued_set

    def queued_set_of(self, core: CoreId) -> Optional[int]:
        """The set ``core`` is queued for, if any."""
        return self._queued_set.get(core)

    def register(self, core: CoreId, set_index: int) -> None:
        """Record ``core``'s pending miss on ``set_index`` (idempotent)."""
        if core in self._queued_set or core in self._unsequenced:
            return
        queue = self.qlt.acquire(set_index)
        if queue is None:
            self._unsequenced.add(core)
            return
        queue.enqueue(core)
        self._queued_set[core] = set_index
        self.stats.registrations += 1
        self.stats.max_active_sets = max(
            self.stats.max_active_sets, self.qlt.active_entries
        )

    def may_claim(self, core: CoreId, set_index: int) -> bool:
        """Whether ``core`` may take a free entry in ``set_index`` now."""
        queue = self.qlt.queue_for(set_index)
        if queue is None or queue.is_empty:
            return True
        if queue.head == core:
            self.stats.head_grants += 1
            return True
        self.stats.blocked_not_head += 1
        return False

    def complete(self, core: CoreId, set_index: int) -> None:
        """``core``'s request completed; release its queue position."""
        if core in self._unsequenced:
            self._unsequenced.discard(core)
            return
        queued_set = self._queued_set.pop(core, None)
        if queued_set is None:
            return  # completed on first attempt; never registered
        queue = self.qlt.queue_for(queued_set)
        if queue is not None:
            queue.pop_head(core)
            self.qlt.release_if_empty(queued_set)
        self.stats.completions += 1

    def cancel(self, core: CoreId) -> None:
        """``core`` no longer needs an allocation (from any position)."""
        self._unsequenced.discard(core)
        queued_set = self._queued_set.pop(core, None)
        if queued_set is None:
            return
        queue = self.qlt.queue_for(queued_set)
        if queue is not None:
            queue.remove(core)
            self.qlt.release_if_empty(queued_set)
        self.stats.cancellations += 1

    def queue_snapshot(self, set_index: int) -> Tuple[CoreId, ...]:
        """Cores queued for ``set_index``, head first (for tests/logs)."""
        queue = self.qlt.queue_for(set_index)
        return queue.snapshot() if queue is not None else ()
