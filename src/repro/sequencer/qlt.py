"""The Queue Lookup Table (QLT).

Figure 6 of the paper: "The set sequencer contains one entry in the QLT
for each set in the partition that has at least one pending LLC
request.  The entry maps the set to a queue in SQ."

The QLT therefore manages a finite pool of queues and the set→queue
association.  A hardware implementation has a fixed queue count; we
model that with an optional ``max_queues`` so experiments can study
overflow, while the default (one queue per possible set) never runs
out — matching the paper's assumption that ordering is always
maintained.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.validation import require_positive
from repro.sequencer.sq import SequencerQueue


class QueueLookupTable:
    """Maps LLC set indices to sequencer queues, allocating on demand."""

    def __init__(self, num_sets: int, max_queues: Optional[int] = None) -> None:
        require_positive(num_sets, "num_sets", ConfigurationError)
        if max_queues is None:
            max_queues = num_sets
        require_positive(max_queues, "max_queues", ConfigurationError)
        self.num_sets = num_sets
        self.max_queues = max_queues
        self._mapping: Dict[int, SequencerQueue] = {}
        self._free_queues: List[SequencerQueue] = [
            SequencerQueue(queue_id) for queue_id in reversed(range(max_queues))
        ]
        self.overflows = 0

    @property
    def active_entries(self) -> int:
        """Number of sets currently mapped to a queue."""
        return len(self._mapping)

    def queue_for(self, set_index: int) -> Optional[SequencerQueue]:
        """The queue tracking ``set_index``, if one is mapped."""
        self._check_set(set_index)
        return self._mapping.get(set_index)

    def acquire(self, set_index: int) -> Optional[SequencerQueue]:
        """Get or allocate the queue for ``set_index``.

        Returns ``None`` — and counts an overflow — when the queue pool
        is exhausted; the caller falls back to best-effort (NSS)
        handling for that request, which is safe (it can only lengthen
        the observed latency, never corrupt state).
        """
        self._check_set(set_index)
        queue = self._mapping.get(set_index)
        if queue is not None:
            return queue
        if not self._free_queues:
            self.overflows += 1
            return None
        queue = self._free_queues.pop()
        self._mapping[set_index] = queue
        return queue

    def release_if_empty(self, set_index: int) -> None:
        """Return the set's queue to the pool once it has drained."""
        queue = self._mapping.get(set_index)
        if queue is None:
            return
        if queue.is_empty:
            del self._mapping[set_index]
            self._free_queues.append(queue)

    def _check_set(self, set_index: int) -> None:
        if not 0 <= set_index < self.num_sets:
            raise SimulationError(
                f"set index {set_index} out of range 0..{self.num_sets - 1}"
            )
