"""Parameter sweeps of the analytical WCL bounds.

These back the ablation benchmarks: they show *why* the set sequencer
matters by exposing how Theorem 4.7 scales with sharer count (~n³), way
count and partition size, while Theorem 4.8 is flat in the cache
parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from repro.analysis.wcl import (
    SharedPartitionParams,
    wcl_nss_cycles,
    wcl_ss_cycles,
)


@dataclass(frozen=True)
class SensitivityPoint:
    """Both bounds at one parameter setting."""

    parameter: str
    value: int
    nss_cycles: int
    ss_cycles: int

    @property
    def reduction(self) -> float:
        """NSS / SS ratio at this point."""
        return self.nss_cycles / self.ss_cycles


def _point(parameter: str, value: int, params: SharedPartitionParams) -> SensitivityPoint:
    return SensitivityPoint(
        parameter=parameter,
        value=value,
        nss_cycles=wcl_nss_cycles(params),
        ss_cycles=wcl_ss_cycles(params),
    )


def sweep_sharers(
    base: SharedPartitionParams, sharers: Sequence[int]
) -> List[SensitivityPoint]:
    """Bounds as the sharer count ``n`` varies (total cores track ``n``
    when ``n`` exceeds the base total)."""
    points = []
    for n in sharers:
        params = replace(base, sharers=n, total_cores=max(base.total_cores, n))
        points.append(_point("sharers", n, params))
    return points


def sweep_ways(
    base: SharedPartitionParams, ways: Sequence[int]
) -> List[SensitivityPoint]:
    """Bounds as the set associativity ``w`` varies.

    The partition line count scales with the way count (same set count),
    which is how a hardware way-partitioned LLC behaves.
    """
    sets = base.partition_lines // base.ways
    points = []
    for w in ways:
        params = replace(base, ways=w, partition_lines=sets * w)
        points.append(_point("ways", w, params))
    return points


def sweep_partition_lines(
    base: SharedPartitionParams, line_counts: Sequence[int]
) -> List[SensitivityPoint]:
    """Bounds as the partition capacity ``M`` varies.

    The SS bound is constant across this sweep — the paper's key claim
    that the set sequencer makes the WCL *independent* of partition and
    cache size.
    """
    return [
        _point("partition_lines", m, replace(base, partition_lines=m))
        for m in line_counts
    ]
