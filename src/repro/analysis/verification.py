"""Automatic bound-compliance verification of simulation reports.

Given a system configuration, every core has exactly one applicable
analytical WCL: the private bound for a single-core partition, Theorem
4.8 for a sequencer-ordered shared partition, Theorem 4.7 for
best-effort sharing — and *no* finite bound when the schedule is not
1S-TDM and the partition is shared (Section 4.1).  This module derives
that bound per core and checks a report's every completed request
against it, so experiments and CI do not each re-implement the
bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.wcl import (
    SharedPartitionParams,
    wcl_nss_cycles,
    wcl_private_cycles,
    wcl_ss_cycles,
)
from repro.common.types import CoreId, Cycle
from repro.sim.config import SystemConfig
from repro.sim.report import SimReport


@dataclass(frozen=True)
class CoreBound:
    """The analytical bound applying to one core, with provenance."""

    core: CoreId
    partition: str
    #: "private", "theorem-4.8", "theorem-4.7" or "unbounded".
    rule: str
    #: Cycles; ``None`` when no finite bound exists.
    cycles: Optional[Cycle]


@dataclass(frozen=True)
class BoundViolation:
    """One request that exceeded its core's analytical bound."""

    core: CoreId
    block: int
    bus_latency: Cycle
    bound: Cycle
    rule: str


def derive_core_bounds(config: SystemConfig) -> Dict[CoreId, CoreBound]:
    """The analytical WCL applying to each core of ``config``."""
    schedule = config.build_schedule()
    partition_map = config.build_partition_map()
    one_slot = schedule.is_one_slot
    total_cores = config.num_cores
    bounds: Dict[CoreId, CoreBound] = {}
    for core in range(total_cores):
        partition = partition_map.partition_of(core)
        if not partition.is_shared:
            # Private partitions are immune to other cores' LLC
            # behaviour under any TDM schedule; the bound only needs
            # the core's own slot cadence, which the (2N+1) argument
            # covers for 1S-TDM.  For other schedules we use the core's
            # own worst slot gap.
            if one_slot:
                cycles = wcl_private_cycles(total_cores, config.slot_width)
            else:
                gap = _worst_slot_gap(schedule, core)
                cycles = (2 * gap + 1) * config.slot_width
            bounds[core] = CoreBound(core, partition.name, "private", cycles)
            continue
        if not one_slot:
            bounds[core] = CoreBound(core, partition.name, "unbounded", None)
            continue
        params = SharedPartitionParams(
            total_cores=total_cores,
            sharers=partition.num_cores,
            ways=partition.num_ways,
            partition_lines=partition.capacity_lines,
            core_capacity_lines=config.stack.l2_capacity_lines,
            slot_width=config.slot_width,
        )
        if partition.sequencer:
            bounds[core] = CoreBound(
                core, partition.name, "theorem-4.8", wcl_ss_cycles(params)
            )
        else:
            bounds[core] = CoreBound(
                core, partition.name, "theorem-4.7", wcl_nss_cycles(params)
            )
    return bounds


def _worst_slot_gap(schedule, core: CoreId) -> int:
    """Largest slot count between consecutive slots of ``core``."""
    positions = schedule.slots_of(core)
    period = schedule.period_slots
    gaps = []
    for i, position in enumerate(positions):
        nxt = positions[(i + 1) % len(positions)]
        gap = (nxt - position) % period
        gaps.append(gap if gap > 0 else period)
    return max(gaps)


def verify_bounds(
    report: SimReport, config: SystemConfig
) -> List[BoundViolation]:
    """Check every completed request against its core's bound.

    Bus latency (first broadcast to response) is the quantity the
    theorems bound.  Cores whose partition has no finite bound
    (shared + non-1S-TDM) are skipped — starvation there is expected.
    Returns the violations; empty means the report complies.
    """
    bounds = derive_core_bounds(config)
    violations: List[BoundViolation] = []
    for record in report.requests:
        bound = bounds[record.core]
        if bound.cycles is None:
            continue
        if record.bus_latency > bound.cycles:
            violations.append(
                BoundViolation(
                    core=record.core,
                    block=record.block,
                    bus_latency=record.bus_latency,
                    bound=bound.cycles,
                    rule=bound.rule,
                )
            )
    return violations


def assert_bounds(report: SimReport, config: SystemConfig) -> None:
    """Raise ``AssertionError`` listing any bound violations."""
    violations = verify_bounds(report, config)
    if violations:
        summary = "; ".join(
            f"core {v.core} block {v.block:#x}: {v.bus_latency} > {v.bound} "
            f"({v.rule})"
            for v in violations[:5]
        )
        raise AssertionError(
            f"{len(violations)} analytical bound violation(s): {summary}"
        )
