"""Worst-case latency analysis (Section 4 of the paper).

This package holds the paper's analytical contribution, independent of
the simulator:

* :mod:`repro.analysis.distance` — the distance metric of Definition
  4.2 and a tracker for the Observation 1/3 dynamics;
* :mod:`repro.analysis.wcl` — the closed-form WCL bounds: Theorem 4.7
  (1S-TDM without set sequencer), Theorem 4.8 (with set sequencer), and
  the private-partition bound;
* :mod:`repro.analysis.unbounded` — a constructive witness of the
  Section 4.1 unbounded-latency scenario under multi-slot TDM;
* :mod:`repro.analysis.sensitivity` — parameter sweeps of the bounds
  (how WCL scales with sharers, ways, partition size).
"""

from repro.analysis.distance import DistanceTracker, line_distance, tracker_from_events
from repro.analysis.wcl import (
    SharedPartitionParams,
    NssBreakdown,
    interference_factor,
    wcl_nss_slots,
    wcl_nss_cycles,
    wcl_nss_breakdown,
    wcl_ss_slots,
    wcl_ss_cycles,
    wcl_private_slots,
    wcl_private_cycles,
    wcl_reduction_factor,
    analytical_wcl_cycles,
)
from repro.analysis.unbounded import (
    starvation_witness,
    StarvationWitnessResult,
)
from repro.analysis.verification import (
    BoundViolation,
    CoreBound,
    assert_bounds,
    derive_core_bounds,
    verify_bounds,
)
from repro.analysis.sensitivity import (
    sweep_sharers,
    sweep_ways,
    sweep_partition_lines,
    SensitivityPoint,
)

__all__ = [
    "DistanceTracker",
    "line_distance",
    "tracker_from_events",
    "SharedPartitionParams",
    "NssBreakdown",
    "interference_factor",
    "wcl_nss_slots",
    "wcl_nss_cycles",
    "wcl_nss_breakdown",
    "wcl_ss_slots",
    "wcl_ss_cycles",
    "wcl_private_slots",
    "wcl_private_cycles",
    "wcl_reduction_factor",
    "analytical_wcl_cycles",
    "starvation_witness",
    "StarvationWitnessResult",
    "sweep_sharers",
    "BoundViolation",
    "CoreBound",
    "assert_bounds",
    "derive_core_bounds",
    "verify_bounds",
    "sweep_ways",
    "sweep_partition_lines",
    "SensitivityPoint",
]
