"""Partition planning and admission control.

The paper's conclusion sketches the intended deployment: "certain tasks
have their own partitions, but others share partitions; all of which
depends on their performance and real-time requirements."  This module
turns that sentence into an algorithm:

given one task per core (Section 3), each with a per-access latency
budget, a working-set footprint and an isolation requirement, produce a
partition layout —

* tasks that demand isolation, or whose budget is below every feasible
  shared bound, get **private** partitions (bound ``(2N+1)·SW``);
* the rest are greedily packed into **shared, sequencer-ordered**
  partitions, keeping every member's budget above the group's Theorem
  4.8 bound ``(2(n−1)·n+1)·N·SW`` (which grows with the group size n);
* LLC sets are then dealt to partitions proportionally to footprint.

The result is directly usable: :meth:`AdmissionPlan.partitions` feeds
:class:`~repro.sim.config.SystemConfig`, and every per-task analytical
bound is reported next to its budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.wcl import (
    SharedPartitionParams,
    wcl_private_cycles,
    wcl_ss_cycles,
)
from repro.common.errors import AnalysisError
from repro.common.intmath import ceil_div
from repro.common.types import CoreId
from repro.common.validation import require, require_positive
from repro.llc.partition import PartitionSpec


@dataclass(frozen=True)
class TaskSpec:
    """One task (mapped to one core) and its requirements."""

    name: str
    core: CoreId
    latency_budget_cycles: int
    footprint_bytes: int
    criticality: str = "QM"
    allow_sharing: bool = True

    def __post_init__(self) -> None:
        require(bool(self.name), "task name must be non-empty", AnalysisError)
        require_positive(
            self.latency_budget_cycles, "latency_budget_cycles", AnalysisError
        )
        require_positive(self.footprint_bytes, "footprint_bytes", AnalysisError)


@dataclass(frozen=True)
class PlatformSpec:
    """The hardware the plan must fit."""

    num_cores: int = 4
    llc_sets: int = 32
    llc_ways: int = 16
    line_size: int = 64
    slot_width: int = 50
    core_capacity_lines: int = 64

    def __post_init__(self) -> None:
        for field_name in (
            "num_cores",
            "llc_sets",
            "llc_ways",
            "line_size",
            "slot_width",
            "core_capacity_lines",
        ):
            require_positive(getattr(self, field_name), field_name, AnalysisError)

    @property
    def set_bytes(self) -> int:
        """Bytes per full-way set row."""
        return self.llc_ways * self.line_size


@dataclass(frozen=True)
class TaskVerdict:
    """One task's admission outcome."""

    task: TaskSpec
    partition_name: str
    shared_with: Tuple[CoreId, ...]
    bound_cycles: int

    @property
    def admitted(self) -> bool:
        """Whether the analytical bound fits the task's budget."""
        return self.bound_cycles <= self.task.latency_budget_cycles

    @property
    def slack_cycles(self) -> int:
        """Budget minus bound (negative when the task misses)."""
        return self.task.latency_budget_cycles - self.bound_cycles


@dataclass
class AdmissionPlan:
    """The planner's output: a partition layout plus per-task verdicts."""

    partitions: List[PartitionSpec]
    verdicts: Dict[str, TaskVerdict]
    platform: PlatformSpec

    @property
    def feasible(self) -> bool:
        """Whether every task's bound fits its budget."""
        return all(verdict.admitted for verdict in self.verdicts.values())

    @property
    def sets_used(self) -> int:
        """LLC set rows the plan occupies."""
        return sum(partition.num_sets for partition in self.partitions)

    def utilization(self) -> float:
        """Fraction of the LLC the plan hands out."""
        return self.sets_used / self.platform.llc_sets


def plan_admission(
    tasks: Sequence[TaskSpec], platform: Optional[PlatformSpec] = None
) -> AdmissionPlan:
    """Build a partition plan for ``tasks`` on ``platform``.

    Raises :class:`AnalysisError` on malformed input (duplicate cores,
    more tasks than cores).  An *infeasible* plan (some budget cannot be
    met even with a private partition, or the LLC is too small) is
    returned with ``feasible == False`` rather than raised, so callers
    can inspect which task misses and by how much.
    """
    platform = platform or PlatformSpec()
    require(bool(tasks), "need at least one task", AnalysisError)
    cores = [task.core for task in tasks]
    require(
        len(set(cores)) == len(cores),
        f"one task per core (Section 3); duplicate cores in {cores}",
        AnalysisError,
    )
    require(
        all(0 <= core < platform.num_cores for core in cores),
        f"task cores must be within 0..{platform.num_cores - 1}",
        AnalysisError,
    )

    private_bound = wcl_private_cycles(platform.num_cores, platform.slot_width)
    isolated: List[TaskSpec] = []
    shareable: List[TaskSpec] = []
    for task in tasks:
        if task.allow_sharing:
            shareable.append(task)
        else:
            isolated.append(task)

    groups = _pack_shared_groups(shareable, platform)
    # Degenerate shared "groups" of one task are just private partitions.
    for group in list(groups):
        if len(group) == 1:
            isolated.append(group[0])
            groups.remove(group)

    partitions, verdicts = _allocate_sets(isolated, groups, platform, private_bound)
    return AdmissionPlan(partitions=partitions, verdicts=verdicts, platform=platform)


def _group_bound(size: int, platform: PlatformSpec) -> int:
    """Theorem 4.8 bound for a sequencer-ordered group of ``size`` sharers."""
    if size < 2:
        return wcl_private_cycles(platform.num_cores, platform.slot_width)
    params = SharedPartitionParams(
        total_cores=platform.num_cores,
        sharers=size,
        ways=platform.llc_ways,
        partition_lines=platform.llc_ways,  # >= one set; bound is size-free
        core_capacity_lines=platform.core_capacity_lines,
        slot_width=platform.slot_width,
    )
    return wcl_ss_cycles(params)


def _pack_shared_groups(
    tasks: List[TaskSpec], platform: PlatformSpec
) -> List[List[TaskSpec]]:
    """Greedy first-fit-decreasing-by-budget packing under Theorem 4.8.

    Tightest budgets first: each task joins the first group whose bound,
    after growing by one sharer, still fits every member (checking the
    new member suffices — earlier members have no smaller budgets).
    """
    ordered = sorted(tasks, key=lambda task: task.latency_budget_cycles)
    groups: List[List[TaskSpec]] = []
    for task in ordered:
        placed = False
        for group in groups:
            grown = _group_bound(len(group) + 1, platform)
            if grown <= task.latency_budget_cycles and all(
                grown <= member.latency_budget_cycles for member in group
            ):
                group.append(task)
                placed = True
                break
        if not placed:
            groups.append([task])
    return groups


def _sets_for_footprint(footprint_bytes: int, platform: PlatformSpec) -> int:
    return max(1, ceil_div(footprint_bytes, platform.set_bytes))


def _allocate_sets(
    isolated: List[TaskSpec],
    groups: List[List[TaskSpec]],
    platform: PlatformSpec,
    private_bound: int,
) -> Tuple[List[PartitionSpec], Dict[str, TaskVerdict]]:
    """Deal set rows to partitions, scaling down if the LLC is short."""
    demands: List[Tuple[str, List[TaskSpec], bool, int]] = []
    for task in isolated:
        demands.append(
            (
                f"private-{task.name}",
                [task],
                False,
                _sets_for_footprint(task.footprint_bytes, platform),
            )
        )
    for index, group in enumerate(groups):
        total_footprint = sum(task.footprint_bytes for task in group)
        demands.append(
            (
                f"shared-{index}",
                group,
                True,
                _sets_for_footprint(total_footprint, platform),
            )
        )

    wanted = sum(demand for _, _, _, demand in demands)
    budgeted = _scale_demands(
        [demand for _, _, _, demand in demands], platform.llc_sets
    ) if wanted > platform.llc_sets else [demand for _, _, _, demand in demands]

    partitions: List[PartitionSpec] = []
    verdicts: Dict[str, TaskVerdict] = {}
    next_set = 0
    for (name, members, sequencer, _), sets_granted in zip(demands, budgeted):
        sets = list(range(next_set, next_set + sets_granted))
        next_set += sets_granted
        member_cores = tuple(sorted(task.core for task in members))
        partitions.append(
            PartitionSpec(
                name=name,
                sets=sets,
                way_range=(0, platform.llc_ways),
                cores=member_cores,
                sequencer=sequencer and len(members) > 1,
            )
        )
        bound = (
            _group_bound(len(members), platform)
            if len(members) > 1
            else private_bound
        )
        for task in members:
            verdicts[task.name] = TaskVerdict(
                task=task,
                partition_name=name,
                shared_with=tuple(c for c in member_cores if c != task.core),
                bound_cycles=bound,
            )
    return partitions, verdicts


def _scale_demands(demands: List[int], available: int) -> List[int]:
    """Shrink demands proportionally to fit, keeping every one >= 1."""
    if available < len(demands):
        raise AnalysisError(
            f"LLC has {available} set rows but the plan needs at least "
            f"{len(demands)} (one per partition)"
        )
    total = sum(demands)
    scaled = [max(1, demand * available // total) for demand in demands]
    # Fix rounding: trim the largest grants until we fit.
    while sum(scaled) > available:
        index = max(range(len(scaled)), key=lambda i: scaled[i])
        require(scaled[index] > 1, "cannot shrink below one set", AnalysisError)
        scaled[index] -= 1
    return scaled
