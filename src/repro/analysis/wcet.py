"""Task-level WCET bounds built on the per-access WCL.

The paper bounds one memory access.  Certifying a task needs the next
step: an execution-time bound for its whole trace.  With the system
model's in-order, one-outstanding-request core, a task's execution time
is simply the sum of its access latencies, so per-access WCLs compose
additively.  This module provides the two standard flavours:

* **static bound** — no knowledge of cache behaviour: every access is
  assumed to miss everything and pay the full WCL.  Sound, enormous.
* **hybrid (measurement-assisted) bound** — the industrial practice for
  COTS multicores: take the LLC-access count from a measurement run
  (misses in private caches are a per-task property, unaffected by
  other cores under partitioning), bound each such access by the
  analytical WCL and each private hit by the L2 hit latency.  Sound
  under the system model *given* the measured miss count is the task's
  true worst case, and typically orders of magnitude tighter.

Both compose with any of the partition bounds (Theorem 4.7, Theorem
4.8, private), so the module quantifies the real cost of sharing at the
task level: swap the WCL, compare the bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.wcl import wcl_private_cycles, wcl_ss_cycles
from repro.common.errors import AnalysisError
from repro.common.types import Cycle
from repro.common.validation import require, require_non_negative, require_positive
from repro.cpu.private_stack import PrivateStackConfig
from repro.sim.report import SimReport


@dataclass(frozen=True)
class TaskProfile:
    """What we know about one task's memory behaviour."""

    #: Total memory accesses in the task's trace.
    accesses: int
    #: Accesses that reach the LLC (private misses).  ``None`` when
    #: unknown (forces the static bound).
    llc_accesses: int | None = None

    def __post_init__(self) -> None:
        require_non_negative(self.accesses, "accesses", AnalysisError)
        if self.llc_accesses is not None:
            require_non_negative(self.llc_accesses, "llc_accesses", AnalysisError)
            require(
                self.llc_accesses <= self.accesses,
                f"llc_accesses ({self.llc_accesses}) cannot exceed accesses "
                f"({self.accesses})",
                AnalysisError,
            )


@dataclass(frozen=True)
class WcetBound:
    """An execution-time bound and how it decomposes."""

    kind: str
    private_cycles: Cycle
    memory_cycles: Cycle

    @property
    def total_cycles(self) -> Cycle:
        """The bound."""
        return self.private_cycles + self.memory_cycles


def static_wcet_bound(
    profile: TaskProfile,
    wcl_cycles: int,
) -> WcetBound:
    """Every access pays the full WCL — sound with zero cache knowledge."""
    require_positive(wcl_cycles, "wcl_cycles", AnalysisError)
    return WcetBound(
        kind="static",
        private_cycles=0,
        memory_cycles=profile.accesses * wcl_cycles,
    )


def hybrid_wcet_bound(
    profile: TaskProfile,
    wcl_cycles: int,
    stack: PrivateStackConfig | None = None,
) -> WcetBound:
    """Measured LLC-access count, analytical per-access WCL.

    Private hits are bounded by the slowest private hit (the L2 hit
    latency — an L1 hit is never slower); LLC accesses by ``wcl_cycles``.
    """
    require_positive(wcl_cycles, "wcl_cycles", AnalysisError)
    if profile.llc_accesses is None:
        raise AnalysisError(
            "hybrid bound needs the task's LLC-access count; run a "
            "measurement (profile_task) or use static_wcet_bound"
        )
    stack = stack or PrivateStackConfig()
    private_accesses = profile.accesses - profile.llc_accesses
    return WcetBound(
        kind="hybrid",
        private_cycles=private_accesses * stack.l2_hit_latency,
        memory_cycles=profile.llc_accesses * wcl_cycles,
    )


def profile_task(report: SimReport, core: int) -> TaskProfile:
    """Extract a task's profile from a (measurement) simulation run."""
    core_report = report.core_reports[core]
    return TaskProfile(
        accesses=core_report.private_hits + core_report.requests,
        llc_accesses=core_report.requests,
    )


def sharing_cost_factor(
    profile: TaskProfile,
    sharers: int,
    total_cores: int,
    slot_width: int,
    stack: PrivateStackConfig | None = None,
) -> float:
    """How much larger the hybrid WCET bound gets when the task moves
    from a private partition to an ``sharers``-way shared one (SS).

    This is the task-level price of sharing the paper's Section 6
    weighs against the capacity gain — computable before committing to
    a layout.
    """
    from repro.analysis.wcl import SharedPartitionParams

    require(
        sharers >= 2,
        "sharing cost needs >= 2 sharers; 1 sharer is the private case",
        AnalysisError,
    )
    private = hybrid_wcet_bound(
        profile, wcl_private_cycles(total_cores, slot_width), stack
    )
    shared_wcl = wcl_ss_cycles(
        SharedPartitionParams(
            total_cores=total_cores,
            sharers=sharers,
            ways=16,
            partition_lines=16,
            core_capacity_lines=64,
            slot_width=slot_width,
        )
    )
    shared = hybrid_wcet_bound(profile, shared_wcl, stack)
    if private.total_cycles == 0:
        return 1.0
    return shared.total_cycles / private.total_cycles
