"""Per-request interference decomposition.

Theorem 4.7's critical instance (Figure 5) decomposes a request's
latency into waiting for the first slot, the core's own write-backs,
and stretches of waiting for other cores' evictions to drain.  This
module performs the same decomposition *empirically* on a simulation's
event log, so one can see where a measured latency actually went —
useful both to explain observed WCLs and to compare NSS against SS
(sequencer waits replace distance-increase stalls).

Requires the run to have used ``record_events=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bus.schedule import TdmSchedule
from repro.common.errors import AnalysisError
from repro.common.types import BlockAddress, CoreId, Cycle, SlotIndex
from repro.sim.events import EventKind, EventLog
from repro.sim.report import RequestRecord, SimReport


@dataclass(frozen=True)
class RequestBreakdown:
    """Where one completed request's latency went.

    All slot counts are slots of the requesting core between its first
    bus broadcast and its response (inclusive); ``other_core_slots`` are
    the interleaved slots owned by other cores in the same window.
    """

    core: CoreId
    block: BlockAddress
    latency: Cycle
    wait_for_first_slot: Cycle
    own_writeback_slots: int
    blocked_full_slots: int
    sequencer_blocked_slots: int
    eviction_trigger_slots: int
    service_slots: int
    other_core_slots: int

    @property
    def own_slots(self) -> int:
        """Total own slots the request's window consumed."""
        return (
            self.own_writeback_slots
            + self.blocked_full_slots
            + self.sequencer_blocked_slots
            + self.eviction_trigger_slots
            + self.service_slots
        )


def _classify_own_slots(
    events: EventLog,
) -> Dict[Tuple[CoreId, SlotIndex], str]:
    """Label every (core, slot) with what the core's slot was spent on."""
    labels: Dict[Tuple[CoreId, SlotIndex], str] = {}
    for event in events:
        key = (event.core, event.slot)
        if event.kind is EventKind.WB_SENT:
            labels[key] = "writeback"
        elif event.kind in (EventKind.LLC_HIT, EventKind.LLC_ALLOC):
            labels[key] = "service"
        elif event.kind is EventKind.SEQ_BLOCKED:
            labels.setdefault(key, "seq-blocked")
        elif event.kind is EventKind.EVICT_START:
            # Only the requester's own trigger counts; back-invalidation
            # events carry the victim owners' ids instead.
            labels.setdefault(key, "evict-trigger")
        elif event.kind is EventKind.BLOCKED_FULL:
            labels.setdefault(key, "blocked")
    return labels


def decompose_request(
    record: RequestRecord,
    labels: Dict[Tuple[CoreId, SlotIndex], str],
    schedule: TdmSchedule,
) -> RequestBreakdown:
    """Decompose one completed request using pre-classified slots."""
    first_slot = schedule.slot_of_cycle(record.first_on_bus_at)
    last_slot = schedule.slot_of_cycle(record.completed_at - 1)
    counts = {
        "writeback": 0,
        "blocked": 0,
        "seq-blocked": 0,
        "evict-trigger": 0,
        "service": 0,
    }
    other = 0
    for slot in range(first_slot, last_slot + 1):
        if schedule.owner_of_slot(slot) != record.core:
            other += 1
            continue
        label = labels.get((record.core, slot))
        if label in counts:
            counts[label] += 1
    return RequestBreakdown(
        core=record.core,
        block=record.block,
        latency=record.latency,
        wait_for_first_slot=record.first_on_bus_at - record.enqueued_at,
        own_writeback_slots=counts["writeback"],
        blocked_full_slots=counts["blocked"],
        sequencer_blocked_slots=counts["seq-blocked"],
        eviction_trigger_slots=counts["evict-trigger"],
        service_slots=counts["service"],
        other_core_slots=other,
    )


def decompose_report(
    report: SimReport, schedule: TdmSchedule
) -> List[RequestBreakdown]:
    """Decompose every completed request of a run."""
    if len(report.events) == 0:
        raise AnalysisError(
            "interference decomposition needs an event log; run with "
            "record_events=True"
        )
    labels = _classify_own_slots(report.events)
    return [
        decompose_request(record, labels, schedule)
        for record in report.requests
    ]


def summarize(breakdowns: List[RequestBreakdown]) -> Dict[str, float]:
    """Aggregate slot counts across requests (totals plus means)."""
    if not breakdowns:
        return {}
    count = len(breakdowns)
    totals = {
        "requests": count,
        "own_writeback_slots": sum(b.own_writeback_slots for b in breakdowns),
        "blocked_full_slots": sum(b.blocked_full_slots for b in breakdowns),
        "sequencer_blocked_slots": sum(
            b.sequencer_blocked_slots for b in breakdowns
        ),
        "eviction_trigger_slots": sum(
            b.eviction_trigger_slots for b in breakdowns
        ),
        "service_slots": sum(b.service_slots for b in breakdowns),
        "other_core_slots": sum(b.other_core_slots for b in breakdowns),
    }
    totals["mean_latency"] = sum(b.latency for b in breakdowns) / count
    totals["mean_wait_for_first_slot"] = (
        sum(b.wait_for_first_slot for b in breakdowns) / count
    )
    return totals


def worst_request(breakdowns: List[RequestBreakdown]) -> RequestBreakdown:
    """The breakdown of the highest-latency request (the observed WCL)."""
    if not breakdowns:
        raise AnalysisError("no completed requests to pick a worst case from")
    return max(breakdowns, key=lambda b: b.latency)
