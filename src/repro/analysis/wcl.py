"""Closed-form worst-case latency bounds (Theorems 4.7 and 4.8).

Notation, following the paper:

=====  ==============================================================
``N``  cores on the TDM bus (the 1S-TDM period, in slots)
``n``  cores sharing the partition of the core under analysis, n <= N
``w``  ways of the LLC set the request maps to (partition ways)
``M``  partition capacity in lines
``m``  ``min(m_cua, M)`` where ``m_cua`` is the core's private (L2)
       capacity in lines — the most lines whose eviction can force a
       write-back on the core under analysis
``SW`` TDM slot width in cycles
=====  ==============================================================

Theorem 4.7 (1S-TDM, no set sequencer)::

    WCL = ((m + 1) · A · N + 1) · SW,   A = 2(n−1) · w · (n−1)

Theorem 4.8 (with the set sequencer)::

    WCL_ss = (2(n−1) · n + 1) · N · SW

Private partition (no inter-core interference in the LLC): a request
waits at most one period behind its own write-back, one period for its
own slot, and one slot for the response: ``(2N + 1) · SW``.  This
reproduces the paper's Figure 7 value of 450 cycles for ``N = 4,
SW = 50``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import AnalysisError
from repro.common.validation import require, require_positive
from repro.llc.partition import PartitionKind, PartitionNotation


@dataclass(frozen=True)
class SharedPartitionParams:
    """Parameters of one shared-partition WCL question.

    ``sharers`` must be at least 2 — with a single core the partition is
    private and the Theorem 4.7/4.8 critical instances cannot arise; use
    :func:`wcl_private_slots` instead.
    """

    total_cores: int
    sharers: int
    ways: int
    partition_lines: int
    core_capacity_lines: int
    slot_width: int

    def __post_init__(self) -> None:
        require_positive(self.total_cores, "total_cores", AnalysisError)
        require_positive(self.sharers, "sharers", AnalysisError)
        require_positive(self.ways, "ways", AnalysisError)
        require_positive(self.partition_lines, "partition_lines", AnalysisError)
        require_positive(self.core_capacity_lines, "core_capacity_lines", AnalysisError)
        require_positive(self.slot_width, "slot_width", AnalysisError)
        require(
            self.sharers <= self.total_cores,
            f"sharers ({self.sharers}) cannot exceed total cores "
            f"({self.total_cores})",
            AnalysisError,
        )
        require(
            self.sharers >= 2,
            f"shared-partition bounds need >= 2 sharers, got {self.sharers}; "
            "a single-core partition is private (use wcl_private_slots)",
            AnalysisError,
        )
        require(
            self.ways <= self.partition_lines,
            f"a set has {self.ways} ways but the partition only holds "
            f"{self.partition_lines} lines",
            AnalysisError,
        )

    @property
    def m(self) -> int:
        """``m = min(m_cua, M)`` of Theorem 4.7."""
        return min(self.core_capacity_lines, self.partition_lines)


def interference_factor(sharers: int, ways: int) -> int:
    """``A = 2(n−1) · w · (n−1)`` of Theorem 4.7.

    The number of periods for the distance of all ``w`` lines of the
    target set to decay from ``n`` to 1, at the worst-case rate of one
    guaranteed decrement per ``2(n−1)`` periods (Corollary 4.5).
    """
    require_positive(sharers, "sharers", AnalysisError)
    require_positive(ways, "ways", AnalysisError)
    return 2 * (sharers - 1) * ways * (sharers - 1)


# ----------------------------------------------------------------------
# Theorem 4.7: 1S-TDM, no set sequencer (NSS)
# ----------------------------------------------------------------------
def wcl_nss_slots(params: SharedPartitionParams) -> int:
    """Theorem 4.7 bound in slots: ``(m + 1) · A · N + 1``."""
    a = interference_factor(params.sharers, params.ways)
    return (params.m + 1) * a * params.total_cores + 1


def wcl_nss_cycles(params: SharedPartitionParams) -> int:
    """Theorem 4.7 bound in cycles: ``((m + 1) · A · N + 1) · SW``."""
    return wcl_nss_slots(params) * params.slot_width


@dataclass(frozen=True)
class NssBreakdown:
    """The four parts of the Theorem 4.7 critical instance (Figure 5).

    All values in slots.
    """

    #: (1) worst-case number of write-backs forced on the core: ``m``.
    writebacks: int
    #: (2) slots between two consecutive write-backs: ``A · N``.
    slots_between_writebacks: int
    #: (3) slots before the first write-back: ``A · N``.
    slots_before_first: int
    #: (4) slots after the last write-back, incl. the response: ``A·N + 1``.
    slots_after_last: int
    #: The total, ``(m + 1) · A · N + 1``.
    total_slots: int


def wcl_nss_breakdown(params: SharedPartitionParams) -> NssBreakdown:
    """Decompose the Theorem 4.7 bound into its proof's four parts."""
    a_slots = interference_factor(params.sharers, params.ways) * params.total_cores
    m = params.m
    total = (m - 1) * a_slots + a_slots + (a_slots + 1)
    breakdown = NssBreakdown(
        writebacks=m,
        slots_between_writebacks=a_slots,
        slots_before_first=a_slots,
        slots_after_last=a_slots + 1,
        total_slots=total,
    )
    # The proof's final algebra: (m−1)·AN + AN + (AN+1) = (m+1)·AN + 1.
    assert breakdown.total_slots == wcl_nss_slots(params)
    return breakdown


# ----------------------------------------------------------------------
# Theorem 4.8: with the set sequencer (SS)
# ----------------------------------------------------------------------
def wcl_ss_slots(params: SharedPartitionParams) -> int:
    """Theorem 4.8 bound in slots: ``(2(n−1) · n + 1) · N``.

    Independent of both the partition size ``M`` and the core's cache
    capacity — the set sequencer's whole point.
    """
    n = params.sharers
    return (2 * (n - 1) * n + 1) * params.total_cores


def wcl_ss_cycles(params: SharedPartitionParams) -> int:
    """Theorem 4.8 bound in cycles: ``(2(n−1) · n + 1) · N · SW``."""
    return wcl_ss_slots(params) * params.slot_width


# ----------------------------------------------------------------------
# Private partition (P)
# ----------------------------------------------------------------------
def wcl_private_slots(total_cores: int) -> int:
    """WCL in slots for a core with a private partition: ``2N + 1``.

    No other core can touch the partition, so the worst case is: the
    core's slot is consumed by its own pending write-back (one period to
    come around again), the request issues in the next slot and misses
    (the eviction is local and immediate — no other core must be waited
    on), and the response arrives within that slot; waiting for the
    first slot costs at most one more period.  ``(2N + 1) · SW``
    reproduces the paper's 450 cycles for N = 4, SW = 50.
    """
    require_positive(total_cores, "total_cores", AnalysisError)
    return 2 * total_cores + 1


def wcl_private_cycles(total_cores: int, slot_width: int) -> int:
    """Private-partition bound in cycles: ``(2N + 1) · SW``."""
    require_positive(slot_width, "slot_width", AnalysisError)
    return wcl_private_slots(total_cores) * slot_width


# ----------------------------------------------------------------------
# Dispatch and derived quantities
# ----------------------------------------------------------------------
def wcl_reduction_factor(params: SharedPartitionParams) -> float:
    """How many times lower the SS bound is than the NSS bound.

    The abstract's headline "2048 times lower" is this ratio for the
    4-core, 16-way configuration (the exact value depends on ``m``; see
    EXPERIMENTS.md for the computed values).
    """
    return wcl_nss_cycles(params) / wcl_ss_cycles(params)


def analytical_wcl_cycles(
    notation: PartitionNotation,
    total_cores: int,
    slot_width: int,
    core_capacity_lines: int,
) -> int:
    """The analytical WCL for a Section 5 configuration string.

    Dispatches on the notation kind: ``SS`` → Theorem 4.8, ``NSS`` →
    Theorem 4.7, ``P`` → the private bound.
    """
    if notation.kind is PartitionKind.P:
        return wcl_private_cycles(total_cores, slot_width)
    params = SharedPartitionParams(
        total_cores=total_cores,
        sharers=notation.cores,
        ways=notation.ways,
        partition_lines=notation.sets * notation.ways,
        core_capacity_lines=core_capacity_lines,
        slot_width=slot_width,
    )
    if notation.kind is PartitionKind.SS:
        return wcl_ss_cycles(params)
    return wcl_nss_cycles(params)
