"""The distance metric (Definition 4.2) and its dynamics.

``d_{c_j}^{c_i}`` is the number of slots from the start of ``c_i``'s
slot to the start of ``c_j``'s next slot under a 1S-TDM schedule; for a
cache line ``l`` privately cached by core ``c(l)``, the paper tracks
``d_{c_ua}^{c(l)}`` — how long the core under analysis would have to
wait for the current private owner of ``l`` to reach its own slot.

Observation 1: while ``c_ua`` performs no write-backs, these distances
never increase (Lemma 4.4) and strictly decrease at least every
``2(n−1)`` of ``c_ua``'s slots (Corollary 4.5).  Observation 3: a
write-back by ``c_ua`` lets them increase again (Lemma 4.6).  The
:class:`DistanceTracker` records the owner history of a set's lines so
tests and examples can observe exactly these dynamics on simulator event
logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.bus.schedule import TdmSchedule, distance

if TYPE_CHECKING:
    from repro.sim.events import EventLog
from repro.common.errors import AnalysisError
from repro.common.types import BlockAddress, CoreId, Cycle


def line_distance(
    schedule: TdmSchedule, owner: Optional[CoreId], observer: CoreId
) -> Optional[int]:
    """``d_{observer}^{c(l)}`` for a line owned by ``owner``.

    ``None`` when the line has no private owner (the distance is only
    defined while some core caches the line privately).
    """
    if owner is None:
        return None
    return distance(schedule, owner, observer)


def tracker_from_events(
    events: "EventLog",
    schedule: TdmSchedule,
    observer: CoreId,
    by: str = "entry",
) -> "DistanceTracker":
    """Reconstruct ownership history from a simulation event log.

    ``by="entry"`` tracks each LLC entry ``(set, way)`` — the paper's
    own view: in Figure 3 "the core that caches l₁ changes from c₃ …
    to c₄", where l₁ is a *slot in the set* that is freed and
    re-occupied by another core's line.  ``by="block"`` tracks block
    addresses instead (a line that leaves the LLC ends its trajectory).

    Works for the paper's workloads, where ranges are disjoint and a
    line has one private owner: allocations and hits set the owner,
    back-invalidations and frees clear it.
    """
    from repro.sim.events import EventKind

    if by not in ("entry", "block"):
        raise AnalysisError(f"by must be 'entry' or 'block', got {by!r}")
    tracker = DistanceTracker(schedule=schedule, observer=observer)

    def key_of(event) -> Optional[object]:
        if by == "block":
            return event.block
        if event.set_index is None or event.way is None:
            return None
        return (event.set_index, event.way)

    for event in events:
        key = key_of(event)
        if key is None:
            continue
        if event.kind in (EventKind.LLC_ALLOC, EventKind.LLC_HIT):
            tracker.record(event.cycle, key, event.core)
        elif event.kind in (EventKind.BACK_INVALIDATE, EventKind.ENTRY_FREED):
            tracker.record(event.cycle, key, None)
    return tracker


@dataclass(frozen=True)
class OwnershipChange:
    """One change of a line's private owner, as observed over time."""

    cycle: Cycle
    block: BlockAddress
    owner: Optional[CoreId]
    distance_to_observer: Optional[int]


@dataclass
class DistanceTracker:
    """Tracks per-line owner distance relative to one observing core.

    Feed it ownership changes (from simulator events or by hand) and
    query the distance trajectory of each line — the quantity whose
    monotone decrease (Observation 1) or increase after a write-back
    (Observation 3) the paper's argument rests on.
    """

    schedule: TdmSchedule
    observer: CoreId
    history: Dict[BlockAddress, List[OwnershipChange]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.schedule.require_one_slot()
        if self.observer not in self.schedule.cores:
            raise AnalysisError(
                f"observer core {self.observer} is not in the schedule"
            )

    def record(
        self, cycle: Cycle, block: BlockAddress, owner: Optional[CoreId]
    ) -> OwnershipChange:
        """Record that ``block``'s private owner is now ``owner``."""
        change = OwnershipChange(
            cycle=cycle,
            block=block,
            owner=owner,
            distance_to_observer=line_distance(self.schedule, owner, self.observer),
        )
        self.history.setdefault(block, []).append(change)
        return change

    def trajectory(self, block: BlockAddress) -> List[Optional[int]]:
        """The distance sequence of one line, in recording order."""
        return [
            change.distance_to_observer for change in self.history.get(block, [])
        ]

    def _owned_pairs(self, block: BlockAddress, across_gaps: bool):
        """Consecutive owned-distance pairs of a trajectory.

        With ``across_gaps`` the free (``None``) samples are skipped, so
        a freed-then-reoccupied entry compares its old owner against the
        new one — the paper's Figure 3/4 view, where entry l₁ goes
        "c₃ → (freed) → c₄" and the distance moves 2 → 1.  Without it,
        a gap resets the comparison.
        """
        previous: Optional[int] = None
        for value in self.trajectory(block):
            if value is None:
                if not across_gaps:
                    previous = None
                continue
            if previous is not None:
                yield previous, value
            previous = value

    def is_non_increasing(
        self, block: BlockAddress, across_gaps: bool = False
    ) -> bool:
        """Whether the line's distance never increased (Observation 1)."""
        return all(
            later <= earlier
            for earlier, later in self._owned_pairs(block, across_gaps)
        )

    def increases(self, block: BlockAddress, across_gaps: bool = False) -> int:
        """Count of distance increases (Observation 3's signature)."""
        return sum(
            1
            for earlier, later in self._owned_pairs(block, across_gaps)
            if later > earlier
        )

    def decreases(self, block: BlockAddress, across_gaps: bool = False) -> int:
        """Count of distance decreases (Observation 1's progress steps)."""
        return sum(
            1
            for earlier, later in self._owned_pairs(block, across_gaps)
            if later < earlier
        )
