"""A constructive witness of the Section 4.1 unbounded-WCL scenario.

The paper (Figure 2): under a TDM schedule that gives an interfering
core *two* slots per period, that core can — every single period —
write back the line the LLC evicted for the core under analysis and
immediately re-occupy the freed entry with a new request, so the core
under analysis never completes.  Under 1S-TDM (Definition 4.1) the same
workload completes in a handful of periods.

Latency "unbounded" is demonstrated the only way a terminating program
can: the witness replays interferer streams of increasing length and
shows the victim's latency grows linearly with the stream length under
the multi-slot schedule while staying constant under 1S-TDM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.bus.schedule import TdmSchedule
from repro.common.types import AccessType, CoreId
from repro.llc.partition import PartitionSpec
from repro.sim.config import SystemConfig
from repro.sim.report import SimReport
from repro.sim.simulator import simulate
from repro.workloads.trace import MemoryTrace, TraceRecord

#: Block the victim core requests (far away from the interferer's blocks).
VICTIM_BLOCK = 1 << 20


def _witness_traces(
    ways: int, stream_length: int, line_size: int
) -> Dict[CoreId, MemoryTrace]:
    """Victim (core 0) requests one line; interferer (core 1) streams.

    Every block folds onto the single partition set.  The interferer
    writes, so each of its lines is dirty in its private caches and LLC
    evictions always cost it a write-back slot.
    """
    victim = MemoryTrace(
        [TraceRecord(VICTIM_BLOCK * line_size, AccessType.WRITE)],
        name="victim",
    )
    interferer = MemoryTrace(
        [
            TraceRecord(block * line_size, AccessType.WRITE)
            for block in range(ways + stream_length)
        ],
        name="interferer",
    )
    return {0: victim, 1: interferer}


def _witness_config(
    schedule: TdmSchedule, ways: int, slot_width: int, max_slots: int
) -> SystemConfig:
    """The Figure 2 platform: one shared single-set partition, 2 cores.

    The unbounded scenario is an *existence* claim, so the witness pins
    the adversarial interleaving the figure depicts: the interferer
    writes the victim's freed entry back first and re-occupies it with
    its next request before the victim's slot returns
    (``WRITEBACK_FIRST`` arbitration makes that phase deterministic).
    """
    from repro.bus.arbiter import ArbitrationPolicy

    partition = PartitionSpec(
        name="shared",
        sets=[0],
        way_range=(0, ways),
        cores=(0, 1),
        sequencer=False,
    )
    return SystemConfig(
        num_cores=2,
        partitions=[partition],
        slot_width=slot_width,
        schedule=schedule,
        llc_sets=1,
        llc_ways=ways,
        llc_hit_latency=min(20, slot_width),
        llc_miss_latency=min(45, slot_width),
        arbitration=ArbitrationPolicy.WRITEBACK_FIRST,
        max_slots=max_slots,
    )


def _run(
    schedule: TdmSchedule,
    ways: int,
    stream_length: int,
    slot_width: int,
    victim_start: int,
) -> SimReport:
    config = _witness_config(
        schedule,
        ways,
        slot_width,
        max_slots=20 * (ways + stream_length) + 1000,
    )
    traces = _witness_traces(ways, stream_length, config.line_size)
    return simulate(config, traces, start_cycles={0: victim_start})


@dataclass(frozen=True)
class StarvationWitnessResult:
    """Victim latencies for growing interferer streams, both schedules."""

    stream_lengths: Tuple[int, ...]
    multi_slot_latencies: Tuple[int, ...]
    one_slot_latencies: Tuple[int, ...]
    one_slot_bound_cycles: int

    @property
    def multi_slot_growth(self) -> bool:
        """Whether the multi-slot latency grows with the stream length."""
        pairs = zip(self.multi_slot_latencies, self.multi_slot_latencies[1:])
        return all(later > earlier for earlier, later in pairs)

    @property
    def one_slot_bounded(self) -> bool:
        """Whether every 1S-TDM latency is below the analytical bound."""
        return all(
            latency <= self.one_slot_bound_cycles
            for latency in self.one_slot_latencies
        )


def starvation_witness(
    stream_lengths: Sequence[int] = (50, 100, 200),
    ways: int = 4,
    slot_width: int = 50,
) -> StarvationWitnessResult:
    """Run the Figure 2 scenario at several interferer stream lengths.

    The multi-slot schedule is ``{c_ua, c_1, c_1}`` (the interferer owns
    two consecutive slots, enough to write back *and* re-occupy before
    the victim returns); the 1S-TDM control is ``{c_ua, c_1}``.
    """
    from repro.analysis.wcl import SharedPartitionParams, wcl_nss_cycles

    multi = TdmSchedule((0, 1, 1), slot_width)
    one_slot = TdmSchedule((0, 1), slot_width)
    multi_latencies: List[int] = []
    one_slot_latencies: List[int] = []
    for length in stream_lengths:
        # Let the interferer fill the set before the victim's request:
        # it completes at most two lines per period under either
        # schedule, so ways periods is a safe fill horizon.
        victim_start = ways * max(multi.period_cycles, one_slot.period_cycles)
        multi_report = _run(multi, ways, length, slot_width, victim_start)
        one_report = _run(one_slot, ways, length, slot_width, victim_start)
        multi_latencies.append(_victim_latency(multi_report))
        one_slot_latencies.append(_victim_latency(one_report))
    params = SharedPartitionParams(
        total_cores=2,
        sharers=2,
        ways=ways,
        partition_lines=ways,
        core_capacity_lines=16 * 4,
        slot_width=slot_width,
    )
    return StarvationWitnessResult(
        stream_lengths=tuple(stream_lengths),
        multi_slot_latencies=tuple(multi_latencies),
        one_slot_latencies=tuple(one_slot_latencies),
        one_slot_bound_cycles=wcl_nss_cycles(params),
    )


def _victim_latency(report: SimReport) -> int:
    """The victim's single-request latency (its observed WCL)."""
    victim = report.core_reports[0]
    if victim.outstanding_block is not None:
        # Starved past the slot cap: report the cycles it waited so far.
        return report.total_cycles
    return victim.observed_wcl
