"""repro — predictable sharing of last-level cache partitions.

A faithful Python reproduction of *"Predictable Sharing of Last-level
Cache Partitions for Multi-core Safety-critical Systems"* (Wu & Patel,
DAC 2022): the slot-accurate trace simulator of the paper's evaluation
platform, the worst-case latency analysis of Section 4 (Theorems 4.7
and 4.8), and the set sequencer of Section 4.5.

Quick start::

    from repro import (
        PartitionKind, SystemConfig, simulate,
        fig7_system, SyntheticWorkloadConfig, generate_disjoint_workload,
    )

    config = fig7_system(PartitionKind.SS)
    workload = SyntheticWorkloadConfig(num_requests=500, address_range_size=4096)
    traces = generate_disjoint_workload(workload, range(config.num_cores))
    report = simulate(config, traces)
    print("observed WCL:", report.observed_wcl(), "cycles")
"""

from repro.analysis.admission import (
    AdmissionPlan,
    PlatformSpec,
    TaskSpec,
    TaskVerdict,
    plan_admission,
)
from repro.analysis.distance import DistanceTracker, line_distance, tracker_from_events
from repro.analysis.interference import (
    RequestBreakdown,
    decompose_report,
    summarize,
    worst_request,
)
from repro.analysis.sensitivity import (
    SensitivityPoint,
    sweep_partition_lines,
    sweep_sharers,
    sweep_ways,
)
from repro.analysis.unbounded import StarvationWitnessResult, starvation_witness
from repro.analysis.verification import (
    BoundViolation,
    CoreBound,
    assert_bounds,
    derive_core_bounds,
    verify_bounds,
)
from repro.analysis.wcet import (
    TaskProfile,
    WcetBound,
    hybrid_wcet_bound,
    profile_task,
    sharing_cost_factor,
    static_wcet_bound,
)
from repro.analysis.wcl import (
    NssBreakdown,
    SharedPartitionParams,
    analytical_wcl_cycles,
    interference_factor,
    wcl_nss_breakdown,
    wcl_nss_cycles,
    wcl_nss_slots,
    wcl_private_cycles,
    wcl_private_slots,
    wcl_reduction_factor,
    wcl_ss_cycles,
    wcl_ss_slots,
)
from repro.bus.arbiter import ArbitrationPolicy
from repro.bus.schedule import TdmSchedule, distance, one_slot_tdm
from repro.common.errors import (
    AnalysisError,
    CampaignError,
    CheckpointError,
    ConfigurationError,
    GeometryError,
    InvariantViolation,
    PartitionError,
    ObservabilityError,
    ReproError,
    ResourceExceededError,
    ScheduleError,
    SimulationError,
    TaskHungError,
    TaskTimeoutError,
    TraceError,
)
from repro.common.types import AccessType, EntryState, TransactionKind
from repro.cpu.private_stack import PrivateStackConfig
from repro.experiments.configs import (
    PAPER_CORE_CAPACITY_LINES,
    build_system_for_notation,
    fig7_system,
    fig8_system,
)
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.fig8 import Fig8Result, run_fig8
from repro.llc.coloring import (
    ColorGeometry,
    ColoredAllocator,
    colored_allocator_for_partition,
    colors_of_partition,
    is_colorable,
)
from repro.llc.partition import (
    PartitionKind,
    PartitionMap,
    PartitionNotation,
    PartitionSpec,
)
from repro.mem.address import AddressGeometry, AddressRange
from repro.obs.collect import collect_metrics
from repro.obs.exporters import write_metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_all,
    registry_from_rows,
)
from repro.obs.tracing import JsonlTraceSink, trace_digest
from repro.robustness.checkpoint import (
    AutoCheckpointPolicy,
    clear_auto_checkpoints,
    default_checkpoint_path,
    install_auto_checkpoints,
    load_checkpoint,
    run_resumable,
    save_checkpoint,
)
from repro.robustness.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    install_fault_plan,
)
from repro.robustness.fuzz import (
    FuzzCase,
    FuzzCaseResult,
    FuzzReport,
    generate_cases,
    run_fuzz,
    run_fuzz_case,
)
from repro.robustness.invariants import InvariantMonitor, standard_invariants
from repro.robustness.oracle import OracleReport, OracleViolation, check_run
from repro.robustness.runner import (
    CampaignResult,
    CampaignRunner,
    RetryPolicy,
    RobustSweepResult,
    RunManifest,
    TaskOutcome,
    campaign_metrics,
    run_all_robust,
    sweep_seeds_robust,
)
from repro.robustness.shrink import (
    ReplayResult,
    ShrinkResult,
    load_artifact,
    replay_artifact,
    shrink_case,
    write_artifact,
)
from repro.sim.cache import (
    SimResultCache,
    active_result_cache,
    clear_result_cache,
    install_result_cache,
    result_cache_key,
)
from repro.sim.config import (
    PAPER_LINE_SIZE,
    PAPER_LLC_SETS,
    PAPER_LLC_WAYS,
    PAPER_SLOT_WIDTH,
    SystemConfig,
)
from repro.sim.export import (
    LatencyStats,
    core_latency_stats,
    latency_histogram,
    percentile,
    render_histogram,
    report_to_dict,
    write_events_jsonl,
    write_report_json,
    write_requests_csv,
)
from repro.sim.parallel import (
    PoolResult,
    TaskPool,
    effective_jobs,
    parallel_available,
    run_parallel,
)
from repro.sim.report import CoreReport, RequestRecord, SimReport
from repro.sim.simulator import Simulator, simulate
from repro.sim.sweeps import SweepResult, compare_configs, run_seed, sweep_seeds
from repro.sim.timeline import render_timeline
from repro.workloads.adversarial import conflict_storm_traces, pingpong_traces
from repro.workloads.phased import (
    Phase,
    PhaseKind,
    PhasedWorkloadConfig,
    control_task_config,
    generate_phased_trace,
    generate_phased_workload,
)
from repro.workloads.suites import SuiteSpec, get_suite, register_suite, suite_names
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_core_trace,
    generate_disjoint_workload,
)
from repro.workloads.trace import MemoryTrace, TraceRecord, read_trace, write_trace

__version__ = "1.1.0"

__all__ = [
    # analysis
    "AdmissionPlan",
    "PlatformSpec",
    "TaskSpec",
    "TaskVerdict",
    "plan_admission",
    "RequestBreakdown",
    "decompose_report",
    "summarize",
    "worst_request",
    "DistanceTracker",
    "line_distance",
    "tracker_from_events",
    "SensitivityPoint",
    "sweep_partition_lines",
    "sweep_sharers",
    "sweep_ways",
    "StarvationWitnessResult",
    "starvation_witness",
    "BoundViolation",
    "CoreBound",
    "assert_bounds",
    "derive_core_bounds",
    "verify_bounds",
    "TaskProfile",
    "WcetBound",
    "hybrid_wcet_bound",
    "profile_task",
    "sharing_cost_factor",
    "static_wcet_bound",
    "NssBreakdown",
    "SharedPartitionParams",
    "analytical_wcl_cycles",
    "interference_factor",
    "wcl_nss_breakdown",
    "wcl_nss_cycles",
    "wcl_nss_slots",
    "wcl_private_cycles",
    "wcl_private_slots",
    "wcl_reduction_factor",
    "wcl_ss_cycles",
    "wcl_ss_slots",
    # bus
    "ArbitrationPolicy",
    "TdmSchedule",
    "distance",
    "one_slot_tdm",
    # errors
    "AnalysisError",
    "CampaignError",
    "CheckpointError",
    "ConfigurationError",
    "GeometryError",
    "InvariantViolation",
    "ObservabilityError",
    "PartitionError",
    "ReproError",
    "ResourceExceededError",
    "ScheduleError",
    "SimulationError",
    "TaskHungError",
    "TaskTimeoutError",
    "TraceError",
    # types
    "AccessType",
    "EntryState",
    "TransactionKind",
    # observability
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTraceSink",
    "MetricsRegistry",
    "collect_metrics",
    "merge_all",
    "registry_from_rows",
    "trace_digest",
    "write_metrics",
    # components
    "PrivateStackConfig",
    "PartitionKind",
    "PartitionMap",
    "PartitionNotation",
    "PartitionSpec",
    "ColorGeometry",
    "ColoredAllocator",
    "colored_allocator_for_partition",
    "colors_of_partition",
    "is_colorable",
    "AddressGeometry",
    "AddressRange",
    # simulation
    "SystemConfig",
    "CoreReport",
    "RequestRecord",
    "SimReport",
    "SimResultCache",
    "active_result_cache",
    "clear_result_cache",
    "install_result_cache",
    "result_cache_key",
    "Simulator",
    "simulate",
    "render_timeline",
    "SweepResult",
    "compare_configs",
    "run_seed",
    "sweep_seeds",
    # parallel execution
    "PoolResult",
    "TaskPool",
    "effective_jobs",
    "parallel_available",
    "run_parallel",
    # robustness
    "InvariantMonitor",
    "standard_invariants",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "install_fault_plan",
    "CampaignResult",
    "CampaignRunner",
    "RetryPolicy",
    "RobustSweepResult",
    "RunManifest",
    "TaskOutcome",
    "campaign_metrics",
    "run_all_robust",
    "sweep_seeds_robust",
    "AutoCheckpointPolicy",
    "clear_auto_checkpoints",
    "default_checkpoint_path",
    "install_auto_checkpoints",
    "load_checkpoint",
    "run_resumable",
    "save_checkpoint",
    "OracleReport",
    "OracleViolation",
    "check_run",
    "FuzzCase",
    "FuzzCaseResult",
    "FuzzReport",
    "generate_cases",
    "run_fuzz",
    "run_fuzz_case",
    "ReplayResult",
    "ShrinkResult",
    "load_artifact",
    "replay_artifact",
    "shrink_case",
    "write_artifact",
    "LatencyStats",
    "core_latency_stats",
    "latency_histogram",
    "percentile",
    "render_histogram",
    "report_to_dict",
    "write_events_jsonl",
    "write_report_json",
    "write_requests_csv",
    "PAPER_LINE_SIZE",
    "PAPER_LLC_SETS",
    "PAPER_LLC_WAYS",
    "PAPER_SLOT_WIDTH",
    "PAPER_CORE_CAPACITY_LINES",
    # experiments
    "build_system_for_notation",
    "fig7_system",
    "fig8_system",
    "Fig7Result",
    "run_fig7",
    "Fig8Result",
    "run_fig8",
    # workloads
    "Phase",
    "PhaseKind",
    "PhasedWorkloadConfig",
    "control_task_config",
    "generate_phased_trace",
    "generate_phased_workload",
    "SuiteSpec",
    "get_suite",
    "register_suite",
    "suite_names",
    "conflict_storm_traces",
    "pingpong_traces",
    "SyntheticWorkloadConfig",
    "generate_core_trace",
    "generate_disjoint_workload",
    "MemoryTrace",
    "TraceRecord",
    "read_trace",
    "write_trace",
    "__version__",
]
