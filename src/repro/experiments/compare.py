"""Side-by-side configuration comparison on a common workload.

The question every deployment study asks: *for my workload, what do I
give up (WCL) and gain (throughput, capacity) by moving between
P / NSS / SS?*  This module runs one named workload suite across a list
of partition notations — same traces everywhere, per Section 5's
methodology — and reports execution time, observed and analytical WCL,
and LLC behaviour in one table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

from repro.analysis.verification import derive_core_bounds
from repro.common.errors import ConfigurationError
from repro.common.validation import require
from repro.experiments.configs import build_system_for_notation
from repro.experiments.tables import render_table
from repro.sim.simulator import simulate
from repro.workloads.suites import get_suite


@dataclass(frozen=True)
class CompareRow:
    """One configuration's results on the common workload."""

    notation: str
    makespan: int
    observed_wcl: int
    analytical_wcl: Optional[int]
    llc_hit_rate: float
    dram_reads: int
    dram_writes: int

    @property
    def bound_headroom(self) -> Optional[float]:
        """Analytical / observed WCL; ``None`` when unbounded or unused."""
        if self.analytical_wcl is None or self.observed_wcl == 0:
            return None
        return self.analytical_wcl / self.observed_wcl


@dataclass
class CompareResult:
    """All configurations on the same workload."""

    suite: str
    rows: List[CompareRow]
    #: Merged per-notation metrics (``with_metrics=True`` only), every
    #: series labelled ``config=<notation>``.
    metrics: Optional["MetricsRegistry"] = None

    def row(self, notation: str) -> CompareRow:
        """Look one configuration up."""
        for candidate in self.rows:
            if candidate.notation == notation:
                return candidate
        raise KeyError(notation)

    def fastest(self) -> CompareRow:
        """The configuration with the smallest makespan."""
        return min(self.rows, key=lambda row: row.makespan)

    def lowest_wcl(self) -> CompareRow:
        """The configuration with the smallest observed WCL."""
        return min(self.rows, key=lambda row: row.observed_wcl)

    def render(self) -> str:
        """The comparison as a text table."""
        return render_table(
            [
                "config",
                "makespan",
                "observed WCL",
                "analytical WCL",
                "hit rate",
                "DRAM R/W",
            ],
            [
                [
                    row.notation,
                    row.makespan,
                    row.observed_wcl,
                    row.analytical_wcl if row.analytical_wcl is not None else "∞",
                    f"{row.llc_hit_rate:.2f}",
                    f"{row.dram_reads}/{row.dram_writes}",
                ]
                for row in self.rows
            ],
            title=f"Configuration comparison on suite {self.suite!r}",
        )


def compare_notations(
    notations: Sequence[str],
    suite: str = "fig7",
    num_cores: int = 4,
    num_requests: int = 300,
    address_range: int = 4096,
    seed: int = 2022,
    jobs: int = 1,
    with_metrics: bool = False,
    engine: Optional[str] = None,
) -> CompareResult:
    """Run every notation against the same suite-built traces.

    With ``jobs > 1`` the per-notation simulations run in worker
    processes; rows come back in the caller's notation order, so the
    result equals a serial run.  With ``with_metrics=True`` each
    notation's report is distilled into a ``config``-labelled registry
    inside its task (workers ship picklable registries, not reports)
    and merged in notation order into ``result.metrics``.  ``engine``
    overrides :attr:`SystemConfig.engine` for every notation's run.
    """
    from repro.sim.parallel import parallel_available, run_parallel

    require(bool(notations), "need at least one notation", ConfigurationError)
    traces = get_suite(suite).build(
        num_cores=num_cores,
        num_requests=num_requests,
        address_range=address_range,
        seed=seed,
    )

    def one_row(
        notation: str,
    ) -> Tuple[CompareRow, Optional["MetricsRegistry"]]:
        config = build_system_for_notation(notation, num_cores=num_cores)
        report = simulate(config, traces, engine=engine)
        bounds = derive_core_bounds(config)
        finite = [b.cycles for b in bounds.values() if b.cycles is not None]
        row = CompareRow(
            notation=notation,
            makespan=report.makespan,
            observed_wcl=report.observed_wcl(),
            analytical_wcl=max(finite) if len(finite) == len(bounds) else None,
            llc_hit_rate=report.llc_stats.hit_rate,
            dram_reads=report.dram_reads,
            dram_writes=report.dram_writes,
        )
        registry = None
        if with_metrics:
            from repro.obs.collect import collect_metrics

            registry = collect_metrics(report, config.slot_width).relabel(
                config=notation
            )
        return row, registry

    if jobs > 1 and len(notations) > 1 and parallel_available():
        tasks = [
            (f"{index}-{notation}", lambda notation=notation: one_row(notation))
            for index, notation in enumerate(notations)
        ]
        outcomes = run_parallel(tasks, jobs=jobs)
    else:
        outcomes = [one_row(notation) for notation in notations]
    rows = [row for row, _ in outcomes]
    metrics = None
    if with_metrics:
        from repro.obs.metrics import merge_all

        metrics = merge_all(
            [registry for _, registry in outcomes if registry is not None]
        )
    return CompareResult(suite=suite, rows=rows, metrics=metrics)
