"""Figure 7: observed WCL of SS, NSS and P versus the analytical bounds.

Section 5.1: all configurations use a one-set partition to force as many
conflicts as possible; the observed WCL of every configuration must sit
under its analytical bound (5000 cycles for SS, 979 250 for NSS, 450
for P at the paper's parameters), with NSS observing a higher WCL than
SS because distance can increase (Observation 3).

The non-steered rows run through :func:`repro.sim.simulator.simulate`
and therefore honour an installed result cache (the CLI's ``--cache``);
the adversarially *steered* rows drive the :class:`Simulator` directly
and are always recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

from repro.analysis.wcl import analytical_wcl_cycles
from repro.experiments.configs import (
    PAPER_CORE_CAPACITY_LINES,
    fig7_system,
)
from repro.experiments.tables import render_table
from repro.llc.partition import PartitionKind, PartitionNotation
from repro.sim.report import SimReport
from repro.sim.simulator import simulate
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)

#: Byte ranges swept on the x-axis ("across all address ranges").
DEFAULT_ADDRESS_RANGES: Tuple[int, ...] = (1024, 2048, 4096, 8192, 16384)


@dataclass(frozen=True)
class Fig7Row:
    """One (configuration, address range) cell of Figure 7."""

    config: str
    address_range: int
    observed_wcl: int
    analytical_wcl: int
    #: Whether the run hit the slot cap before every trace finished.
    timed_out: bool = False
    #: Whether the run stopped with cores still holding an uncompleted
    #: request (the starvation signature).
    starved: bool = False

    @property
    def complete(self) -> bool:
        """Whether the underlying run finished and can carry evidence."""
        return not (self.timed_out or self.starved)

    @property
    def within_bound(self) -> bool:
        """Whether the observation respects the analytical bound.

        A broken run (timed out / starved cores) reports an observed
        WCL over only the requests that completed — a fully wedged run
        reports 0 — so it must FAIL the bound check rather than pass it
        vacuously.
        """
        return self.complete and self.observed_wcl <= self.analytical_wcl

    @property
    def slack(self) -> float:
        """Bound / observed (how much headroom the bound leaves)."""
        if self.observed_wcl == 0:
            return float("inf")
        return self.analytical_wcl / self.observed_wcl


@dataclass
class Fig7Result:
    """All rows of the Figure 7 reproduction."""

    rows: List[Fig7Row]
    #: Merged per-cell metrics (``run_fig7(with_metrics=True)`` only),
    #: every series labelled ``config=<notation>, range=<bytes>``.
    metrics: Optional["MetricsRegistry"] = None

    def for_config(self, config: str) -> List[Fig7Row]:
        """Rows of one configuration, by address range."""
        return [row for row in self.rows if row.config == config]

    def max_observed(self, config: str) -> int:
        """The configuration's observed WCL across all ranges."""
        return max((row.observed_wcl for row in self.for_config(config)), default=0)

    def all_within_bounds(self) -> bool:
        """The paper's headline check: every observation under its bound.

        False when any run is broken (timed out / starved) — such a row
        carries no WCL evidence and must not pass vacuously.
        """
        return all(row.within_bound for row in self.rows)

    def all_complete(self) -> bool:
        """Whether every cell's simulation ran to completion."""
        return all(row.complete for row in self.rows)

    def render(self) -> str:
        """The figure as a text table."""
        return render_table(
            headers=["config", "range(B)", "observed WCL", "analytical WCL", "ok"],
            rows=[
                [
                    row.config,
                    row.address_range,
                    row.observed_wcl,
                    row.analytical_wcl,
                    "yes"
                    if row.within_bound
                    else ("BROKEN" if not row.complete else "VIOLATED"),
                ]
                for row in self.rows
            ],
            title="Figure 7: observed vs analytical WCL (cycles)",
        )


#: The three Figure 7 configurations, in the paper's notation.
FIG7_CONFIGS: Tuple[str, ...] = ("SS(1,16,4)", "NSS(1,16,4)", "P(1,16)")


def run_fig7(
    address_ranges: Sequence[int] = DEFAULT_ADDRESS_RANGES,
    num_requests: int = 400,
    seed: int = 2022,
    adversarial: bool = False,
    checked: bool = False,
    jobs: int = 1,
    with_metrics: bool = False,
    engine: Optional[str] = None,
) -> Fig7Result:
    """Run the full Figure 7 sweep.

    Every configuration replays the *same* per-core address streams for
    a given range (Section 5: "a core issues the same memory addresses
    across different partitioned configurations"), guaranteed here
    because the workload seed never includes the configuration.

    With ``adversarial=True`` the shared configurations run with the
    max-distance oracle replacement and write-back-first arbitration
    (the tightness experiment's steering).  Under symmetric LRU storms
    the global LRU victim is almost always the requester's own line, so
    the unsteered sweep under-exercises cross-core interference;
    steering restores the paper's "NSS higher than SS across all
    address ranges" separation per range.

    With ``checked=True`` every simulation runs under the per-slot
    invariant monitor (:mod:`repro.robustness.invariants`) — slower,
    but any model-state corruption aborts the run with an
    :class:`~repro.common.errors.InvariantViolation` instead of
    polluting the figure.

    With ``jobs > 1`` the configuration × address-range grid of
    independent simulations runs in worker processes; rows come back in
    the same canonical (configuration, range) order, so the result is
    identical to a serial run.

    With ``with_metrics=True`` each cell's report is distilled into a
    :class:`~repro.obs.metrics.MetricsRegistry`
    (:func:`repro.obs.collect.collect_metrics`), relabelled with its
    ``config``/``range`` and merged into ``result.metrics``.  Cells are
    collected from the canonically ordered reports in the parent
    process, so ``--jobs N`` metrics are bit-identical to serial.

    ``engine`` overrides :attr:`SystemConfig.engine` for every cell
    (``"fast"`` or ``"reference"``); the fast engine's idle-slot
    jumps are report-identical, so the figure is the same either way.
    """
    import dataclasses

    from repro.sim.parallel import parallel_available, run_parallel

    cells: List[tuple] = []
    for notation_text in FIG7_CONFIGS:
        notation = PartitionNotation.parse(notation_text)
        steer = adversarial and notation.kind is not PartitionKind.P
        config = (
            _adversarial_system(notation) if steer else fig7_system(notation.kind)
        )
        if checked:
            config = dataclasses.replace(config, checked=True)
        bound = analytical_wcl_cycles(
            notation,
            total_cores=config.num_cores,
            slot_width=config.slot_width,
            core_capacity_lines=PAPER_CORE_CAPACITY_LINES,
        )
        for address_range in address_ranges:
            cells.append((notation_text, config, bound, address_range, steer))

    if jobs > 1 and len(cells) > 1 and parallel_available():
        tasks = [
            (
                f"{notation_text}/range-{address_range}",
                lambda config=config, address_range=address_range, steer=steer: (
                    _run_one(config, address_range, num_requests, seed, steer, engine)
                ),
            )
            for notation_text, config, bound, address_range, steer in cells
        ]
        reports = run_parallel(tasks, jobs=jobs)
    else:
        reports = [
            _run_one(config, address_range, num_requests, seed, steer, engine)
            for _, config, _, address_range, steer in cells
        ]

    rows = [
        Fig7Row(
            config=notation_text,
            address_range=address_range,
            observed_wcl=report.observed_wcl(),
            analytical_wcl=bound,
            timed_out=report.timed_out,
            starved=bool(report.starved_cores()),
        )
        for (notation_text, _, bound, address_range, _), report in zip(
            cells, reports
        )
    ]
    metrics = None
    if with_metrics:
        from repro.obs.collect import collect_metrics
        from repro.obs.metrics import merge_all

        metrics = merge_all(
            [
                collect_metrics(report, config.slot_width).relabel(
                    config=notation_text, range=address_range
                )
                for (notation_text, config, _, address_range, _), report in zip(
                    cells, reports
                )
            ]
        )
    return Fig7Result(rows=rows, metrics=metrics)


def _adversarial_system(notation: PartitionNotation):
    import dataclasses

    from repro.bus.arbiter import ArbitrationPolicy
    from repro.experiments.configs import build_system_for_notation

    config = build_system_for_notation(
        str(notation), num_cores=4, llc_policy="oracle"
    )
    return dataclasses.replace(
        config, arbitration=ArbitrationPolicy.WRITEBACK_FIRST
    )


def _run_one(
    config,
    address_range: int,
    num_requests: int,
    seed: int,
    steer: bool = False,
    engine: Optional[str] = None,
) -> SimReport:
    from repro.sim.simulator import Simulator

    workload = SyntheticWorkloadConfig(
        num_requests=num_requests,
        address_range_size=address_range,
        line_size=config.line_size,
        write_fraction=1.0,
        seed=seed,
    )
    traces = generate_disjoint_workload(workload, list(range(config.num_cores)))
    if not steer:
        return simulate(config, traces, engine=engine)
    from repro.experiments.tightness import install_adversarial_replacement

    sim = Simulator(config, traces, engine=engine)
    install_adversarial_replacement(sim)
    return sim.run()
