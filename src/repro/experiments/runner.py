"""One-shot reproduction runner: every experiment, one results directory.

``run_all`` executes the full evaluation — Figure 7, Figures 8a–8d, the
Section 4.1 witness, the analytical constants and the tightness probe —
and writes each artifact as a text table (plus a machine-readable
summary) under an output directory.  The CLI exposes it as
``repro-llc all --out results/``.

With a result cache installed (``repro-llc all --cache DIR``), the
simulation-backed artifacts (Figure 7's non-steered rows, Figures
8a–8d) replay cached reports byte-identically on repeat runs; the
analytical and adversarially-steered artifacts are cheap and always
recomputed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

from repro.analysis.unbounded import starvation_witness
from repro.common.fileio import Durability, persist_text
from repro.analysis.wcl import (
    SharedPartitionParams,
    wcl_nss_cycles,
    wcl_private_cycles,
    wcl_ss_cycles,
)
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import SUBFIGURES, run_fig8
from repro.experiments.isolation import run_isolation
from repro.experiments.tables import render_table
from repro.experiments.tightness import run_tightness


@dataclass
class ArtifactResult:
    """One regenerated artifact: its table text and headline checks."""

    name: str
    table: str
    checks: Dict[str, bool]
    #: The artifact's metrics (``with_metrics=True`` figure artifacts
    #: only), every series labelled ``artifact=<name>``.
    metrics: Optional["MetricsRegistry"] = None

    @property
    def passed(self) -> bool:
        """Whether every reproduction check held."""
        return all(self.checks.values())


@dataclass
class RunAllResult:
    """Everything ``run_all`` produced."""

    artifacts: List[ArtifactResult] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        """Whether every artifact's checks held."""
        return all(artifact.passed for artifact in self.artifacts)

    def merged_metrics(self) -> "MetricsRegistry":
        """All artifacts' metrics in one registry (artifact order).

        Per-artifact registries are disjoint (each is
        ``artifact``-labelled), so the merge is a pure union and any
        merge order yields identical rows.
        """
        from repro.obs.metrics import merge_all

        return merge_all(
            [
                artifact.metrics
                for artifact in self.artifacts
                if artifact.metrics is not None
            ]
        )

    def summary(self) -> str:
        """One line per artifact."""
        return "\n".join(
            f"{'PASS' if artifact.passed else 'FAIL'}  {artifact.name}"
            for artifact in self.artifacts
        )


def _paper_params() -> SharedPartitionParams:
    return SharedPartitionParams(
        total_cores=4,
        sharers=4,
        ways=16,
        partition_lines=16,
        core_capacity_lines=64,
        slot_width=50,
    )


def _constants_artifact() -> ArtifactResult:
    params = _paper_params()
    rows = [
        ["SS(1,16,4)", wcl_ss_cycles(params), 5_000],
        ["NSS(1,16,4)", wcl_nss_cycles(params), 979_250],
        ["P(1,16)", wcl_private_cycles(4, 50), 450],
    ]
    table = render_table(
        ["config", "computed", "paper"], rows, title="Section 5.1 constants"
    )
    return ArtifactResult(
        name="section-5.1-constants",
        table=table,
        checks={f"{name}-exact": computed == paper for name, computed, paper in rows},
    )


def _fig7_artifact(
    num_requests: int,
    jobs: int = 1,
    with_metrics: bool = False,
    engine: Optional[str] = None,
) -> ArtifactResult:
    result = run_fig7(
        num_requests=num_requests,
        jobs=jobs,
        with_metrics=with_metrics,
        engine=engine,
    )
    metrics = (
        result.metrics.relabel(artifact="figure-7")
        if result.metrics is not None
        else None
    )
    return ArtifactResult(
        name="figure-7",
        metrics=metrics,
        table=result.render(),
        checks={
            # all_within_bounds is False for broken (timed-out/starved)
            # runs; all-runs-complete makes that failure mode explicit
            # in the artifact summary instead of hiding behind a bound.
            "all-runs-complete": result.all_complete(),
            "all-within-bounds": result.all_within_bounds(),
            "nss-at-least-ss": result.max_observed("NSS(1,16,4)")
            >= result.max_observed("SS(1,16,4)"),
            "p-lowest": result.max_observed("P(1,16)")
            <= result.max_observed("SS(1,16,4)"),
        },
    )


def _fig8_artifact(
    subfigure: str,
    num_requests: int,
    jobs: int = 1,
    with_metrics: bool = False,
    engine: Optional[str] = None,
) -> ArtifactResult:
    result = run_fig8(
        subfigure,
        num_requests=num_requests,
        jobs=jobs,
        with_metrics=with_metrics,
        engine=engine,
    )
    ties = all(
        row.ss_cycles == row.nss_cycles == row.p_cycles
        for row in result.rows_with_fit()
    )
    # Short runner sweeps carry a little warmup noise at the largest
    # ranges; a 5% tolerance keeps the check about the *shape* (the
    # strict >= 1.0 variant runs in benchmarks/test_bench_fig8.py at
    # full trace length).
    wins = all(row.ss_speedup_vs_p >= 0.95 for row in result.rows_exceeding())
    average_wins = result.average_speedup_vs_p() > 1.0
    metrics = (
        result.metrics.relabel(artifact=f"figure-{subfigure}")
        if result.metrics is not None
        else None
    )
    return ArtifactResult(
        name=f"figure-{subfigure}",
        metrics=metrics,
        table=result.render()
        + f"\n\naverage SS speedup vs P: {result.average_speedup_vs_p():.2f}x",
        checks={
            "ties-below-partition": ties,
            "ss-not-worse-than-p-5pct": wins,
            "ss-wins-on-average": average_wins,
        },
    )


def _unbounded_artifact() -> ArtifactResult:
    witness = starvation_witness(stream_lengths=(50, 100, 200), ways=4)
    table = render_table(
        ["stream", "multi-slot", "1S-TDM"],
        [
            list(row)
            for row in zip(
                witness.stream_lengths,
                witness.multi_slot_latencies,
                witness.one_slot_latencies,
            )
        ],
        title="Section 4.1 witness (victim latency, cycles)",
    )
    return ArtifactResult(
        name="section-4.1-unbounded",
        table=table,
        checks={
            "multi-slot-grows": witness.multi_slot_growth,
            "one-slot-bounded": witness.one_slot_bounded,
        },
    )


def _tightness_artifact(repeats: int) -> ArtifactResult:
    result = run_tightness(repeats=repeats)
    return ArtifactResult(
        name="bound-tightness",
        table=result.render(),
        checks={
            "bounds-never-violated": all(
                row.observed_wcl <= row.bound for row in result.rows
            ),
            "steering-raises-wcl": all(
                result.row(config, True).observed_wcl
                >= result.row(config, False).observed_wcl
                for config in ("SS(1,16,4)", "NSS(1,16,4)")
            ),
        },
    )


def _isolation_artifact() -> ArtifactResult:
    result = run_isolation()
    return ArtifactResult(
        name="partial-sharing-isolation",
        table=result.render(),
        checks={
            "private-cores-isolated": result.private_cores_isolated(),
            "bounds-hold": result.bounds_hold(),
        },
    )


def artifact_steps(
    num_requests: int = 300,
    tightness_repeats: int = 25,
    jobs: int = 1,
    with_metrics: bool = False,
    engine: Optional[str] = None,
) -> List[Tuple[str, Callable[[], ArtifactResult]]]:
    """Every reproduction artifact as a ``(name, thunk)`` pair.

    The names are stable across runs — they key the crash-tolerant
    runner's manifest (:mod:`repro.robustness.runner`), so an
    interrupted campaign can tell which artifacts are already done.
    Each thunk returns the :class:`ArtifactResult` whose ``name``
    matches the pair's name.

    ``jobs`` parallelises the grid *inside* the figure artifacts; leave
    it at 1 when the campaign itself fans artifacts out across workers
    (``run_all_robust(jobs=N)``) so the process tree stays bounded.
    ``engine`` overrides :attr:`SystemConfig.engine` inside the figure
    artifacts (the scripted witnesses pin their own engine).
    """
    steps: List[Tuple[str, Callable[[], ArtifactResult]]] = [
        ("section-5.1-constants", _constants_artifact),
        (
            "figure-7",
            lambda: _fig7_artifact(num_requests, jobs, with_metrics, engine),
        ),
    ]
    steps.extend(
        (
            f"figure-{sub}",
            lambda sub=sub: _fig8_artifact(
                sub, num_requests, jobs, with_metrics, engine
            ),
        )
        for sub in sorted(SUBFIGURES)
    )
    steps.extend(
        [
            ("section-4.1-unbounded", _unbounded_artifact),
            ("bound-tightness", lambda: _tightness_artifact(tightness_repeats)),
            ("partial-sharing-isolation", _isolation_artifact),
        ]
    )
    return steps


def run_all(
    out_dir: Optional[Union[str, Path]] = None,
    num_requests: int = 300,
    tightness_repeats: int = 25,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    with_metrics: bool = False,
    engine: Optional[str] = None,
) -> RunAllResult:
    """Regenerate every artifact; optionally write them to ``out_dir``.

    This is the straight-line runner: one failure aborts everything
    after it.  ``repro-llc all`` uses the crash-tolerant wrapper
    (:func:`repro.robustness.runner.run_all_robust`) which adds
    timeouts, retries, quarantine and manifest-based resume on top of
    the same steps.  ``jobs`` parallelises the figure grids inside each
    artifact (the artifacts themselves run in order).
    """
    result = RunAllResult()
    for _, step in artifact_steps(
        num_requests, tightness_repeats, jobs, with_metrics, engine
    ):
        artifact = step()
        if progress is not None:
            progress(f"{artifact.name}: {'PASS' if artifact.passed else 'FAIL'}")
        result.artifacts.append(artifact)

    if out_dir is not None:
        target = Path(out_dir)
        target.mkdir(parents=True, exist_ok=True)
        for artifact in result.artifacts:
            persist_text(
                target / f"{artifact.name}.txt",
                artifact.table + "\n",
                site="artifact-table",
                durability=Durability.ESSENTIAL,
            )
        summary = {
            artifact.name: artifact.checks for artifact in result.artifacts
        }
        persist_text(
            target / "summary.json",
            json.dumps(summary, indent=2) + "\n",
            site="campaign-summary",
            durability=Durability.ESSENTIAL,
        )
        persist_text(
            target / "SUMMARY.txt",
            result.summary() + "\n",
            site="campaign-summary",
            durability=Durability.ESSENTIAL,
        )
    return result
