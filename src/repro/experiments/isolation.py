"""Isolation verification for mixed partition layouts.

The paper's envisioned deployment (Section 6) mixes partition kinds:
"certain tasks have their own partitions, but others share partitions".
For that to be certifiable, the private tasks must be *temporally
isolated* from whatever the sharing tasks do — their latencies must not
move at all when the sharers go from idle to a worst-case storm.

This experiment builds a 4-core platform where cores 0 and 1 share a
sequencer-ordered partition and cores 2 and 3 own private partitions,
then measures cores 2/3 under three sharer behaviours: idle, moderate,
and full conflict storm.  Reproduction criterion: the private cores'
per-request latencies are **bit-identical** across the three runs
(isolation), while the sharers stay within Theorem 4.8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.wcl import (
    SharedPartitionParams,
    wcl_private_cycles,
    wcl_ss_cycles,
)
from repro.common.types import CoreId
from repro.experiments.tables import render_table
from repro.llc.partition import PartitionSpec
from repro.sim.config import SystemConfig
from repro.sim.simulator import simulate
from repro.workloads.adversarial import conflict_storm_traces
from repro.workloads.synthetic import SyntheticWorkloadConfig, generate_core_trace
from repro.workloads.trace import MemoryTrace

#: Sharer load levels probed.
LOAD_LEVELS: Tuple[str, ...] = ("idle", "moderate", "storm")


def build_mixed_config(slot_width: int = 50) -> SystemConfig:
    """2 sharing cores + 2 private cores on the paper's LLC."""
    partitions = [
        PartitionSpec("shared", [0, 1], (0, 16), (0, 1), sequencer=True),
        PartitionSpec("private2", [2, 3, 4, 5], (0, 16), (2,)),
        PartitionSpec("private3", [6, 7, 8, 9], (0, 16), (3,)),
    ]
    return SystemConfig(
        num_cores=4,
        partitions=partitions,
        slot_width=slot_width,
    )


def _sharer_traces(level: str, seed: int) -> Dict[CoreId, MemoryTrace]:
    if level == "idle":
        return {0: MemoryTrace(name="idle0"), 1: MemoryTrace(name="idle1")}
    if level == "moderate":
        traces = {}
        for core in (0, 1):
            workload = SyntheticWorkloadConfig(
                num_requests=300,
                address_range_size=2048,
                write_fraction=0.5,
                seed=seed,
                range_stride=1 << 18,
            )
            traces[core] = generate_core_trace(workload, core)
        return traces
    if level == "storm":
        return conflict_storm_traces(
            cores=[0, 1], partition_sets=2, lines_per_core=24, repeats=30, seed=seed
        )
    raise KeyError(f"unknown load level {level!r}")


def _private_traces(seed: int) -> Dict[CoreId, MemoryTrace]:
    traces = {}
    for core in (2, 3):
        workload = SyntheticWorkloadConfig(
            num_requests=400,
            address_range_size=4096,
            write_fraction=1.0,
            seed=seed,
            range_stride=1 << 20,
        )
        traces[core] = generate_core_trace(workload, core)
    return traces


@dataclass
class IsolationResult:
    """Per-load-level results for the mixed layout."""

    #: level -> core -> sorted per-request latencies.
    private_latencies: Dict[str, Dict[CoreId, List[int]]]
    #: level -> core -> observed WCL.
    observed_wcl: Dict[str, Dict[CoreId, int]]
    private_bound: int
    shared_bound: int

    def private_cores_isolated(self) -> bool:
        """Whether cores 2/3 saw identical latencies at every load."""
        reference = self.private_latencies[LOAD_LEVELS[0]]
        return all(
            self.private_latencies[level] == reference
            for level in LOAD_LEVELS[1:]
        )

    def bounds_hold(self) -> bool:
        """Whether every observation respects its partition's bound."""
        for level in LOAD_LEVELS:
            for core, wcl in self.observed_wcl[level].items():
                bound = self.private_bound if core in (2, 3) else self.shared_bound
                if wcl > bound:
                    return False
        return True

    def render(self) -> str:
        """The experiment as a text table."""
        rows = []
        for level in LOAD_LEVELS:
            for core in sorted(self.observed_wcl[level]):
                bound = self.private_bound if core in (2, 3) else self.shared_bound
                rows.append(
                    [
                        level,
                        f"core {core} ({'private' if core in (2, 3) else 'shared'})",
                        self.observed_wcl[level][core],
                        bound,
                    ]
                )
        return render_table(
            ["sharer load", "core", "observed WCL", "bound"],
            rows,
            title="Isolation under partial sharing (cores 0-1 share, 2-3 private)",
        )


def run_isolation(seed: int = 2022) -> IsolationResult:
    """Run the three load levels and collect the private cores' view."""
    config = build_mixed_config()
    private = _private_traces(seed)
    private_latencies: Dict[str, Dict[CoreId, List[int]]] = {}
    observed: Dict[str, Dict[CoreId, int]] = {}
    for level in LOAD_LEVELS:
        traces: Dict[CoreId, MemoryTrace] = {}
        traces.update(_sharer_traces(level, seed))
        traces.update(private)
        report = simulate(config, traces)
        private_latencies[level] = {
            core: sorted(report.latencies(core)) for core in (2, 3)
        }
        observed[level] = {
            core: report.observed_wcl(core)
            for core in range(4)
            if report.core_reports[core].requests
        }
    shared_bound = wcl_ss_cycles(
        SharedPartitionParams(
            total_cores=4,
            sharers=2,
            ways=16,
            partition_lines=32,
            core_capacity_lines=64,
            slot_width=config.slot_width,
        )
    )
    return IsolationResult(
        private_latencies=private_latencies,
        observed_wcl=observed,
        private_bound=wcl_private_cycles(4, config.slot_width),
        shared_bound=shared_bound,
    )
