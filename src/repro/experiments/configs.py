"""Builders for the paper's platform configurations.

Section 5: "The L2 cache is a 4-way set-associative cache with 16 sets
and the L3 cache is a 16-way set-associative cache with 32 sets that can
be partitioned across the four cores.  The cache line size is 64-byte."

The builders translate the ``SS(s,w,n)`` / ``NSS(s,w,n)`` / ``P(s,w)``
notation into a physical carving of that LLC:

* ``SS``/``NSS`` — cores ``0..n-1`` share one partition at sets
  ``0..s-1`` × ways ``0..w-1``; any cores beyond ``n`` receive private
  partitions of the same shape in the following set rows.
* ``P`` — each core gets its own ``s × w`` partition in consecutive set
  rows.
"""

from __future__ import annotations

import dataclasses
from typing import List, Union

from repro.common.errors import ConfigurationError
from repro.common.validation import require
from repro.cpu.private_stack import PrivateStackConfig
from repro.llc.partition import PartitionKind, PartitionNotation, PartitionSpec
from repro.sim.config import (
    PAPER_LLC_SETS,
    PAPER_LLC_WAYS,
    PAPER_SLOT_WIDTH,
    SystemConfig,
)

#: The paper's per-core cache capacity ``m_cua``: the 4-way × 16-set L2.
PAPER_CORE_CAPACITY_LINES = 64


def _paper_stack() -> PrivateStackConfig:
    """The paper's private stack (Section 5 geometry)."""
    return PrivateStackConfig(l2_sets=16, l2_ways=4)


def build_system_for_notation(
    notation: Union[str, PartitionNotation],
    num_cores: int,
    llc_sets: int = PAPER_LLC_SETS,
    llc_ways: int = PAPER_LLC_WAYS,
    slot_width: int = PAPER_SLOT_WIDTH,
    llc_policy: str = "lru",
    seed: int = 1,
    max_slots: int = 2_000_000,
    record_events: bool = False,
) -> SystemConfig:
    """Build a :class:`SystemConfig` from a Section 5 notation string."""
    if isinstance(notation, str):
        notation = PartitionNotation.parse(notation)
    partitions = _partitions_for(notation, num_cores, llc_sets, llc_ways)
    return SystemConfig(
        num_cores=num_cores,
        partitions=partitions,
        slot_width=slot_width,
        llc_sets=llc_sets,
        llc_ways=llc_ways,
        llc_policy=llc_policy,
        stack=_paper_stack(),
        seed=seed,
        max_slots=max_slots,
        record_events=record_events,
    )


def _partitions_for(
    notation: PartitionNotation,
    num_cores: int,
    llc_sets: int,
    llc_ways: int,
) -> List[PartitionSpec]:
    s, w = notation.sets, notation.ways
    require(
        w <= llc_ways,
        f"{notation}: partition ways {w} exceed LLC ways {llc_ways}",
        ConfigurationError,
    )
    partitions: List[PartitionSpec] = []
    next_set = 0

    def take_sets(count: int, owner: str) -> List[int]:
        nonlocal next_set
        require(
            next_set + count <= llc_sets,
            f"{notation}: placing {owner} needs sets "
            f"{next_set}..{next_set + count - 1} but the LLC has {llc_sets}",
            ConfigurationError,
        )
        chosen = list(range(next_set, next_set + count))
        next_set += count
        return chosen

    if notation.kind is PartitionKind.P:
        for core in range(num_cores):
            partitions.append(
                PartitionSpec(
                    name=f"core{core}",
                    sets=take_sets(s, f"core {core}'s partition"),
                    way_range=(0, w),
                    cores=(core,),
                    sequencer=False,
                )
            )
        return partitions

    n = notation.cores
    require(
        n <= num_cores,
        f"{notation}: {n} sharers but the system has {num_cores} cores",
        ConfigurationError,
    )
    partitions.append(
        PartitionSpec(
            name="shared",
            sets=take_sets(s, "the shared partition"),
            way_range=(0, w),
            cores=tuple(range(n)),
            sequencer=notation.sequencer,
        )
    )
    for core in range(n, num_cores):
        partitions.append(
            PartitionSpec(
                name=f"core{core}",
                sets=take_sets(s, f"core {core}'s private partition"),
                way_range=(0, w),
                cores=(core,),
                sequencer=False,
            )
        )
    return partitions


def fig7_system(kind: PartitionKind, record_events: bool = False) -> SystemConfig:
    """The Figure 7 platform: 4 cores, 1-set partitions, 16 ways.

    "To exercise the worst-case, we enforce a partition size of one set
    for all configurations" (Section 5.1).
    """
    if kind is PartitionKind.P:
        notation = PartitionNotation(kind=kind, sets=1, ways=16, cores=1)
    else:
        notation = PartitionNotation(kind=kind, sets=1, ways=16, cores=4)
    return build_system_for_notation(
        notation, num_cores=4, record_events=record_events
    )


def fig8_system(
    kind: PartitionKind,
    num_cores: int,
    capacity_bytes: int,
    line_size: int = 64,
    llc_ways: int = PAPER_LLC_WAYS,
    seed: int = 1,
    self_writeback_in_slot: bool = False,
) -> SystemConfig:
    """A Figure 8 platform: fixed total partition capacity.

    ``SS``/``NSS`` share the whole capacity; ``P`` divides it equally
    (fixed associativity, Section 5.2), so each core's partition has
    ``capacity / (n · line_size · ways)`` sets.

    Unlike the WCL experiment, the execution-time experiment runs with
    buffered self write-backs (``self_writeback_in_slot=False``): a
    strict partition then pays the full write-back round trip on every
    conflict miss, which is the average-case cost of over-committed
    private partitions that Section 5.2 measures.
    """
    total_lines = capacity_bytes // line_size
    require(
        total_lines * line_size == capacity_bytes,
        f"capacity {capacity_bytes} is not a whole number of {line_size}B lines",
        ConfigurationError,
    )
    total_sets, remainder = divmod(total_lines, llc_ways)
    require(
        remainder == 0,
        f"capacity {capacity_bytes} is not a whole number of {llc_ways}-way sets",
        ConfigurationError,
    )
    if kind is PartitionKind.P:
        per_core_sets, remainder = divmod(total_sets, num_cores)
        require(
            remainder == 0 and per_core_sets > 0,
            f"capacity {capacity_bytes} cannot be divided equally into "
            f"{num_cores} {llc_ways}-way partitions",
            ConfigurationError,
        )
        notation = PartitionNotation(
            kind=kind, sets=per_core_sets, ways=llc_ways, cores=1
        )
    else:
        notation = PartitionNotation(
            kind=kind, sets=total_sets, ways=llc_ways, cores=num_cores
        )
    config = build_system_for_notation(notation, num_cores=num_cores, seed=seed)
    return dataclasses.replace(
        config, self_writeback_in_slot=self_writeback_in_slot
    )
