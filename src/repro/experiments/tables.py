"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table.

    Numbers are right-aligned, text left-aligned; floats are shown with
    two decimals.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    formatted: List[List[str]] = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def is_numeric(column: int) -> bool:
        return all(
            _looks_numeric(row[column]) for row in formatted
        ) and bool(formatted)

    numeric = [is_numeric(column) for column in range(len(headers))]

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for column, cell in enumerate(cells):
            if numeric[column]:
                parts.append(cell.rjust(widths[column]))
            else:
                parts.append(cell.ljust(widths[column]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in formatted)
    return "\n".join(lines)


def _looks_numeric(text: str) -> bool:
    try:
        float(text.replace("x", "").replace("%", ""))
        return True
    except ValueError:
        return False
