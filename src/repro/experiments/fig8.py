"""Figure 8: execution time at fixed total partition capacity.

Section 5.2 fixes a total LLC capacity (4096 B or 8192 B), sweeps the
address range, and compares three ways of using that capacity: all
cores sharing it with the set sequencer (SS), sharing best-effort
(NSS), or splitting it into equal private partitions (P).

Paper shape to reproduce:

* range ≤ partition size → all three configurations tie (the working
  set fits everywhere);
* range > partition → SS wins; the paper reports average speedups of
  1.34× (2-core/4096 B), 2.13× (2-core/8192 B), 1.10× (4-core/4096 B)
  and 1.02× (4-core/8192 B).

Workload interpretation.  The paper says only "random addresses within
various address ranges" with disjoint per-core ranges.  A fully
symmetric reading (every core sweeps the same range) makes sharing
capacity-neutral by construction — each core's fair share equals its
private partition — and no configuration can win, which contradicts the
published curves.  The mechanism the paper's introduction motivates
sharing with is *under-utilization*: a strict partition wastes capacity
a core does not use while starving one that needs more.  We therefore
grade the demands: core ``i`` draws from a range of ``max(range >> i,
1024)`` bytes.  Core 0 reproduces the x-axis; the lighter co-runners
leave shareable headroom, exactly the deployments Section 1 argues for.

Each grid point runs through :func:`repro.sim.simulator.simulate`, so
an installed result cache (the CLI's ``--cache``) replays previously
computed points byte-identically instead of simulating them again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

from repro.common.types import CoreId
from repro.experiments.configs import fig8_system
from repro.experiments.tables import render_table
from repro.llc.partition import PartitionKind
from repro.sim.simulator import simulate
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_core_trace,
)
from repro.workloads.trace import MemoryTrace

#: Smallest per-core footprint in the graded workload.
MIN_CORE_RANGE = 1024

#: Byte ranges swept per sub-figure.
DEFAULT_ADDRESS_RANGES: Tuple[int, ...] = (1024, 2048, 4096, 8192, 16384)

#: The four sub-figures: (cores, total partition capacity in bytes).
SUBFIGURES: Dict[str, Tuple[int, int]] = {
    "8a": (2, 4096),
    "8b": (2, 8192),
    "8c": (4, 4096),
    "8d": (4, 8192),
}


@dataclass(frozen=True)
class Fig8Row:
    """Execution times of the three configurations at one range."""

    subfigure: str
    num_cores: int
    capacity_bytes: int
    address_range: int
    ss_cycles: int
    nss_cycles: int
    p_cycles: int

    @property
    def ss_speedup_vs_p(self) -> float:
        """How much faster SS finishes than the private split."""
        return self.p_cycles / self.ss_cycles if self.ss_cycles else 0.0

    @property
    def ss_speedup_vs_nss(self) -> float:
        """How much faster SS finishes than the best-effort sharing."""
        return self.nss_cycles / self.ss_cycles if self.ss_cycles else 0.0


@dataclass
class Fig8Result:
    """One sub-figure's sweep."""

    subfigure: str
    num_cores: int
    capacity_bytes: int
    rows: List[Fig8Row]
    #: Merged per-cell metrics (``run_fig8(with_metrics=True)`` only),
    #: every series labelled ``config``/``range``/``subfigure``.
    metrics: Optional["MetricsRegistry"] = None

    @property
    def per_core_private_bytes(self) -> int:
        """Capacity each core gets under the P split."""
        return self.capacity_bytes // self.num_cores

    def average_speedup_vs_p(self) -> float:
        """Geometric-free average of SS-vs-P speedups (the paper's metric)."""
        speedups = [row.ss_speedup_vs_p for row in self.rows]
        return sum(speedups) / len(speedups) if speedups else 0.0

    def average_speedup_vs_nss(self) -> float:
        """Average SS-vs-NSS speedup across the sweep."""
        speedups = [row.ss_speedup_vs_nss for row in self.rows]
        return sum(speedups) / len(speedups) if speedups else 0.0

    def rows_with_fit(self) -> List[Fig8Row]:
        """Rows whose range fits the per-core private partition."""
        return [
            row
            for row in self.rows
            if row.address_range <= self.per_core_private_bytes
        ]

    def rows_exceeding(self) -> List[Fig8Row]:
        """Rows whose range exceeds the per-core private partition."""
        return [
            row
            for row in self.rows
            if row.address_range > self.per_core_private_bytes
        ]

    def render(self) -> str:
        """The sub-figure as a text table."""
        return render_table(
            headers=[
                "range(B)",
                "SS cycles",
                "NSS cycles",
                "P cycles",
                "SSvP",
                "SSvNSS",
            ],
            rows=[
                [
                    row.address_range,
                    row.ss_cycles,
                    row.nss_cycles,
                    row.p_cycles,
                    f"{row.ss_speedup_vs_p:.2f}x",
                    f"{row.ss_speedup_vs_nss:.2f}x",
                ]
                for row in self.rows
            ],
            title=(
                f"Figure {self.subfigure}: {self.num_cores}-core, "
                f"{self.capacity_bytes}B partition — execution time"
            ),
        )


def graded_workload(
    num_cores: int,
    address_range: int,
    num_requests: int,
    seed: int,
) -> Dict[CoreId, MemoryTrace]:
    """The graded Figure 8 workload: core ``i`` sweeps ``range >> i``.

    Per-core ranges stay disjoint (stride twice the largest range) and,
    as in Section 5, a core's address stream depends only on its seed
    and range — never on the partition configuration under test.
    """
    stride = 2 * address_range
    traces: Dict[CoreId, MemoryTrace] = {}
    for core in range(num_cores):
        core_range = max(address_range >> core, MIN_CORE_RANGE)
        workload = SyntheticWorkloadConfig(
            num_requests=num_requests,
            address_range_size=core_range,
            write_fraction=1.0,
            seed=seed,
            range_stride=stride,
        )
        traces[core] = generate_core_trace(workload, core)
    return traces


#: Canonical configuration order within one Figure 8 cell.
_FIG8_KINDS = (PartitionKind.SS, PartitionKind.NSS, PartitionKind.P)


def _run_cell(
    kind: PartitionKind,
    num_cores: int,
    capacity: int,
    address_range: int,
    num_requests: int,
    seed: int,
    with_metrics: bool = False,
    engine: Optional[str] = None,
) -> Tuple[int, Optional["MetricsRegistry"]]:
    """One (range, configuration) cell: makespan plus optional metrics.

    Traces are rebuilt from the seed inside the cell, so a cell is
    self-contained (parallel workers need no shared state) yet replays
    byte-identical addresses — the workload depends only on seed and
    range, never on the configuration.  With ``with_metrics=True`` the
    cell also distils its report into a relabelled registry (collected
    *inside* the cell so parallel workers ship plain picklable data,
    not the report).
    """
    traces = graded_workload(num_cores, address_range, num_requests, seed)
    config = fig8_system(kind, num_cores, capacity, seed=seed)
    report = simulate(config, traces, engine=engine)
    if not with_metrics:
        return report.makespan, None
    from repro.obs.collect import collect_metrics

    registry = collect_metrics(report, config.slot_width).relabel(
        config=kind.name, range=address_range
    )
    return report.makespan, registry


def run_fig8(
    subfigure: str,
    address_ranges: Sequence[int] = DEFAULT_ADDRESS_RANGES,
    num_requests: int = 2000,
    seed: int = 2022,
    jobs: int = 1,
    with_metrics: bool = False,
    engine: Optional[str] = None,
) -> Fig8Result:
    """Run one sub-figure (``"8a"`` .. ``"8d"``).

    With ``jobs > 1`` the range × configuration grid runs in worker
    processes (:mod:`repro.sim.parallel`); rows are assembled in
    canonical (range, SS/NSS/P) order either way, so the result is
    identical to a serial run.  With ``with_metrics=True`` each cell
    returns a relabelled registry alongside its makespan; the cells
    merge in canonical order into ``result.metrics``, so parallel
    metrics are bit-identical to serial too.  ``engine`` overrides
    :attr:`SystemConfig.engine` per cell (``"fast"``/``"reference"``);
    the figures are bit-identical under either engine.
    """
    from repro.sim.parallel import parallel_available, run_parallel

    if subfigure not in SUBFIGURES:
        raise KeyError(
            f"unknown sub-figure {subfigure!r}; choose from {sorted(SUBFIGURES)}"
        )
    num_cores, capacity = SUBFIGURES[subfigure]
    cells = [
        (address_range, kind)
        for address_range in address_ranges
        for kind in _FIG8_KINDS
    ]
    if jobs > 1 and len(cells) > 1 and parallel_available():
        tasks = [
            (
                f"range-{address_range}/{kind.name}",
                lambda address_range=address_range, kind=kind: _run_cell(
                    kind,
                    num_cores,
                    capacity,
                    address_range,
                    num_requests,
                    seed,
                    with_metrics,
                    engine,
                ),
            )
            for address_range, kind in cells
        ]
        outcomes = run_parallel(tasks, jobs=jobs)
    else:
        outcomes = [
            _run_cell(
                kind,
                num_cores,
                capacity,
                address_range,
                num_requests,
                seed,
                with_metrics,
                engine,
            )
            for address_range, kind in cells
        ]
    makespans = [makespan for makespan, _ in outcomes]
    metrics = None
    if with_metrics:
        from repro.obs.metrics import merge_all

        metrics = merge_all(
            [registry for _, registry in outcomes if registry is not None]
        ).relabel(subfigure=subfigure)
    cycles_by_cell: Dict[tuple, int] = {
        cell: makespan for cell, makespan in zip(cells, makespans)
    }
    rows = [
        Fig8Row(
            subfigure=subfigure,
            num_cores=num_cores,
            capacity_bytes=capacity,
            address_range=address_range,
            ss_cycles=cycles_by_cell[(address_range, PartitionKind.SS)],
            nss_cycles=cycles_by_cell[(address_range, PartitionKind.NSS)],
            p_cycles=cycles_by_cell[(address_range, PartitionKind.P)],
        )
        for address_range in address_ranges
    ]
    return Fig8Result(
        subfigure=subfigure,
        num_cores=num_cores,
        capacity_bytes=capacity,
        rows=rows,
        metrics=metrics,
    )
