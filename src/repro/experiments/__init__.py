"""Experiment harnesses reproducing the paper's evaluation (Section 5).

* :mod:`repro.experiments.configs` — builds the paper's platform
  configurations from the ``SS/NSS/P`` notation;
* :mod:`repro.experiments.fig7` — observed vs analytical WCL
  (Figure 7);
* :mod:`repro.experiments.fig8` — execution time at fixed total
  partition capacity (Figures 8a–8d);
* :mod:`repro.experiments.tables` — plain-text table rendering used by
  the benchmarks and the CLI.
"""

from repro.experiments.compare import CompareResult, CompareRow, compare_notations
from repro.experiments.configs import (
    PAPER_CORE_CAPACITY_LINES,
    build_system_for_notation,
    fig7_system,
    fig8_system,
)
from repro.experiments.fig7 import Fig7Result, Fig7Row, run_fig7
from repro.experiments.fig8 import Fig8Result, Fig8Row, run_fig8
from repro.experiments.tables import render_table

__all__ = [
    "CompareResult",
    "CompareRow",
    "compare_notations",
    "PAPER_CORE_CAPACITY_LINES",
    "build_system_for_notation",
    "fig7_system",
    "fig8_system",
    "Fig7Result",
    "Fig7Row",
    "run_fig7",
    "Fig8Result",
    "Fig8Row",
    "run_fig8",
    "render_table",
]
