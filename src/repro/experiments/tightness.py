"""Bound-tightness probe: how close can observation get to the bounds?

Random traffic sits far below the analytical WCLs (Figure 7 shows the
same).  This experiment steers the simulator toward the Theorem 4.7/4.8
critical instance:

* *adversarial replacement* — the LLC's oracle policy always victimises
  the line whose private owner is at the **largest distance**
  (Definition 4.2) from the core on the bus, maximising the slots until
  the entry can free (this is the "replacement policy that can select
  any of the cache lines" the analysis assumes, used maliciously);
* *write-back-first arbitration* — a core's request is always delayed
  behind its pending write-backs, the pattern of Figure 5's part (2);
* *conflict storm* — every access is a write to a distinct line of one
  set.

The result reports observed WCL, the analytical bound and the tightness
ratio for SS and NSS; the adversarial setup should close a visible part
of the gap relative to the unsteered storm.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.wcl import (
    SharedPartitionParams,
    wcl_nss_cycles,
    wcl_ss_cycles,
)
from repro.bus.arbiter import ArbitrationPolicy
from repro.bus.schedule import distance
from repro.experiments.configs import PAPER_CORE_CAPACITY_LINES, build_system_for_notation
from repro.experiments.tables import render_table
from repro.llc.partition import PartitionKind, PartitionNotation
from repro.sim.simulator import Simulator
from repro.workloads.adversarial import conflict_storm_traces


@dataclass(frozen=True)
class TightnessRow:
    """One configuration's tightness measurement."""

    config: str
    adversarial: bool
    observed_wcl: int
    bound: int

    @property
    def ratio(self) -> float:
        """Observed / bound (1.0 would be a tight bound)."""
        return self.observed_wcl / self.bound


@dataclass
class TightnessResult:
    """Tightness rows for the probed configurations."""

    rows: Sequence[TightnessRow]

    def row(self, config: str, adversarial: bool) -> TightnessRow:
        """Look one measurement up."""
        for candidate in self.rows:
            if candidate.config == config and candidate.adversarial == adversarial:
                return candidate
        raise KeyError((config, adversarial))

    def render(self) -> str:
        """The result as a text table."""
        return render_table(
            ["config", "steering", "observed WCL", "bound", "observed/bound"],
            [
                [
                    row.config,
                    "adversarial" if row.adversarial else "random-storm",
                    row.observed_wcl,
                    row.bound,
                    f"{row.ratio:.3f}",
                ]
                for row in self.rows
            ],
            title="Bound tightness: steered vs unsteered worst case",
        )


def install_adversarial_replacement(sim: Simulator) -> None:
    """Point every set's oracle policy at the max-distance chooser."""
    llc = sim.system.llc
    schedule = sim.system.schedule
    engine = sim.engine

    def chooser(candidates, set_index):
        requester = schedule.owner_of_slot(engine._slot)
        row = [llc.entry(set_index, way) for way in candidates]

        def badness(entry) -> int:
            if entry.block is None:
                return 0
            owners = llc.directory.owners_of(entry.block)
            foreign = [owner for owner in owners if owner != requester]
            if foreign:
                # The expensive case: a far-away owner must donate a
                # bus slot before the entry frees.
                return 2 + max(
                    distance(schedule, owner, requester) for owner in foreign
                )
            if owners:
                # Owned only by the requester: with the in-slot self
                # write-back this frees immediately — cheapest victim,
                # so the adversary avoids it.
                return 0
            # Unowned: frees instantly too, but at least destroys state.
            return 1

        worst = max(row, key=badness)
        return worst.way

    for set_index in range(llc.num_sets):
        llc.oracle_policy(set_index).set_chooser(chooser)


def _bound_for(notation: PartitionNotation, slot_width: int = 50) -> int:
    params = SharedPartitionParams(
        total_cores=4,
        sharers=notation.cores,
        ways=notation.ways,
        partition_lines=notation.sets * notation.ways,
        core_capacity_lines=PAPER_CORE_CAPACITY_LINES,
        slot_width=slot_width,
    )
    if notation.kind is PartitionKind.SS:
        return wcl_ss_cycles(params)
    return wcl_nss_cycles(params)


def _run_one(notation_text: str, adversarial: bool, repeats: int) -> TightnessRow:
    notation = PartitionNotation.parse(notation_text)
    config = build_system_for_notation(
        notation_text,
        num_cores=4,
        llc_policy="oracle" if adversarial else "lru",
        max_slots=3_000_000,
    )
    if adversarial:
        config = dataclasses.replace(
            config, arbitration=ArbitrationPolicy.WRITEBACK_FIRST
        )
    traces = conflict_storm_traces(
        cores=[0, 1, 2, 3],
        partition_sets=notation.sets,
        lines_per_core=24,
        repeats=repeats,
    )
    sim = Simulator(config, traces)
    if adversarial:
        install_adversarial_replacement(sim)
    report = sim.run()
    return TightnessRow(
        config=notation_text,
        adversarial=adversarial,
        observed_wcl=report.observed_bus_wcl(),
        bound=_bound_for(notation),
    )


def run_tightness(repeats: int = 40) -> TightnessResult:
    """Probe SS and NSS with and without adversarial steering."""
    rows = []
    for notation_text in ("SS(1,16,4)", "NSS(1,16,4)"):
        for adversarial in (False, True):
            rows.append(_run_one(notation_text, adversarial, repeats))
    return TightnessResult(rows=rows)
