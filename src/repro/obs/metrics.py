"""A low-overhead, deterministically mergeable metrics registry.

Three instrument kinds, chosen so that every one of them merges with an
associative, commutative operation — the property the parallel sweep
layer (:mod:`repro.sim.parallel`) relies on to make ``--jobs N`` output
bit-identical to a serial run regardless of worker completion order:

* :class:`Counter` — a monotonically increasing integer; merges by sum.
* :class:`Gauge` — a last-known level (occupancy high-water marks,
  rates, configuration echoes); merges by **max**, which is the only
  associative/commutative choice that preserves the "worst observed"
  reading the WCL experiments care about.
* :class:`Histogram` — fixed-width buckets keyed by their lower bound
  (the natural width is the TDM slot width, which buckets latencies by
  how many slots a request waited); merges by element-wise bucket sum
  plus min/max/sum of the observed values.  Bucket counts are
  *conserved*: the sum over buckets always equals the number of
  observations, before and after any merge.

A series is identified by ``(name, labels)`` with labels canonicalised
to a sorted tuple of string pairs, so iteration order of the registry —
and therefore every exporter's byte output — never depends on insertion
or merge order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.common.errors import ObservabilityError

#: Canonical label form: sorted ``(key, value)`` string pairs.
Labels = Tuple[Tuple[str, str], ...]

#: A series key: metric name plus canonical labels.
SeriesKey = Tuple[str, Labels]


def canonical_labels(labels: Mapping[str, object]) -> Labels:
    """Sort and stringify a label mapping (the series-identity form)."""
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def format_labels(labels: Labels) -> str:
    """Render canonical labels as ``k=v,k2=v2`` (empty string when none)."""
    return ",".join(f"{key}={value}" for key, value in labels)


@dataclass
class Counter:
    """A summable event count."""

    value: int = 0

    kind = "counter"

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative: counters only go up)."""
        if amount < 0:
            raise ObservabilityError(
                f"counter increment must be >= 0, got {amount}"
            )
        self.value += amount

    def merged(self, other: "Counter") -> "Counter":
        """Sum of the two counts."""
        return Counter(value=self.value + other.value)


@dataclass
class Gauge:
    """A level; merges by max (the worst observed reading wins)."""

    value: Union[int, float] = 0

    kind = "gauge"

    def set(self, value: Union[int, float]) -> None:
        """Record the current level."""
        self.value = value

    def merged(self, other: "Gauge") -> "Gauge":
        """The larger of the two readings."""
        return Gauge(value=max(self.value, other.value))


@dataclass
class Histogram:
    """Fixed-width bucket histogram with conserved counts.

    ``buckets`` maps a bucket's lower bound (a multiple of
    ``bucket_width``) to its count.  ``observe`` also tracks the sum,
    min and max of the raw values so exporters can report means and
    extremes without keeping samples.
    """

    bucket_width: int
    buckets: Dict[int, int] = field(default_factory=dict)
    count: int = 0
    value_sum: int = 0
    value_min: Optional[int] = None
    value_max: Optional[int] = None

    kind = "histogram"

    def __post_init__(self) -> None:
        if self.bucket_width <= 0:
            raise ObservabilityError(
                f"bucket_width must be positive, got {self.bucket_width}"
            )

    def observe(self, value: int) -> None:
        """Record one sample."""
        bucket = (value // self.bucket_width) * self.bucket_width
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.value_sum += value
        self.value_min = value if self.value_min is None else min(self.value_min, value)
        self.value_max = value if self.value_max is None else max(self.value_max, value)

    def observe_bucket(self, bucket_value: int, count: int) -> None:
        """Record ``count`` samples that all fall at ``bucket_value``.

        The bulk form the per-slot sampler uses: its occupancy arrays
        arrive as (value, count) pairs, not individual samples.
        """
        if count < 0:
            raise ObservabilityError(f"bucket count must be >= 0, got {count}")
        if count == 0:
            return
        bucket = (bucket_value // self.bucket_width) * self.bucket_width
        self.buckets[bucket] = self.buckets.get(bucket, 0) + count
        self.count += count
        self.value_sum += bucket_value * count
        self.value_min = (
            bucket_value
            if self.value_min is None
            else min(self.value_min, bucket_value)
        )
        self.value_max = (
            bucket_value
            if self.value_max is None
            else max(self.value_max, bucket_value)
        )

    @property
    def mean(self) -> float:
        """Mean of the observed values; 0.0 on an empty histogram."""
        return self.value_sum / self.count if self.count else 0.0

    def sorted_buckets(self) -> List[Tuple[int, int]]:
        """``(lower_bound, count)`` pairs in ascending bound order."""
        return sorted(self.buckets.items())

    def merged(self, other: "Histogram") -> "Histogram":
        """Element-wise bucket sum; widths must agree."""
        if self.bucket_width != other.bucket_width:
            raise ObservabilityError(
                f"cannot merge histograms of widths {self.bucket_width} "
                f"and {other.bucket_width}"
            )
        buckets = dict(self.buckets)
        for bound, count in other.buckets.items():
            buckets[bound] = buckets.get(bound, 0) + count
        mins = [m for m in (self.value_min, other.value_min) if m is not None]
        maxs = [m for m in (self.value_max, other.value_max) if m is not None]
        return Histogram(
            bucket_width=self.bucket_width,
            buckets=buckets,
            count=self.count + other.count,
            value_sum=self.value_sum + other.value_sum,
            value_min=min(mins) if mins else None,
            value_max=max(maxs) if maxs else None,
        )


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Holds every metric series of one run (or one merged campaign).

    The registry is the unit the sweep and campaign layers ship across
    process boundaries: it is plain picklable data, and
    :meth:`merged` / :func:`merge_all` recombine worker registries in
    canonical order so the aggregate never depends on completion order.
    """

    def __init__(self) -> None:
        self._series: Dict[SeriesKey, Metric] = {}

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[Tuple[SeriesKey, Metric]]:
        """Series in canonical (name, labels) order."""
        return iter(sorted(self._series.items()))

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create)
    # ------------------------------------------------------------------
    def _get_or_create(self, key: SeriesKey, factory, expected: type) -> Metric:
        metric = self._series.get(key)
        if metric is None:
            metric = factory()
            self._series[key] = metric
        elif not isinstance(metric, expected):
            raise ObservabilityError(
                f"series {key[0]!r}{{{format_labels(key[1])}}} is a "
                f"{metric.kind}, not a {expected.__name__.lower()}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        """The named counter, created on first use."""
        key = (name, canonical_labels(labels))
        return self._get_or_create(key, Counter, Counter)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The named gauge, created on first use."""
        key = (name, canonical_labels(labels))
        return self._get_or_create(key, Gauge, Gauge)

    def histogram(
        self, name: str, bucket_width: int, **labels: object
    ) -> Histogram:
        """The named histogram, created on first use.

        Asking for an existing series with a different ``bucket_width``
        is an error: a histogram's identity includes its bucketing.
        """
        key = (name, canonical_labels(labels))
        metric = self._get_or_create(
            key, lambda: Histogram(bucket_width=bucket_width), Histogram
        )
        if metric.bucket_width != bucket_width:
            raise ObservabilityError(
                f"histogram {name!r}{{{format_labels(key[1])}}} has bucket "
                f"width {metric.bucket_width}, not {bucket_width}"
            )
        return metric

    def get(self, name: str, **labels: object) -> Optional[Metric]:
        """Look a series up without creating it."""
        return self._series.get((name, canonical_labels(labels)))

    def names(self) -> List[str]:
        """Distinct metric names, sorted."""
        return sorted({name for name, _ in self._series})

    # ------------------------------------------------------------------
    # Merge / relabel
    # ------------------------------------------------------------------
    def merged(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """A new registry combining both operands.

        Associative and commutative: shared series combine per-kind
        (sum / max / bucket sum), disjoint series union.  Neither
        operand is mutated.
        """
        result = MetricsRegistry()
        result._series = dict(self._series)
        for key, metric in other._series.items():
            existing = result._series.get(key)
            if existing is None:
                result._series[key] = _copy_metric(metric)
            else:
                if existing.kind != metric.kind:
                    raise ObservabilityError(
                        f"cannot merge series {key[0]!r}"
                        f"{{{format_labels(key[1])}}}: "
                        f"{existing.kind} vs {metric.kind}"
                    )
                result._series[key] = existing.merged(metric)
        return result

    def relabel(self, **labels: object) -> "MetricsRegistry":
        """A copy with ``labels`` added to every series.

        Used by the sweep layers to scope each cell's metrics (e.g.
        ``config="SS(1,16,4)", range=1024``) before merging cells, so
        no two cells' series collide.  Overwriting an existing label
        key is refused — it would silently alias distinct series.
        """
        extra = canonical_labels(labels)
        result = MetricsRegistry()
        for (name, existing), metric in self._series.items():
            existing_keys = {key for key, _ in existing}
            clash = existing_keys & {key for key, _ in extra}
            if clash:
                raise ObservabilityError(
                    f"relabel would overwrite label(s) {sorted(clash)} "
                    f"on series {name!r}"
                )
            merged_labels = tuple(sorted(existing + extra))
            result._series[(name, merged_labels)] = _copy_metric(metric)
        return result

    # ------------------------------------------------------------------
    # Canonical row form (the exporters' single input shape)
    # ------------------------------------------------------------------
    def rows(self) -> List[dict]:
        """One plain dict per series, in canonical order.

        This is the comparison form the golden/property tests use: two
        registries are equivalent iff their rows are equal.
        """
        out: List[dict] = []
        for (name, labels), metric in self:
            row: dict = {
                "name": name,
                "labels": dict(labels),
                "type": metric.kind,
            }
            if isinstance(metric, Histogram):
                row.update(
                    bucket_width=metric.bucket_width,
                    buckets={str(k): v for k, v in metric.sorted_buckets()},
                    count=metric.count,
                    sum=metric.value_sum,
                    min=metric.value_min,
                    max=metric.value_max,
                )
            else:
                row["value"] = metric.value
            out.append(row)
        return out


def _copy_metric(metric: Metric) -> Metric:
    """Deep-enough copy so merge results never alias their operands."""
    if isinstance(metric, Counter):
        return Counter(value=metric.value)
    if isinstance(metric, Gauge):
        return Gauge(value=metric.value)
    return Histogram(
        bucket_width=metric.bucket_width,
        buckets=dict(metric.buckets),
        count=metric.count,
        value_sum=metric.value_sum,
        value_min=metric.value_min,
        value_max=metric.value_max,
    )


def registry_from_rows(rows: "List[dict]") -> MetricsRegistry:
    """Rebuild a registry from its canonical :meth:`MetricsRegistry.rows`.

    The exact inverse of ``rows()``: feeding the result back through
    ``rows()`` reproduces the input.  This is what lets a campaign
    manifest persist an artifact's metrics across a kill — the resumed
    run reconstructs the registry from the stored rows instead of
    re-running the artifact.
    """
    result = MetricsRegistry()
    for row in rows:
        key = (row["name"], canonical_labels(row["labels"]))
        if key in result._series:
            raise ObservabilityError(
                f"duplicate series {row['name']!r}"
                f"{{{format_labels(key[1])}}} in rows"
            )
        metric: Metric
        if row["type"] == "counter":
            metric = Counter(value=row["value"])
        elif row["type"] == "gauge":
            metric = Gauge(value=row["value"])
        elif row["type"] == "histogram":
            metric = Histogram(
                bucket_width=row["bucket_width"],
                buckets={int(bound): count for bound, count in row["buckets"].items()},
                count=row["count"],
                value_sum=row["sum"],
                value_min=row["min"],
                value_max=row["max"],
            )
        else:
            raise ObservabilityError(
                f"unknown metric type {row['type']!r} for series "
                f"{row['name']!r}"
            )
        result._series[key] = metric
    return result


def merge_all(registries: "List[MetricsRegistry]") -> MetricsRegistry:
    """Fold a list of registries into one (empty list → empty registry).

    The fold order is the caller's list order; because :meth:`merged`
    is associative and commutative, any reordering — in particular the
    completion order of a parallel sweep — yields the same rows.
    """
    result = MetricsRegistry()
    for registry in registries:
        result = result.merged(registry)
    return result
