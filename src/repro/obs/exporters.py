"""Metric exporters: JSONL, CSV, Prometheus text format, ASCII table.

Every exporter consumes the registry's canonical
:meth:`~repro.obs.metrics.MetricsRegistry.rows` form, so output bytes
depend only on the registry's content — never on insertion or merge
order.  :func:`write_metrics` picks the format from the path suffix
(``.jsonl`` / ``.csv`` / ``.prom``), which is what the CLI's
``--metrics PATH`` flag uses.
"""

from __future__ import annotations

import csv
import io
import json
import re
from pathlib import Path
from typing import Union

from repro.common.errors import ObservabilityError, PersistenceError
from repro.common.fileio import Durability, cleanup_stale_tmp, persist_text
from repro.obs.metrics import Histogram, MetricsRegistry, format_labels

#: Path suffix → exporter, the ``write_metrics`` dispatch table.
SUPPORTED_SUFFIXES = (".jsonl", ".csv", ".prom")


def metrics_to_jsonl(registry: MetricsRegistry) -> str:
    """One canonical JSON object per series (sorted keys, compact)."""
    return "".join(
        json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
        for row in registry.rows()
    )


def metrics_to_csv(registry: MetricsRegistry) -> str:
    """Long-form CSV: one row per scalar, one row per histogram bucket.

    Columns: ``name, labels, type, field, value``.  Histograms flatten
    to a ``bucket_<lower>`` row per bucket plus ``count``/``sum``/
    ``min``/``max`` summary rows, so the file loads straight into a
    dataframe without JSON parsing.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["name", "labels", "type", "field", "value"])
    for (name, labels), metric in registry:
        rendered = format_labels(labels)
        if isinstance(metric, Histogram):
            for bound, count in metric.sorted_buckets():
                writer.writerow(
                    [name, rendered, metric.kind, f"bucket_{bound}", count]
                )
            writer.writerow([name, rendered, metric.kind, "count", metric.count])
            writer.writerow([name, rendered, metric.kind, "sum", metric.value_sum])
            writer.writerow(
                [name, rendered, metric.kind, "min", metric.value_min]
            )
            writer.writerow(
                [name, rendered, metric.kind, "max", metric.value_max]
            )
        else:
            writer.writerow([name, rendered, metric.kind, "value", metric.value])
    return buffer.getvalue()


def _prom_name(name: str) -> str:
    """Sanitise a metric name for Prometheus (``repro_`` namespace)."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _prom_labels(labels, extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (version 0.0.4).

    Histograms emit the standard cumulative ``_bucket{le=...}`` series
    (upper bounds, ``+Inf`` last) plus ``_sum`` and ``_count``.
    """
    lines = []
    typed = set()
    for (name, labels), metric in registry:
        prom = _prom_name(name)
        if prom not in typed:
            lines.append(f"# TYPE {prom} {metric.kind}")
            typed.add(prom)
        if isinstance(metric, Histogram):
            cumulative = 0
            for bound, count in metric.sorted_buckets():
                cumulative += count
                le = 'le="%s"' % (bound + metric.bucket_width)
                lines.append(
                    f"{prom}_bucket{_prom_labels(labels, le)} {cumulative}"
                )
            inf = 'le="+Inf"'
            lines.append(
                f"{prom}_bucket{_prom_labels(labels, inf)} {metric.count}"
            )
            lines.append(f"{prom}_sum{_prom_labels(labels)} {metric.value_sum}")
            lines.append(f"{prom}_count{_prom_labels(labels)} {metric.count}")
        else:
            lines.append(f"{prom}{_prom_labels(labels)} {metric.value}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_metrics_table(registry: MetricsRegistry) -> str:
    """Human-readable summary, one aligned line per series."""
    rows = []
    for (name, labels), metric in registry:
        series = name + (
            "{" + format_labels(labels) + "}" if labels else ""
        )
        if isinstance(metric, Histogram):
            value = (
                f"count={metric.count} sum={metric.value_sum} "
                f"min={metric.value_min} max={metric.value_max} "
                f"mean={metric.mean:.1f}"
            )
        elif isinstance(metric.value, float):
            value = f"{metric.value:.4f}"
        else:
            value = str(metric.value)
        rows.append((series, metric.kind, value))
    if not rows:
        return "(no metrics)"
    name_width = max(len(series) for series, _, _ in rows)
    kind_width = max(len(kind) for _, kind, _ in rows)
    return "\n".join(
        f"{series:<{name_width}}  {kind:<{kind_width}}  {value}"
        for series, kind, value in rows
    )


_RENDERERS = {
    ".jsonl": metrics_to_jsonl,
    ".csv": metrics_to_csv,
    ".prom": metrics_to_prometheus,
}


def write_metrics(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    """Write ``registry`` to ``path``, format chosen by suffix.

    Raises :class:`~repro.common.errors.ObservabilityError` for an
    unsupported suffix or an unwritable path (e.g. a missing parent
    directory), so the CLI can fail with a clean message instead of a
    traceback.

    The write is crash-consistent (temp sibling + fsync + atomic
    rename): a campaign killed mid-export leaves either the previous
    complete export or the new one, never a truncated file that a
    scraper would misparse.  A stale ``.tmp`` sibling orphaned by an
    earlier crash is cleaned up first.
    """
    target = Path(path)
    renderer = _RENDERERS.get(target.suffix)
    if renderer is None:
        raise ObservabilityError(
            f"unsupported metrics format {target.suffix!r} for {target}; "
            f"use one of {', '.join(SUPPORTED_SUFFIXES)}"
        )
    cleanup_stale_tmp(target)
    try:
        # A --metrics export was explicitly requested: ESSENTIAL, so a
        # transient failure is retried and a persistent one is loud.
        persist_text(
            target,
            renderer(registry),
            site="metrics-export",
            durability=Durability.ESSENTIAL,
            mkdir=False,
        )
    except (OSError, PersistenceError) as exc:
        raise ObservabilityError(
            f"cannot write metrics to {target}: {exc}"
        ) from exc
    return target
