"""Build the metric catalogue of one simulation run.

:func:`collect_metrics` turns a finished
:class:`~repro.sim.report.SimReport` into a
:class:`~repro.obs.metrics.MetricsRegistry` covering every subsystem:

==========================  =================================================
prefix                      series
==========================  =================================================
``sim.*``                   total slots/cycles, makespan, timed-out flag
``core.*``                  per-core request counts, private hits, observed
                            (bus) WCL, finish time, bus attempts, end-to-end
                            and bus latency histograms (slot-width buckets)
``bus.*``                   per-core slot usage (request/writeback/idle) and
                            PRB-vs-PWB arbiter contention
``llc.*``                   accesses/hits/misses/evictions, hit rate,
                            back-invalidations, blocked slots, writeback
                            traffic
``seq.*``                   per-partition sequencer registrations, grants,
                            blocks, cancellations, QLT high-water mark
``pwb.*`` / ``prb.*``       write-back / request buffer occupancy (high-water
                            gauge always; full per-slot histograms when the
                            run sampled live with ``record_metrics=True``)
``dram.*``                  read/write traffic
==========================  =================================================

The registry is derived purely from the (deterministic) report plus the
optional live samples the engine attached, so collecting in a worker
process and merging in canonical order yields bytes identical to a
serial run — the property the golden and parallel-equivalence tests
pin down.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.sim.report import SimReport


def collect_metrics(report: SimReport, slot_width: int) -> MetricsRegistry:
    """The full metric catalogue of one run.

    ``slot_width`` sets the latency histogram bucket width (one bucket
    per TDM slot of waiting), matching the unit of the analytical WCL
    bounds.
    """
    registry = MetricsRegistry()

    registry.counter("sim.slots.total").inc(report.total_slots)
    registry.counter("sim.cycles.total").inc(report.total_cycles)
    registry.gauge("sim.makespan").set(report.makespan)
    registry.gauge("sim.timed_out").set(int(report.timed_out))

    for core, core_report in sorted(report.core_reports.items()):
        registry.counter("core.requests", core=core).inc(core_report.requests)
        registry.counter("core.private_hits", core=core).inc(
            core_report.private_hits
        )
        registry.gauge("core.observed_wcl", core=core).set(
            core_report.observed_wcl
        )
        registry.gauge("core.observed_bus_wcl", core=core).set(
            core_report.observed_bus_wcl
        )
        registry.gauge("core.max_bus_attempts", core=core).set(
            core_report.max_bus_attempts
        )
        registry.gauge("core.finish_time", core=core).set(
            core_report.finish_time if core_report.finish_time is not None else -1
        )
        registry.gauge("core.starved", core=core).set(
            int(core_report.outstanding_block is not None)
        )

    for record in report.requests:
        registry.histogram("core.latency", slot_width, core=record.core).observe(
            record.latency
        )
        registry.histogram(
            "core.bus_latency", slot_width, core=record.core
        ).observe(record.bus_latency)
        if record.served_by_hit:
            registry.counter("core.llc_hits", core=record.core).inc()

    for core, usage in sorted(report.slot_usage.items()):
        for kind, count in sorted(usage.items()):
            registry.counter("bus.slots", core=core, kind=kind).inc(count)
    for core, contended in sorted(report.arbiter_contended.items()):
        registry.counter("bus.arbiter.contended", core=core).inc(contended)

    llc = report.llc_stats
    registry.counter("llc.accesses").inc(llc.accesses)
    registry.counter("llc.hits").inc(llc.hits)
    registry.counter("llc.misses").inc(llc.misses)
    registry.counter("llc.fills").inc(llc.fills)
    registry.counter("llc.evictions").inc(llc.evictions)
    registry.counter("llc.dirty_evictions").inc(llc.dirty_evictions)
    registry.counter("llc.invalidations").inc(llc.invalidations)
    registry.counter("llc.back_invalidations").inc(report.llc_back_invalidations)
    registry.counter("llc.blocked_slots").inc(report.llc_blocked_slots)
    registry.gauge("llc.hit_rate").set(llc.hit_rate)

    for name, stats in sorted(report.sequencer_stats.items()):
        registry.counter("seq.registrations", partition=name).inc(
            stats.registrations
        )
        registry.counter("seq.completions", partition=name).inc(stats.completions)
        registry.counter("seq.cancellations", partition=name).inc(
            stats.cancellations
        )
        registry.counter("seq.head_grants", partition=name).inc(stats.head_grants)
        registry.counter("seq.blocked_not_head", partition=name).inc(
            stats.blocked_not_head
        )
        registry.gauge("seq.max_active_sets", partition=name).set(
            stats.max_active_sets
        )

    for core, occupancy in sorted(report.pwb_max_occupancy.items()):
        registry.gauge("pwb.max_occupancy", core=core).set(occupancy)

    registry.counter("dram.reads").inc(report.dram_reads)
    registry.counter("dram.writes").inc(report.dram_writes)

    if report.metrics is not None:
        registry = registry.merged(report.metrics)
    return registry
