"""Per-slot occupancy sampling for the slot engine.

The end-of-run report already carries totals and high-water marks; what
it cannot show is the *distribution over time* — how full each core's
PWB sat slot by slot, whether the PRB was occupied, how many sets the
sequencer was tracking while the run struggled.  Those are exactly the
occupancy signals the delay analyses (Theorems 4.7/4.8, and the
parallelism-aware accounting in PAPERS.md) attribute interference to.

:class:`SlotSampler` is the engine's hot-path instrument, so it is
deliberately primitive: one preallocated integer array per resource,
one ``len()`` and one list-index increment per resource per slot, no
allocation, no dict hashing.  The arrays become proper
:class:`~repro.obs.metrics.Histogram` series only once, at report-build
time.  When ``SystemConfig.record_metrics`` is off the engine holds no
sampler at all — the run loop pays a single ``is not None`` test.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.sim.system import System

#: Occupancies at or above this land in the final (overflow) bin.
OCCUPANCY_CAP = 64


class SlotSampler:
    """Samples buffer and sequencer occupancy once per bus slot."""

    def __init__(self, system: "System") -> None:
        self._pwbs = sorted(system.pwbs.items())
        self._prbs = sorted(system.prbs.items())
        self._sequencers = sorted(system.sequencers.items())
        bins = OCCUPANCY_CAP + 1
        self._pwb_occ: List[List[int]] = [[0] * bins for _ in self._pwbs]
        self._prb_occ: List[List[int]] = [[0, 0] for _ in self._prbs]
        self._seq_occ: List[List[int]] = [[0] * bins for _ in self._sequencers]
        self.slots_sampled = 0

    def sample(self) -> None:
        """Record one slot's occupancies (called by the engine per slot)."""
        cap = OCCUPANCY_CAP
        for occ, (_, pwb) in zip(self._pwb_occ, self._pwbs):
            depth = len(pwb)
            occ[depth if depth < cap else cap] += 1
        for occ, (_, prb) in zip(self._prb_occ, self._prbs):
            occ[0 if prb.is_empty else 1] += 1
        for occ, (_, sequencer) in zip(self._seq_occ, self._sequencers):
            depth = sequencer.qlt.active_entries
            occ[depth if depth < cap else cap] += 1
        self.slots_sampled += 1

    def registry(self) -> MetricsRegistry:
        """The samples as unit-width occupancy histograms."""
        registry = MetricsRegistry()
        self._fill(registry, "pwb.occupancy", "core", self._pwb_occ, self._pwbs)
        self._fill(registry, "prb.occupancy", "core", self._prb_occ, self._prbs)
        self._fill(
            registry,
            "seq.active_sets",
            "partition",
            self._seq_occ,
            self._sequencers,
        )
        return registry

    @staticmethod
    def _fill(
        registry: MetricsRegistry,
        name: str,
        label_key: str,
        arrays: List[List[int]],
        resources: List[Tuple[object, object]],
    ) -> None:
        for occ, (resource_id, _) in zip(arrays, resources):
            histogram = registry.histogram(name, 1, **{label_key: resource_id})
            for depth, count in enumerate(occ):
                histogram.observe_bucket(depth, count)
