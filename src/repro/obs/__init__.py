"""repro.obs — observability: metrics registry, collectors, exporters, tracing.

The layer that explains *why* an observed WCL sits where it does: a
deterministically mergeable metrics registry
(:mod:`repro.obs.metrics`), the per-run catalogue collector
(:mod:`repro.obs.collect`), JSONL/CSV/Prometheus exporters
(:mod:`repro.obs.exporters`), the canonical structured-trace encoding
and streaming sink (:mod:`repro.obs.tracing`) and the engine's per-slot
occupancy sampler (:mod:`repro.obs.recorder`).

See ``docs/OBSERVABILITY.md`` for the metric catalogue and format
specs.
"""

from repro.obs.collect import collect_metrics
from repro.obs.exporters import (
    SUPPORTED_SUFFIXES,
    metrics_to_csv,
    metrics_to_jsonl,
    metrics_to_prometheus,
    render_metrics_table,
    write_metrics,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    canonical_labels,
    format_labels,
    merge_all,
)
from repro.obs.recorder import OCCUPANCY_CAP, SlotSampler
from repro.obs.tracing import (
    TRACE_SCHEMA_VERSION,
    JsonlTraceSink,
    event_json_line,
    event_to_dict,
    trace_digest,
    trace_to_jsonl_bytes,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "canonical_labels",
    "format_labels",
    "merge_all",
    "collect_metrics",
    "SUPPORTED_SUFFIXES",
    "metrics_to_csv",
    "metrics_to_jsonl",
    "metrics_to_prometheus",
    "render_metrics_table",
    "write_metrics",
    "OCCUPANCY_CAP",
    "SlotSampler",
    "TRACE_SCHEMA_VERSION",
    "JsonlTraceSink",
    "event_json_line",
    "event_to_dict",
    "trace_digest",
    "trace_to_jsonl_bytes",
]
