"""Structured tracing: a canonical, streamable view of the event log.

The engine's :class:`~repro.sim.events.SimEvent` stream already encodes
every observable action; this module gives it a stable wire format:

* :func:`event_to_dict` / :func:`event_json_line` — the canonical
  JSON encoding (sorted keys, compact separators, schema-versioned),
  byte-stable across runs of the same seed.  The golden-trace
  regression tests pin these bytes.
* :class:`JsonlTraceSink` — a streaming sink attachable to a live
  engine (``Simulator(..., event_sink=sink)`` or
  ``engine.attach_event_sink``): events are written as they happen,
  with optional kind/core filters, without buffering the whole log in
  memory.  This is how long campaigns trace without the ``O(events)``
  footprint of ``record_events=True``.
* :func:`trace_to_jsonl_bytes` / :func:`trace_digest` — batch encoding
  and a SHA-256 fingerprint of a recorded event sequence, the compact
  form regression suites compare.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import IO, Iterable, Optional, Sequence, Set, Union

from repro.common.errors import ObservabilityError
from repro.common.fileio import check_io, guarded_write
from repro.common.types import CoreId
from repro.sim.events import EventKind, SimEvent

#: Bumped on any change to the per-event dict layout.
TRACE_SCHEMA_VERSION = 1


def event_to_dict(event: SimEvent) -> dict:
    """The canonical plain-data form of one event."""
    return {
        "cycle": event.cycle,
        "slot": event.slot,
        "kind": event.kind.value,
        "core": event.core,
        "block": event.block,
        "set": event.set_index,
        "way": event.way,
        "detail": event.detail,
    }


def event_json_line(event: SimEvent) -> str:
    """One canonical JSON line (sorted keys, compact, no trailing \\n)."""
    return json.dumps(event_to_dict(event), sort_keys=True, separators=(",", ":"))


def trace_to_jsonl_bytes(events: Iterable[SimEvent]) -> bytes:
    """The whole event sequence as canonical JSONL bytes."""
    return "".join(event_json_line(event) + "\n" for event in events).encode()


def trace_digest(events: Iterable[SimEvent]) -> str:
    """SHA-256 of the canonical JSONL encoding.

    A one-line fingerprint for regression suites: two runs emit the
    same digest iff their traces are byte-identical.
    """
    digest = hashlib.sha256()
    for event in events:
        digest.update((event_json_line(event) + "\n").encode())
    return digest.hexdigest()


class JsonlTraceSink:
    """Streams events to a JSONL file (or open handle) as they occur.

    Use as a callable (the :class:`~repro.sim.events.EventLog` sink
    protocol) and as a context manager::

        with JsonlTraceSink(path, kinds={EventKind.RESPONSE}) as sink:
            Simulator(config, traces, event_sink=sink).run()

    Parameters
    ----------
    target:
        A path (opened for writing; parent directory must exist) or an
        already-open text handle (not closed by the sink).
    kinds / cores:
        Optional filters; an event must match both to be written.
    """

    def __init__(
        self,
        target: Union[str, Path, IO[str]],
        kinds: Optional[Iterable[EventKind]] = None,
        cores: Optional[Sequence[CoreId]] = None,
    ) -> None:
        self._owns_handle = isinstance(target, (str, Path))
        self._path: Optional[Path] = None
        if self._owns_handle:
            path = Path(target)
            self._path = path
            try:
                check_io("open", path, "trace-sink")
                self._handle: IO[str] = open(path, "w")
            except OSError as exc:
                raise ObservabilityError(
                    f"cannot open trace sink {path}: {exc}"
                ) from exc
        else:
            self._handle = target
        self._kinds: Optional[Set[EventKind]] = set(kinds) if kinds else None
        self._cores: Optional[Set[CoreId]] = set(cores) if cores else None
        #: Events written so far (after filtering).
        self.emitted = 0
        self._closed = False

    def __call__(self, event: SimEvent) -> None:
        """The sink protocol: receive one event from the stream."""
        if self._closed:
            raise ObservabilityError("trace sink is closed")
        if self._kinds is not None and event.kind not in self._kinds:
            return
        if self._cores is not None and event.core not in self._cores:
            return
        where = self._path if self._path is not None else Path("<stream>")
        try:
            guarded_write(
                self._handle, event_json_line(event) + "\n", where, "trace-sink"
            )
        except OSError as exc:
            # Traces are requested output — ESSENTIAL: fail loudly with
            # the offending path rather than silently dropping events.
            raise ObservabilityError(
                f"cannot write trace event to {where}: {exc}; free disk "
                "space or choose another trace path and re-run"
            ) from exc
        self.emitted += 1

    def checkpoint_state(self) -> dict:
        """The resume state recorded inside a simulation checkpoint.

        Flushes the file and returns the byte offset and emitted count;
        :meth:`reopen` uses them to truncate a partially-written trace
        back to exactly the checkpointed prefix.  Only sinks that own a
        real file can participate — a caller-supplied handle cannot be
        reopened, truncated and repositioned on the sink's behalf.
        """
        from repro.common.errors import CheckpointError

        if self._closed:
            raise CheckpointError("cannot checkpoint a closed trace sink")
        if not self._owns_handle:
            raise CheckpointError(
                "cannot checkpoint a trace sink wrapping a caller-supplied "
                "handle; pass a file path so the sink can be reopened on "
                "resume"
            )
        self._handle.flush()
        return {"offset": self._handle.tell(), "emitted": self.emitted}

    @classmethod
    def reopen(
        cls,
        target: Union[str, Path],
        state: dict,
        kinds: Optional[Iterable[EventKind]] = None,
        cores: Optional[Sequence[CoreId]] = None,
    ) -> "JsonlTraceSink":
        """Rebuild a sink from a checkpoint's recorded state.

        Truncates ``target`` to the checkpointed offset (discarding any
        lines written after the checkpoint, which the resumed run will
        re-emit) and continues appending from there, so the final trace
        file is byte-identical to an uninterrupted run's.
        """
        from repro.common.errors import CheckpointError

        path = Path(target)
        try:
            handle = open(path, "r+")
            handle.truncate(state["offset"])
            handle.seek(state["offset"])
        except (OSError, KeyError, TypeError) as exc:
            raise CheckpointError(
                f"cannot reopen trace sink {path} from checkpoint state "
                f"{state!r}: {exc}"
            ) from exc
        sink = cls.__new__(cls)
        sink._owns_handle = True
        sink._path = path
        sink._handle = handle
        sink._kinds = set(kinds) if kinds else None
        sink._cores = set(cores) if cores else None
        sink.emitted = state["emitted"]
        sink._closed = False
        return sink

    def close(self) -> None:
        """Flush and (for path targets) close the underlying file."""
        if self._closed:
            return
        self._closed = True
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
