"""LLC partition specifications.

A partition is a rectangular region of the physical LLC: a list of
physical set indices crossed with a contiguous way range.  A core's
block addresses *fold* onto the partition's sets (``block mod s``), so a
partition with fewer sets behaves exactly like a smaller cache — this is
what makes the paper's ``P(s, w)`` versus ``SS/NSS(s, w, n)``
comparisons at fixed total capacity meaningful (Section 5.2).

The paper's configuration notation (Section 5, "Notation") is parsed by
:class:`PartitionNotation`:

* ``SS(s,w,n)`` — one partition of ``s`` sets × ``w`` ways shared by
  ``n`` cores, with the set sequencer;
* ``NSS(s,w,n)`` — the same, arbitrated best-effort (no sequencer);
* ``P(s,w)`` — a distinct ``s`` × ``w`` partition per core.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from repro.common.errors import PartitionError
from repro.common.types import BlockAddress, CoreId
from repro.common.validation import require, require_positive


@dataclass(frozen=True)
class PartitionSpec:
    """One LLC partition: physical placement plus its sharer set.

    Parameters
    ----------
    name:
        Identifier used in reports (for example ``"shared"`` or
        ``"core2"``).
    sets:
        Physical set indices belonging to the partition, in fold order:
        a block folds to ``sets[block % len(sets)]``.
    way_range:
        Half-open physical way interval ``[lo, hi)``.
    cores:
        Cores allowed to allocate in this partition.
    sequencer:
        Whether the set sequencer orders misses in this partition
        (``SS``) or contention is resolved best-effort (``NSS``).
        Irrelevant when a single core owns the partition.
    """

    name: str
    sets: Tuple[int, ...]
    way_range: Tuple[int, int]
    cores: Tuple[CoreId, ...]
    sequencer: bool = False

    def __init__(
        self,
        name: str,
        sets: Sequence[int],
        way_range: Tuple[int, int],
        cores: Sequence[CoreId],
        sequencer: bool = False,
    ) -> None:
        sets_tuple = tuple(sets)
        cores_tuple = tuple(cores)
        require(bool(name), "partition name must be non-empty", PartitionError)
        require(bool(sets_tuple), f"partition {name!r} has no sets", PartitionError)
        require(
            len(set(sets_tuple)) == len(sets_tuple),
            f"partition {name!r} lists a set twice: {sets_tuple}",
            PartitionError,
        )
        require(
            all(s >= 0 for s in sets_tuple),
            f"partition {name!r} has a negative set index",
            PartitionError,
        )
        lo, hi = way_range
        require(
            0 <= lo < hi,
            f"partition {name!r} way range must satisfy 0 <= lo < hi, got [{lo}, {hi})",
            PartitionError,
        )
        require(bool(cores_tuple), f"partition {name!r} has no cores", PartitionError)
        require(
            len(set(cores_tuple)) == len(cores_tuple),
            f"partition {name!r} lists a core twice: {cores_tuple}",
            PartitionError,
        )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "sets", sets_tuple)
        object.__setattr__(self, "way_range", (lo, hi))
        object.__setattr__(self, "cores", cores_tuple)
        object.__setattr__(self, "sequencer", sequencer)

    @property
    def num_sets(self) -> int:
        """Partition set count ``s``."""
        return len(self.sets)

    @property
    def num_ways(self) -> int:
        """Partition associativity ``w``."""
        return self.way_range[1] - self.way_range[0]

    @property
    def num_cores(self) -> int:
        """Number of sharers ``n``."""
        return len(self.cores)

    @property
    def is_shared(self) -> bool:
        """Whether more than one core allocates here."""
        return len(self.cores) > 1

    @property
    def capacity_lines(self) -> int:
        """Total lines the partition can hold (``M`` in Theorem 4.7)."""
        return self.num_sets * self.num_ways

    def capacity_bytes(self, line_size: int) -> int:
        """Partition capacity in bytes."""
        return self.capacity_lines * line_size

    def fold_set(self, block: BlockAddress) -> int:
        """Physical set a block folds onto within this partition."""
        return self.sets[block % self.num_sets]

    def ways(self) -> range:
        """Physical way indices of the partition."""
        return range(self.way_range[0], self.way_range[1])

    def cells(self) -> Iterable[Tuple[int, int]]:
        """All ``(physical set, physical way)`` cells of the partition."""
        for set_index in self.sets:
            for way in self.ways():
                yield (set_index, way)


class PartitionMap:
    """The complete carving of one LLC into disjoint partitions.

    Validates, against a physical geometry, that partitions fit, do not
    overlap, and that every core belongs to exactly one partition.
    """

    def __init__(
        self,
        partitions: Sequence[PartitionSpec],
        num_sets: int,
        num_ways: int,
    ) -> None:
        require_positive(num_sets, "num_sets", PartitionError)
        require_positive(num_ways, "num_ways", PartitionError)
        require(bool(partitions), "partition map must be non-empty", PartitionError)
        names = [p.name for p in partitions]
        require(
            len(set(names)) == len(names),
            f"duplicate partition names: {names}",
            PartitionError,
        )
        seen_cells: Dict[Tuple[int, int], str] = {}
        by_core: Dict[CoreId, PartitionSpec] = {}
        for part in partitions:
            require(
                max(part.sets) < num_sets,
                f"partition {part.name!r} references set {max(part.sets)} "
                f"but the LLC has only {num_sets} sets",
                PartitionError,
            )
            require(
                part.way_range[1] <= num_ways,
                f"partition {part.name!r} references way {part.way_range[1] - 1} "
                f"but the LLC has only {num_ways} ways",
                PartitionError,
            )
            for cell in part.cells():
                other = seen_cells.get(cell)
                require(
                    other is None,
                    f"partitions {other!r} and {part.name!r} overlap at "
                    f"(set {cell[0]}, way {cell[1]})",
                    PartitionError,
                )
                seen_cells[cell] = part.name
            for core in part.cores:
                require(
                    core not in by_core,
                    f"core {core} assigned to both {by_core.get(core) and by_core[core].name!r} "
                    f"and {part.name!r}",
                    PartitionError,
                )
                by_core[core] = part
        self.partitions: Tuple[PartitionSpec, ...] = tuple(partitions)
        self.num_sets = num_sets
        self.num_ways = num_ways
        self._by_core = by_core

    @property
    def cores(self) -> Tuple[CoreId, ...]:
        """All cores with a partition, ascending."""
        return tuple(sorted(self._by_core))

    def partition_of(self, core: CoreId) -> PartitionSpec:
        """The partition ``core`` allocates into."""
        part = self._by_core.get(core)
        if part is None:
            raise PartitionError(f"core {core} has no LLC partition")
        return part

    def has_core(self, core: CoreId) -> bool:
        """Whether ``core`` is mapped to some partition."""
        return core in self._by_core

    def utilized_lines(self) -> int:
        """Total LLC lines covered by some partition."""
        return sum(p.capacity_lines for p in self.partitions)


class PartitionKind(enum.Enum):
    """The three configuration families of the paper's evaluation."""

    SS = "SS"
    NSS = "NSS"
    P = "P"


_NOTATION_RE = re.compile(
    r"^\s*(SS|NSS|P)\s*\(\s*(\d+)\s*,\s*(\d+)\s*(?:,\s*(\d+)\s*)?\)\s*$",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class PartitionNotation:
    """Parsed form of the paper's ``SS(s,w,n)`` / ``NSS(s,w,n)`` / ``P(s,w)``."""

    kind: PartitionKind
    sets: int
    ways: int
    cores: int = 1

    @classmethod
    def parse(cls, text: str) -> "PartitionNotation":
        """Parse the Section 5 notation.

        >>> PartitionNotation.parse("SS(1,16,4)")
        PartitionNotation(kind=<PartitionKind.SS: 'SS'>, sets=1, ways=16, cores=4)
        """
        match = _NOTATION_RE.match(text)
        if not match:
            raise PartitionError(
                f"cannot parse partition notation {text!r}; expected "
                "SS(s,w,n), NSS(s,w,n) or P(s,w)"
            )
        kind_text, s_text, w_text, n_text = match.groups()
        kind = PartitionKind[kind_text.upper()]
        sets = int(s_text)
        ways = int(w_text)
        require_positive(sets, "sets", PartitionError)
        require_positive(ways, "ways", PartitionError)
        if kind is PartitionKind.P:
            require(
                n_text is None,
                f"P(s,w) takes two arguments, got {text!r}",
                PartitionError,
            )
            return cls(kind=kind, sets=sets, ways=ways, cores=1)
        require(
            n_text is not None,
            f"{kind.value}(s,w,n) needs a core count, got {text!r}",
            PartitionError,
        )
        cores = int(n_text)  # type: ignore[arg-type]
        require_positive(cores, "cores", PartitionError)
        return cls(kind=kind, sets=sets, ways=ways, cores=cores)

    @property
    def sequencer(self) -> bool:
        """Whether this notation enables the set sequencer."""
        return self.kind is PartitionKind.SS

    def __str__(self) -> str:
        if self.kind is PartitionKind.P:
            return f"P({self.sets},{self.ways})"
        return f"{self.kind.value}({self.sets},{self.ways},{self.cores})"
