"""The shared, partitioned, inclusive last-level cache (L3).

This package models exactly the LLC of the paper's system model
(Section 3): set-associative, inclusive of the private L2s, carved into
partitions that are either private to one core (``P``) or shared by a
group of cores with (``SS``) or without (``NSS``) the set sequencer.
"""

from repro.llc.partition import (
    PartitionSpec,
    PartitionMap,
    PartitionNotation,
    PartitionKind,
)
from repro.llc.coloring import (
    ColorGeometry,
    ColoredAllocator,
    colored_allocator_for_partition,
    colors_of_partition,
    is_colorable,
)
from repro.llc.directory import OwnerDirectory
from repro.llc.llc import PartitionedLlc, LlcEntry, VictimInfo

__all__ = [
    "PartitionSpec",
    "PartitionMap",
    "PartitionNotation",
    "PartitionKind",
    "OwnerDirectory",
    "ColorGeometry",
    "ColoredAllocator",
    "colored_allocator_for_partition",
    "colors_of_partition",
    "is_colorable",
    "PartitionedLlc",
    "LlcEntry",
    "VictimInfo",
]
