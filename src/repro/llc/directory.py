"""Private-owner directory for the inclusive LLC.

The LLC must know, for every resident line, which cores hold a private
copy: evicting such a line forces the owners to evict it from their
private caches too (the inclusive property, Section 3), and a *dirty*
private copy costs the owner a bus slot for the write-back — the
mechanism the whole worst-case analysis revolves around.

The directory is exact (a sharer set per block), which is how the
simulator both enforces inclusivity and implements the "distance of the
core caching line l" bookkeeping of Definition 4.2.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.common.errors import SimulationError
from repro.common.types import BlockAddress, CoreId


class OwnerDirectory:
    """Tracks which cores privately cache each LLC-resident block."""

    def __init__(self) -> None:
        self._owners: Dict[BlockAddress, Set[CoreId]] = {}

    def owners_of(self, block: BlockAddress) -> FrozenSet[CoreId]:
        """Cores currently holding a private copy of ``block``."""
        return frozenset(self._owners.get(block, ()))

    def has_owner(self, block: BlockAddress) -> bool:
        """Whether any core privately caches ``block``."""
        return bool(self._owners.get(block))

    def is_owner(self, core: CoreId, block: BlockAddress) -> bool:
        """Whether ``core`` privately caches ``block``."""
        return core in self._owners.get(block, ())

    def add_owner(self, core: CoreId, block: BlockAddress) -> None:
        """Record that ``core`` now privately caches ``block``."""
        self._owners.setdefault(block, set()).add(core)

    def remove_owner(self, core: CoreId, block: BlockAddress) -> None:
        """Record that ``core`` no longer privately caches ``block``.

        Idempotent: dropping a non-owner is allowed because a clean
        private eviction may race with an LLC-side invalidation.
        """
        owners = self._owners.get(block)
        if owners is None:
            return
        owners.discard(core)
        if not owners:
            del self._owners[block]

    def drop_block(self, block: BlockAddress) -> FrozenSet[CoreId]:
        """Forget ``block`` entirely; returns the owners it had."""
        owners = self._owners.pop(block, set())
        return frozenset(owners)

    def require_no_owner(self, block: BlockAddress) -> None:
        """Assert the inclusivity invariant before dropping a block."""
        owners = self._owners.get(block)
        if owners:
            raise SimulationError(
                f"block {block:#x} still privately cached by cores "
                f"{sorted(owners)}; inclusive LLC cannot drop it"
            )

    def tracked_blocks(self) -> int:
        """Number of blocks with at least one private owner."""
        return len(self._owners)
