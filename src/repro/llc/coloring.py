"""Page coloring: the software face of set partitioning.

The simulator's partitions fold a core's block addresses onto the
partition's sets directly, which models what an OS achieves physically
through **page coloring** (as deployed by Jailhouse, Bao and friends):
a page's *color* is the part of its physical page number that selects
LLC sets, so by restricting which colors a task's pages come from, the
OS confines the task to a subset of sets with zero hardware support.

This module computes the color geometry of an LLC, checks which colors
a :class:`~repro.llc.partition.PartitionSpec` occupies (a partition is
*colorable* only if it owns whole colors), and builds the
color-constrained physical address streams that make a simulated trace
land exactly inside a partition — the bridge between "fold the address"
modelling and deployable coloring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Set, Tuple

from repro.common.errors import PartitionError
from repro.common.types import Address
from repro.common.validation import require, require_power_of_two
from repro.llc.partition import PartitionSpec


@dataclass(frozen=True)
class ColorGeometry:
    """How page numbers map to LLC set colors.

    With ``line_size``-byte lines, ``num_sets`` sets and
    ``page_size``-byte pages, a page covers ``page_size / line_size``
    consecutive sets, so there are ``num_sets · line_size / page_size``
    distinct colors (at least 1); pages of the same color cover the
    same sets.
    """

    line_size: int
    num_sets: int
    page_size: int

    def __post_init__(self) -> None:
        require_power_of_two(self.line_size, "line_size", PartitionError)
        require_power_of_two(self.num_sets, "num_sets", PartitionError)
        require_power_of_two(self.page_size, "page_size", PartitionError)
        require(
            self.page_size >= self.line_size,
            f"page size ({self.page_size}) must cover at least one line "
            f"({self.line_size})",
            PartitionError,
        )

    @property
    def sets_per_page(self) -> int:
        """Consecutive sets one page spans (capped at the set count)."""
        return min(self.page_size // self.line_size, self.num_sets)

    @property
    def num_colors(self) -> int:
        """Distinct page colors the LLC exposes."""
        return max(1, self.num_sets // self.sets_per_page)

    def color_of_page(self, page_number: int) -> int:
        """The color of physical page ``page_number``."""
        if page_number < 0:
            raise PartitionError(f"page number must be >= 0, got {page_number}")
        return page_number % self.num_colors

    def color_of_address(self, address: Address) -> int:
        """The color of the page containing ``address``."""
        if address < 0:
            raise PartitionError(f"address must be >= 0, got {address}")
        return self.color_of_page(address // self.page_size)

    def sets_of_color(self, color: int) -> range:
        """The consecutive set indices a color covers."""
        if not 0 <= color < self.num_colors:
            raise PartitionError(
                f"color {color} out of range 0..{self.num_colors - 1}"
            )
        return range(color * self.sets_per_page, (color + 1) * self.sets_per_page)


def colors_of_partition(
    partition: PartitionSpec, geometry: ColorGeometry
) -> Set[int]:
    """The page colors whose sets the partition covers *completely*.

    Raises :class:`PartitionError` when the partition slices through a
    color (owns some but not all of its sets): such a partition cannot
    be realised with page coloring — software would have no page
    granularity to express it.
    """
    covered = set(partition.sets)
    colors: Set[int] = set()
    for color in range(geometry.num_colors):
        color_sets = set(geometry.sets_of_color(color))
        if color_sets <= covered:
            colors.add(color)
            covered -= color_sets
        elif color_sets & covered:
            raise PartitionError(
                f"partition {partition.name!r} covers only part of color "
                f"{color} (sets {sorted(color_sets & covered)} of "
                f"{sorted(color_sets)}); it cannot be realised by page "
                "coloring"
            )
    if covered:
        raise PartitionError(
            f"partition {partition.name!r} has sets {sorted(covered)} outside "
            "every color — geometry mismatch"
        )
    return colors


def is_colorable(partition: PartitionSpec, geometry: ColorGeometry) -> bool:
    """Whether the partition consists of whole colors."""
    try:
        colors_of_partition(partition, geometry)
        return True
    except PartitionError:
        return False


@dataclass(frozen=True)
class ColoredAllocator:
    """Hands out physical pages of the given colors, in color order.

    Models the OS page allocator of a coloring hypervisor: the i-th
    allocated page is the i-th physical page whose color belongs to the
    partition.  :meth:`page` is deterministic, so traces built on top
    replay identically.
    """

    geometry: ColorGeometry
    colors: Tuple[int, ...]

    def __init__(self, geometry: ColorGeometry, colors: Sequence[int]) -> None:
        color_tuple = tuple(sorted(set(colors)))
        require(bool(color_tuple), "allocator needs at least one color", PartitionError)
        for color in color_tuple:
            require(
                0 <= color < geometry.num_colors,
                f"color {color} out of range 0..{geometry.num_colors - 1}",
                PartitionError,
            )
        object.__setattr__(self, "geometry", geometry)
        object.__setattr__(self, "colors", color_tuple)

    def page(self, index: int) -> int:
        """Physical page number of the ``index``-th allocated page."""
        if index < 0:
            raise PartitionError(f"page index must be >= 0, got {index}")
        stripe, offset = divmod(index, len(self.colors))
        return stripe * self.geometry.num_colors + self.colors[offset]

    def translate(self, virtual_address: Address) -> Address:
        """Map a zero-based contiguous virtual address into colored pages.

        The virtual space ``[0, N)`` is laid out page by page onto the
        allocator's colored physical pages, exactly like an OS giving a
        task a contiguous heap from a colored free list.
        """
        if virtual_address < 0:
            raise PartitionError(
                f"virtual address must be >= 0, got {virtual_address}"
            )
        page_index, offset = divmod(virtual_address, self.geometry.page_size)
        return self.page(page_index) * self.geometry.page_size + offset


def colored_allocator_for_partition(
    partition: PartitionSpec, geometry: ColorGeometry
) -> ColoredAllocator:
    """An allocator restricted to the partition's colors."""
    return ColoredAllocator(geometry, sorted(colors_of_partition(partition, geometry)))
