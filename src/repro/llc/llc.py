"""The partitioned, inclusive last-level cache.

This is the model's centrepiece: a set-associative L3 whose entries move
through the ``FREE`` → ``VALID`` → ``PENDING_EVICT`` lifecycle described
in DESIGN.md.  The slow path that the paper analyses arises entirely
from one rule encoded here: **an entry whose line is cached dirty by
some core cannot be reused until that core spends one of its own bus
slots writing the line back** (the inclusive property of Section 3).

The LLC itself is passive: it never advances time.  The slot engine
(:mod:`repro.sim.engine`) drives it — looking lines up, asking for
victims, invalidating private copies, and delivering write-backs — and
the LLC keeps the storage, the replacement state, the owner directory
and the statistics consistent.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.cache.replacement import OraclePolicy, ReplacementPolicy, make_policy
from repro.cache.stats import CacheStats
from repro.common.errors import GeometryError, SimulationError
from repro.common.types import BlockAddress, CoreId, EntryState
from repro.common.validation import require_positive
from repro.llc.directory import OwnerDirectory
from repro.llc.partition import PartitionMap, PartitionSpec


@dataclass
class LlcEntry:
    """One way of one physical LLC set."""

    set_index: int
    way: int
    state: EntryState = EntryState.FREE
    block: Optional[BlockAddress] = None
    dirty: bool = False
    #: When ``PENDING_EVICT``: dirty private owners whose write-back the
    #: entry still waits for.
    pending_writers: Set[CoreId] = field(default_factory=set)

    @property
    def is_free(self) -> bool:
        return self.state is EntryState.FREE

    @property
    def is_valid(self) -> bool:
        return self.state is EntryState.VALID

    @property
    def is_pending(self) -> bool:
        return self.state is EntryState.PENDING_EVICT


@dataclass(frozen=True)
class VictimInfo:
    """A victim chosen for eviction, before its effects are applied."""

    set_index: int
    way: int
    block: BlockAddress
    owners: FrozenSet[CoreId]
    llc_dirty: bool


class WritebackOutcome(enum.Enum):
    """What a write-back arriving at the LLC did."""

    #: It was the last awaited write-back of a ``PENDING_EVICT`` entry;
    #: the entry is now ``FREE``.
    FREED = "freed"
    #: A write-back for a still-``PENDING_EVICT`` entry that awaits
    #: further owners (only possible with shared data).
    PENDING = "pending"
    #: It updated a ``VALID`` entry (an ordinary capacity write-back).
    UPDATED = "updated"
    #: The block is no longer resident; the data went straight to DRAM.
    DRAM_DIRECT = "dram-direct"


@dataclass
class LlcExtraStats:
    """LLC-specific counters beyond the generic :class:`CacheStats`."""

    back_invalidations: int = 0
    silent_back_invalidations: int = 0
    evictions_started: int = 0
    entries_freed: int = 0
    dram_writebacks: int = 0
    blocked_no_free_entry: int = 0


class PartitionedLlc:
    """Inclusive set-associative LLC carved into partitions.

    Parameters
    ----------
    num_sets, num_ways:
        Physical geometry (the paper's evaluation uses 32 sets × 16
        ways).
    partition_map:
        The carving; every allocating core must appear in it.
    policy:
        Replacement policy name (per physical set); ``"oracle"``
        installs :class:`~repro.cache.replacement.OraclePolicy` hooks
        used by adversarial workloads.
    rng:
        Seeded stream for stochastic policies.
    """

    def __init__(
        self,
        num_sets: int,
        num_ways: int,
        partition_map: PartitionMap,
        policy: str = "lru",
        rng: Optional[random.Random] = None,
        name: str = "LLC",
    ) -> None:
        require_positive(num_sets, "num_sets", GeometryError)
        require_positive(num_ways, "num_ways", GeometryError)
        if partition_map.num_sets != num_sets or partition_map.num_ways != num_ways:
            raise GeometryError(
                f"partition map was validated against {partition_map.num_sets}x"
                f"{partition_map.num_ways} but LLC is {num_sets}x{num_ways}"
            )
        self.name = name
        self.num_sets = num_sets
        self.num_ways = num_ways
        self.partition_map = partition_map
        self.policy_name = policy
        self.stats = CacheStats()
        self.extra = LlcExtraStats()
        self.directory = OwnerDirectory()
        self._entries: List[List[LlcEntry]] = [
            [LlcEntry(set_index=s, way=w) for w in range(num_ways)]
            for s in range(num_sets)
        ]
        self._policies: List[ReplacementPolicy] = []
        for set_index in range(num_sets):
            set_policy = make_policy(policy, num_ways, rng)
            if isinstance(set_policy, OraclePolicy):
                set_policy.bind_set(set_index)
            self._policies.append(set_policy)
        # block -> entry, for VALID and PENDING_EVICT entries respectively
        self._valid_index: Dict[BlockAddress, LlcEntry] = {}
        self._pending_index: Dict[BlockAddress, LlcEntry] = {}
        # Partitions are immutable, so each (partition, set) region's
        # entry list and each partition's way membership are precomputed
        # — these sit on the engine's hottest path.
        self._region_cache: Dict[Tuple[str, int], List[LlcEntry]] = {}
        self._way_sets: Dict[str, frozenset] = {}
        for spec in partition_map.partitions:
            self._way_sets[spec.name] = frozenset(spec.ways())
            for set_index in spec.sets:
                self._region_cache[(spec.name, set_index)] = [
                    self._entries[set_index][way] for way in spec.ways()
                ]

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def partition_of(self, core: CoreId) -> PartitionSpec:
        """The partition ``core`` allocates into."""
        return self.partition_map.partition_of(core)

    def fold(self, core: CoreId, block: BlockAddress) -> int:
        """Physical set ``block`` maps to for ``core``'s partition."""
        return self.partition_of(core).fold_set(block)

    def entry(self, set_index: int, way: int) -> LlcEntry:
        """Direct access to one entry (tests and invariants)."""
        return self._entries[set_index][way]

    def _partition_entries(
        self, partition: PartitionSpec, set_index: int
    ) -> List[LlcEntry]:
        return self._region_cache[(partition.name, set_index)]

    def oracle_policy(self, set_index: int) -> OraclePolicy:
        """The oracle policy of a set (adversarial steering hook)."""
        set_policy = self._policies[set_index]
        if not isinstance(set_policy, OraclePolicy):
            raise SimulationError(
                f"set {set_index} uses policy {self.policy_name!r}, not 'oracle'"
            )
        return set_policy

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def lookup(self, core: CoreId, block: BlockAddress) -> Optional[LlcEntry]:
        """Probe for a hit within ``core``'s partition; counts stats.

        Only ``VALID`` entries hit: a ``PENDING_EVICT`` line is logically
        gone (its eviction is merely waiting for the bus).
        """
        self.stats.accesses += 1
        entry = self._probe(core, block)
        if entry is not None:
            self.stats.hits += 1
            self._policies[entry.set_index].on_access(entry.way)
            return entry
        self.stats.misses += 1
        return None

    def probe(self, core: CoreId, block: BlockAddress) -> Optional[LlcEntry]:
        """Like :meth:`lookup` but with no statistics or policy effects."""
        return self._probe(core, block)

    def _probe(self, core: CoreId, block: BlockAddress) -> Optional[LlcEntry]:
        partition = self.partition_of(core)
        set_index = partition.fold_set(block)
        entry = self._valid_index.get(block)
        if entry is None or entry.set_index != set_index:
            return None
        if entry.way not in self._way_sets[partition.name]:
            return None
        return entry

    def free_entry(self, core: CoreId, block: BlockAddress) -> Optional[LlcEntry]:
        """A ``FREE`` entry usable for ``block`` in ``core``'s partition."""
        partition = self.partition_of(core)
        set_index = partition.fold_set(block)
        for entry in self._partition_entries(partition, set_index):
            if entry.is_free:
                return entry
        return None

    def has_pending_evict(self, core: CoreId, block: BlockAddress) -> bool:
        """Whether an eviction is already in flight in the target set.

        The engine triggers at most one eviction at a time per
        (partition × set) region: while one is pending, a free entry is
        already on its way, so further evictions would only destroy
        additional cache state without helping any requester.
        """
        partition = self.partition_of(core)
        set_index = partition.fold_set(block)
        return any(
            entry.is_pending
            for entry in self._partition_entries(partition, set_index)
        )

    def region_availability(
        self, core: CoreId, block: BlockAddress
    ) -> Tuple[int, int]:
        """``(free, pending)`` entry counts of ``block``'s region.

        The engine compares their sum against the number of waiting
        requesters to decide whether another eviction is warranted.
        """
        partition = self.partition_of(core)
        set_index = partition.fold_set(block)
        free = 0
        pending = 0
        for entry in self._partition_entries(partition, set_index):
            if entry.is_free:
                free += 1
            elif entry.is_pending:
                pending += 1
        return free, pending

    def pending_entry(self, block: BlockAddress) -> Optional[LlcEntry]:
        """The ``PENDING_EVICT`` entry holding ``block``, if any."""
        return self._pending_index.get(block)

    def valid_entry(self, block: BlockAddress) -> Optional[LlcEntry]:
        """The ``VALID`` entry holding ``block``, if any (no stats)."""
        return self._valid_index.get(block)

    def pending_entries(self) -> List[LlcEntry]:
        """All ``PENDING_EVICT`` entries (invariant monitors iterate these)."""
        return list(self._pending_index.values())

    def block_is_pending(self, block: BlockAddress) -> bool:
        """Whether ``block`` itself sits in a ``PENDING_EVICT`` entry.

        A request for such a block cannot allocate (the block would be
        resident twice); it must wait for the eviction's write-back to
        free the entry.
        """
        return block in self._pending_index

    def valid_entries_in_region(
        self, core: CoreId, block: BlockAddress
    ) -> List[LlcEntry]:
        """``VALID`` entries of the (partition × set) region of ``block``."""
        partition = self.partition_of(core)
        set_index = partition.fold_set(block)
        return [
            entry
            for entry in self._partition_entries(partition, set_index)
            if entry.is_valid
        ]

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, core: CoreId, block: BlockAddress) -> LlcEntry:
        """Install ``block`` into a free entry of ``core``'s partition.

        The caller must have verified a free entry exists (and, under
        SS, that ``core`` is at the head of the set's sequencer queue).
        The new line is clean at the LLC (just fetched from DRAM) and
        ``core`` becomes its private owner.
        """
        existing = self._valid_index.get(block) or self._pending_index.get(block)
        if existing is not None:
            raise SimulationError(
                f"block {block:#x} already resident at set {existing.set_index} "
                f"way {existing.way} ({existing.state.value}); workloads must "
                "keep partition address ranges disjoint"
            )
        entry = self.free_entry(core, block)
        if entry is None:
            raise SimulationError(
                f"allocate for core {core} block {block:#x}: no free entry "
                f"in partition {self.partition_of(core).name!r}"
            )
        entry.state = EntryState.VALID
        entry.block = block
        entry.dirty = False
        entry.pending_writers.clear()
        self._valid_index[block] = entry
        self._policies[entry.set_index].on_fill(entry.way)
        self.directory.add_owner(core, block)
        self.stats.fills += 1
        return entry

    def add_owner(self, core: CoreId, block: BlockAddress) -> None:
        """Record that ``core`` filled its private caches with ``block``."""
        if block not in self._valid_index:
            raise SimulationError(
                f"add_owner for block {block:#x} which is not VALID in the LLC"
            )
        self.directory.add_owner(core, block)

    def note_private_drop(self, core: CoreId, block: BlockAddress) -> None:
        """``core``'s private caches no longer hold ``block``.

        Called when the L2 displaces a line by capacity — clean or
        dirty.  For a dirty victim the write-back data is still in
        flight in the PWB; ownership ends now regardless, because the
        *copy* is gone (a later LLC eviction of the block must not wait
        on this core, whose data will arrive as ``DRAM_DIRECT``).
        """
        self.directory.remove_owner(core, block)

    # ------------------------------------------------------------------
    # Eviction lifecycle
    # ------------------------------------------------------------------
    def choose_victim(
        self, core: CoreId, block: BlockAddress
    ) -> Optional[VictimInfo]:
        """Pick a victim for ``core``'s miss on ``block``; no mutation.

        Candidates are the ``VALID`` entries of the region; ``None``
        when the region has no valid entry to evict (everything is
        already free or pending).
        """
        partition = self.partition_of(core)
        set_index = partition.fold_set(block)
        candidates = [
            entry.way
            for entry in self._partition_entries(partition, set_index)
            if entry.is_valid
        ]
        if not candidates:
            return None
        way = self._policies[set_index].victim(candidates)
        if way not in candidates:
            raise SimulationError(
                f"policy for set {set_index} chose way {way} outside "
                f"candidates {candidates}"
            )
        victim = self._entries[set_index][way]
        assert victim.block is not None
        return VictimInfo(
            set_index=set_index,
            way=way,
            block=victim.block,
            owners=self.directory.owners_of(victim.block),
            llc_dirty=victim.dirty,
        )

    def begin_eviction(
        self, victim: VictimInfo, dirty_owners: Iterable[CoreId]
    ) -> bool:
        """Apply an eviction decision.

        ``dirty_owners`` are the private owners whose copy was dirty (as
        discovered by the engine when it back-invalidated the private
        stacks); each will later deliver a write-back.  Returns ``True``
        when the entry is immediately ``FREE`` (no dirty owner), in
        which case an LLC-dirty line has gone straight to DRAM —
        the LLC↔DRAM interface does not use the TDM bus.
        """
        entry = self._entries[victim.set_index][victim.way]
        if not entry.is_valid or entry.block != victim.block:
            raise SimulationError(
                f"begin_eviction on stale victim: entry holds "
                f"{entry.block!r} ({entry.state.value}), victim was {victim.block:#x}"
            )
        writers = set(dirty_owners)
        self.stats.evictions += 1
        self.extra.evictions_started += 1
        del self._valid_index[victim.block]
        self.directory.drop_block(victim.block)
        self._policies[victim.set_index].on_invalidate(victim.way)
        if writers:
            entry.state = EntryState.PENDING_EVICT
            entry.pending_writers = writers
            self._pending_index[victim.block] = entry
            self.extra.back_invalidations += len(writers)
            return False
        if victim.llc_dirty:
            self.stats.dirty_evictions += 1
            self.extra.dram_writebacks += 1
        if victim.owners:
            self.extra.silent_back_invalidations += len(victim.owners)
        self._free_entry(entry)
        return True

    def complete_writeback(
        self, core: CoreId, block: BlockAddress
    ) -> WritebackOutcome:
        """Deliver ``core``'s write-back of ``block`` to the LLC."""
        pending = self._pending_index.get(block)
        if pending is not None:
            if core not in pending.pending_writers:
                # An in-flight capacity write-back from a core whose
                # ownership already ended: it cannot free the entry —
                # its data goes straight to DRAM.
                self.extra.dram_writebacks += 1
                return WritebackOutcome.DRAM_DIRECT
            pending.pending_writers.discard(core)
            if pending.pending_writers:
                return WritebackOutcome.PENDING
            del self._pending_index[block]
            self.extra.dram_writebacks += 1
            self.stats.dirty_evictions += 1
            self._free_entry(pending)
            return WritebackOutcome.FREED
        valid = self._valid_index.get(block)
        if valid is not None:
            # Ownership already ended when the private copy left the L2
            # (note_private_drop); if the core has re-fetched the block
            # since, it is a legitimate owner again and must stay one.
            valid.dirty = True
            return WritebackOutcome.UPDATED
        # The line left the LLC while this write-back sat in the PWB;
        # the data still has a home in DRAM.
        self.extra.dram_writebacks += 1
        return WritebackOutcome.DRAM_DIRECT

    def _free_entry(self, entry: LlcEntry) -> None:
        entry.state = EntryState.FREE
        entry.block = None
        entry.dirty = False
        entry.pending_writers.clear()
        self.extra.entries_freed += 1

    # ------------------------------------------------------------------
    # Introspection and invariants
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of ``VALID`` entries LLC-wide."""
        return len(self._valid_index)

    def pending_evictions(self) -> int:
        """Number of ``PENDING_EVICT`` entries LLC-wide."""
        return len(self._pending_index)

    def resident_blocks(self) -> List[BlockAddress]:
        """All ``VALID`` blocks."""
        return list(self._valid_index)

    def validate(self, sets: Optional[Iterable[int]] = None) -> None:
        """Check internal invariants; raises :class:`SimulationError`.

        Verified properties: index consistency, exclusive state per
        entry, and that ``PENDING_EVICT`` entries await at least one
        writer.

        ``sets`` restricts the entry scan to the given set rows (the
        per-slot checked-mode monitor passes the partition-covered sets
        — the only rows that can ever hold a line — to avoid sweeping
        the whole geometry every slot).  The restricted form swaps the
        full-scan entry counts for reverse checks over both indexes, so
        its coverage matches the full scan whenever every resident line
        lives in ``sets``.
        """
        if sets is not None:
            for set_index in sets:
                for entry in self._entries[set_index]:
                    self._validate_entry(entry)
            for block, entry in self._valid_index.items():
                if not entry.is_valid or entry.block != block:
                    raise SimulationError(
                        f"valid index out of sync for block {block:#x}"
                    )
            for block, entry in self._pending_index.items():
                if not entry.is_pending or entry.block != block:
                    raise SimulationError(
                        f"pending index out of sync for block {block:#x}"
                    )
            return
        valid_seen = 0
        pending_seen = 0
        for row in self._entries:
            for entry in row:
                if entry.is_valid:
                    valid_seen += 1
                    if entry.block is None:
                        raise SimulationError("VALID entry without a block")
                    if self._valid_index.get(entry.block) is not entry:
                        raise SimulationError(
                            f"valid index out of sync for block {entry.block:#x}"
                        )
                elif entry.is_pending:
                    pending_seen += 1
                    if entry.block is None:
                        raise SimulationError("PENDING_EVICT entry without a block")
                    if not entry.pending_writers:
                        raise SimulationError(
                            f"PENDING_EVICT entry for block {entry.block:#x} "
                            "awaits no writer"
                        )
                    if self._pending_index.get(entry.block) is not entry:
                        raise SimulationError(
                            f"pending index out of sync for block {entry.block:#x}"
                        )
                else:
                    if entry.block is not None or entry.pending_writers:
                        raise SimulationError("FREE entry with residual state")
        if valid_seen != len(self._valid_index):
            raise SimulationError("valid index size mismatch")
        if pending_seen != len(self._pending_index):
            raise SimulationError("pending index size mismatch")

    def _validate_entry(self, entry: LlcEntry) -> None:
        if entry.is_valid:
            if entry.block is None:
                raise SimulationError("VALID entry without a block")
            if self._valid_index.get(entry.block) is not entry:
                raise SimulationError(
                    f"valid index out of sync for block {entry.block:#x}"
                )
        elif entry.is_pending:
            if entry.block is None:
                raise SimulationError("PENDING_EVICT entry without a block")
            if not entry.pending_writers:
                raise SimulationError(
                    f"PENDING_EVICT entry for block {entry.block:#x} "
                    "awaits no writer"
                )
            if self._pending_index.get(entry.block) is not entry:
                raise SimulationError(
                    f"pending index out of sync for block {entry.block:#x}"
                )
        else:
            if entry.block is not None or entry.pending_writers:
                raise SimulationError("FREE entry with residual state")
