"""Per-core hardware: the private L1I/L1D/L2 stack and the core model.

Each core runs one task (Section 3: "one task can be mapped to one
core"), modelled as a memory trace.  The core has at most one
outstanding LLC request; private hits are serviced at fixed latencies
without touching the shared bus.
"""

from repro.cpu.private_stack import (
    PrivateStack,
    PrivateStackConfig,
    StackAccessResult,
    FillResult,
)
from repro.cpu.core import TraceDrivenCore, CoreState, MissInfo

__all__ = [
    "PrivateStack",
    "PrivateStackConfig",
    "StackAccessResult",
    "FillResult",
    "TraceDrivenCore",
    "CoreState",
    "MissInfo",
]
