"""A core's private cache stack: L1I + L1D over a unified L2.

The stack maintains the inclusive discipline the paper's system model
requires (Section 3): the L2 is inclusive of both L1s, and the enclosing
LLC is inclusive of the L2.  Dirtiness lives where the write happened
(an L1 write dirties only the L1 copy); it is merged downward on every
eviction or invalidation, so "is the private copy dirty?" — the question
that decides whether an LLC eviction costs a bus slot — is answered by
OR-ing the levels.

The L1s may be disabled (``l1_sets == 0``), which reproduces analyses
that only model the L2↔LLC boundary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.cache.line import CacheLine, EvictedLine
from repro.cache.sa_cache import SetAssociativeCache
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.types import AccessType, BlockAddress, CoreId
from repro.common.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class PrivateStackConfig:
    """Geometry and latencies of one core's private caches.

    Defaults follow the paper's evaluation (Section 5): the L2 is a
    4-way set-associative cache with 16 sets; L1 sizes are not given in
    the paper, so small 2-way, 4-set L1s are used (32 lines total,
    comfortably inside the 64-line L2).
    """

    l1_sets: int = 4
    l1_ways: int = 2
    l2_sets: int = 16
    l2_ways: int = 4
    l1_hit_latency: int = 1
    l2_hit_latency: int = 4
    policy: str = "lru"

    def __post_init__(self) -> None:
        require_non_negative(self.l1_sets, "l1_sets", ConfigurationError)
        if self.l1_sets:
            require_positive(self.l1_ways, "l1_ways", ConfigurationError)
        require_positive(self.l2_sets, "l2_sets", ConfigurationError)
        require_positive(self.l2_ways, "l2_ways", ConfigurationError)
        require_positive(self.l1_hit_latency, "l1_hit_latency", ConfigurationError)
        require_positive(self.l2_hit_latency, "l2_hit_latency", ConfigurationError)

    @property
    def has_l1(self) -> bool:
        """Whether the stack models L1 caches at all."""
        return self.l1_sets > 0

    @property
    def l2_capacity_lines(self) -> int:
        """L2 capacity in lines (``m_cua`` in Theorem 4.7)."""
        return self.l2_sets * self.l2_ways


@dataclass(frozen=True)
class StackAccessResult:
    """Outcome of a core access against the private stack."""

    #: ``"L1"`` or ``"L2"`` on a hit; ``None`` means the access must go
    #: to the LLC.
    hit_level: Optional[str]
    #: Cycles the access costs when it hits privately (0 on a miss; the
    #: engine accounts miss latency via the bus).
    latency: int


@dataclass(frozen=True)
class FillResult:
    """Side effects of installing an LLC response into the stack.

    ``l2_victim`` is the line the fill displaced from the L2, with its
    merged (L1 ∪ L2) dirtiness: if dirty it must be written back over
    the bus; if clean the LLC is merely notified the core no longer
    holds it.
    """

    l2_victim: Optional[EvictedLine]


class _FrozenL2View:
    """Read-only stand-in for the live L2 during prediction replay.

    Between two external content changes (an LLC fill or a back-
    invalidation — exactly the events that bump ``PrivateStack.version``
    and invalidate a cached prediction) the L2's *membership* is frozen:
    a core's own accesses touch recency and dirty bits but never install
    or remove lines.  Stack-level hit/miss therefore only needs L2
    membership, which this view answers straight from the live cache —
    sparing the prediction clone the dominant cost of copying every L2
    set.  Mutations are absorbed: ``access`` skips recency/dirty/stats
    updates entirely, and ``find`` hands back a throwaway line copy so
    the L1 dirtiness push-down cannot touch the live line.
    """

    __slots__ = ("_live",)

    def __init__(self, live: SetAssociativeCache) -> None:
        self._live = live

    def access(self, block: BlockAddress, is_write: bool) -> bool:
        return self._live.contains(block)

    def contains(self, block: BlockAddress) -> bool:
        return self._live.contains(block)

    def find(self, block: BlockAddress):
        line = self._live.find(block)
        if line is None:
            return None
        return CacheLine(block=line.block, dirty=line.dirty)


class PrivateStack:
    """One core's private L1I/L1D/L2 hierarchy over block addresses."""

    def __init__(
        self,
        core: CoreId,
        config: Optional[PrivateStackConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.core = core
        self.config = config or PrivateStackConfig()
        cfg = self.config
        self.l1i: Optional[SetAssociativeCache] = None
        self.l1d: Optional[SetAssociativeCache] = None
        if cfg.has_l1:
            self.l1i = SetAssociativeCache(
                f"core{core}.L1I", cfg.l1_sets, cfg.l1_ways, cfg.policy, rng
            )
            self.l1d = SetAssociativeCache(
                f"core{core}.L1D", cfg.l1_sets, cfg.l1_ways, cfg.policy, rng
            )
        self.l2 = SetAssociativeCache(
            f"core{core}.L2", cfg.l2_sets, cfg.l2_ways, cfg.policy, rng
        )
        #: Bumped on every externally-driven content change — an LLC
        #: fill (:meth:`fill_from_llc`) or inclusive back-invalidation
        #: (:meth:`invalidate_block`).  Ordinary :meth:`access` calls do
        #: NOT bump it: between two external changes the stack's hit/miss
        #: answers are a pure function of the core's own access stream,
        #: which is what lets the fast-forward engine cache its
        #: next-miss prediction (:meth:`repro.cpu.core.TraceDrivenCore.
        #: predict_next_bus_event`) against this counter.
        self.version = 0

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def _l1_for(self, access: AccessType) -> Optional[SetAssociativeCache]:
        if not self.config.has_l1:
            return None
        return self.l1i if access.is_instruction else self.l1d

    def access(self, block: BlockAddress, access: AccessType) -> StackAccessResult:
        """Run one access through L1 then L2.

        On an L2 hit the L1 is refilled; on an L2 miss nothing is
        installed — the fill happens later via :meth:`fill_from_llc`
        when the LLC response arrives over the bus.
        """
        l1 = self._l1_for(access)
        if l1 is not None and l1.access(block, access.is_write):
            return StackAccessResult("L1", self.config.l1_hit_latency)
        if self.l2.access(block, access.is_write):
            if l1 is not None:
                self._fill_l1(l1, block, access.is_write)
            return StackAccessResult("L2", self.config.l2_hit_latency)
        return StackAccessResult(None, 0)

    def fill_from_llc(self, block: BlockAddress, access: AccessType) -> FillResult:
        """Install the LLC response for ``block`` into L2 (and L1)."""
        self.version += 1
        l2_victim = self.l2.fill(block, access.is_write)
        merged_victim: Optional[EvictedLine] = None
        if l2_victim is not None:
            merged_victim = self._back_invalidate_l1(l2_victim)
        l1 = self._l1_for(access)
        if l1 is not None:
            self._fill_l1(l1, block, access.is_write)
        return FillResult(l2_victim=merged_victim)

    def _fill_l1(self, l1: SetAssociativeCache, block: BlockAddress, dirty: bool) -> None:
        if l1.contains(block):
            l1.access(block, dirty)
            return
        victim = l1.fill(block, dirty)
        if victim is not None and victim.dirty:
            # Inclusive: the victim must still be in L2; push dirtiness down.
            line = self.l2.find(victim.block)
            if line is None:
                raise SimulationError(
                    f"core {self.core}: L1 victim {victim.block:#x} absent from "
                    "inclusive L2"
                )
            line.dirty = True

    def _back_invalidate_l1(self, l2_victim: EvictedLine) -> EvictedLine:
        """Remove an L2 victim's copies from both L1s, merging dirtiness."""
        dirty = l2_victim.dirty
        for l1 in (self.l1i, self.l1d):
            if l1 is None:
                continue
            removed = l1.invalidate(l2_victim.block)
            if removed is not None and removed.dirty:
                dirty = True
        return EvictedLine(block=l2_victim.block, dirty=dirty)

    # ------------------------------------------------------------------
    # Inclusive back-invalidation from the LLC
    # ------------------------------------------------------------------
    def invalidate_block(self, block: BlockAddress) -> Optional[EvictedLine]:
        """Evict ``block`` everywhere (LLC chose it as a victim).

        Returns the removed line with merged dirtiness, or ``None`` if
        the stack no longer held it.
        """
        dirty = False
        present = False
        for l1 in (self.l1i, self.l1d):
            if l1 is None:
                continue
            removed = l1.invalidate(block)
            if removed is not None:
                present = True
                dirty = dirty or removed.dirty
        removed_l2 = self.l2.invalidate(block)
        if removed_l2 is not None:
            present = True
            dirty = dirty or removed_l2.dirty
        if not present:
            return None
        self.version += 1
        return EvictedLine(block=block, dirty=dirty)

    # ------------------------------------------------------------------
    # Cloning (next-miss prediction)
    # ------------------------------------------------------------------
    def clone(self) -> "PrivateStack":
        """An independent copy of the whole stack, identical in every
        hit/miss-relevant way.

        The fast-forward engine replays a core's remaining trace against
        a clone to predict its next L2 miss without touching the live
        stack.  ``config`` is a frozen dataclass and safely shared.
        """
        dup = PrivateStack.__new__(PrivateStack)
        dup.core = self.core
        dup.config = self.config
        dup.l1i = None if self.l1i is None else self.l1i.clone()
        dup.l1d = None if self.l1d is None else self.l1d.clone()
        dup.l2 = self.l2.clone()
        dup.version = self.version
        return dup

    def clone_for_prediction(self) -> "PrivateStack":
        """A throwaway stack for next-miss prediction replay.

        Like :meth:`clone`, but the L2 is a :class:`_FrozenL2View` over
        the live cache instead of a copy: prediction only runs while the
        L2's membership is frozen (see the view's docstring), and the
        L1s — whose contents do evolve with the core's own accesses, and
        whose hit level decides per-record latency — are small.  This is
        what keeps each fresh prediction cheap enough for the fast-
        forward engine to pay for itself.
        """
        dup = PrivateStack.__new__(PrivateStack)
        dup.core = self.core
        dup.config = self.config
        dup.l1i = None if self.l1i is None else self.l1i.clone()
        dup.l1d = None if self.l1d is None else self.l1d.clone()
        dup.l2 = _FrozenL2View(self.l2)  # type: ignore[assignment]
        dup.version = self.version
        return dup

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def contains(self, block: BlockAddress) -> bool:
        """Whether any private level holds ``block``."""
        if self.l2.contains(block):
            return True
        return any(
            l1 is not None and l1.contains(block) for l1 in (self.l1i, self.l1d)
        )

    def is_dirty(self, block: BlockAddress) -> bool:
        """Whether the private copy of ``block`` is dirty at any level."""
        if self.l2.is_dirty(block):
            return True
        return any(
            l1 is not None and l1.is_dirty(block) for l1 in (self.l1i, self.l1d)
        )

    def resident_blocks(self) -> List[BlockAddress]:
        """Blocks resident in the L2 (superset of the L1s, inclusive)."""
        return self.l2.resident_blocks()

    def check_l1_inclusion(self) -> None:
        """Assert every L1-resident block is also in L2."""
        for l1 in (self.l1i, self.l1d):
            if l1 is None:
                continue
            for block in l1.resident_blocks():
                if not self.l2.contains(block):
                    raise SimulationError(
                        f"core {self.core}: block {block:#x} in {l1.name} "
                        "but not in inclusive L2"
                    )
