"""The trace-driven core model.

A core replays a memory trace: each record is a byte address plus an
access type.  Private hits complete at fixed latencies; an L2 miss
blocks the core (at most one outstanding request, Section 3) until the
slot engine delivers the LLC response.  The core keeps its own local
clock, which the engine advances up to each bus-slot boundary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import SimulationError
from repro.common.types import AccessType, BlockAddress, CoreId, Cycle
from repro.cpu.private_stack import PrivateStack
from repro.mem.address import AddressGeometry
from repro.workloads.trace import MemoryTrace


class CoreState(enum.Enum):
    """Execution state of a trace-driven core."""

    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass(frozen=True)
class MissInfo:
    """An L2 miss the core needs the bus for."""

    core: CoreId
    block: BlockAddress
    access: AccessType
    at_cycle: Cycle


#: Advance horizon used for next-miss prediction — far beyond any
#: reachable simulation time, so a prediction either finds the next L2
#: miss or replays the trace to completion.
_PREDICTION_HORIZON: Cycle = 1 << 62


@dataclass(frozen=True)
class CorePrediction:
    """What a ``RUNNING`` core will do next, bus-wise.

    Exactly one of the two fields is set: ``miss_at`` when the core's
    next non-private access is an L2 miss at that cycle, ``finish_at``
    when the remaining trace completes on private hits alone.  For a
    ``BLOCKED`` core both are ``None`` — its future depends on the LLC
    response, which only the engine knows.
    """

    miss_at: Optional[Cycle] = None
    finish_at: Optional[Cycle] = None


class TraceDrivenCore:
    """Replays one memory trace through a private stack."""

    def __init__(
        self,
        core_id: CoreId,
        stack: PrivateStack,
        trace: MemoryTrace,
        line_size: int,
        start_cycle: Cycle = 0,
    ) -> None:
        if start_cycle < 0:
            raise SimulationError(
                f"core {core_id}: start_cycle must be non-negative, got {start_cycle}"
            )
        self.core_id = core_id
        self.stack = stack
        self.trace = trace
        self.geometry = AddressGeometry(line_size=line_size, num_sets=1)
        self.state = CoreState.RUNNING if len(trace) else CoreState.DONE
        self.time: Cycle = start_cycle
        self.position = 0
        # Whether the current record's compute gap has been consumed
        # (the gap applies once, even if the access then blocks).
        self._gap_applied = False
        self.finish_time: Optional[Cycle] = (
            start_cycle if self.state is CoreState.DONE else None
        )
        self.private_hits = 0
        self.llc_requests = 0
        # Next-miss prediction cache, keyed on the private stack's
        # version counter (see predict_next_bus_event).
        self._prediction: Optional[CorePrediction] = None
        self._prediction_version: Optional[int] = None

    @property
    def done(self) -> bool:
        """Whether the trace has been fully replayed."""
        return self.state is CoreState.DONE

    @property
    def blocked(self) -> bool:
        """Whether the core waits for an LLC response."""
        return self.state is CoreState.BLOCKED

    def advance(self, until: Cycle) -> Optional[MissInfo]:
        """Run private-hit execution while ``time < until``.

        Returns the first L2 miss encountered (leaving the core
        ``BLOCKED`` at the miss cycle), or ``None`` if the core ran out
        of trace or reached ``until`` on private hits alone.
        """
        if self.state is not CoreState.RUNNING:
            return None
        while self.time < until:
            if self.position >= len(self.trace):
                self._finish()
                return None
            record = self.trace[self.position]
            if not self._gap_applied:
                self._gap_applied = True
                if record.compute_cycles:
                    # Think time before the access; re-check the horizon
                    # so a long computation does not overshoot it.
                    self.time += record.compute_cycles
                    continue
            block = self.geometry.block_of(record.address)
            result = self.stack.access(block, record.access)
            if result.hit_level is not None:
                self.private_hits += 1
                self.time += result.latency
                self.position += 1
                self._gap_applied = False
                continue
            # L2 miss: the core blocks at the current cycle; the engine
            # parks the request in the PRB and wakes us on the response.
            self.state = CoreState.BLOCKED
            self.llc_requests += 1
            return MissInfo(
                core=self.core_id,
                block=block,
                access=record.access,
                at_cycle=self.time,
            )
        return None

    def resume(self, response_cycle: Cycle) -> None:
        """Deliver the LLC response: the blocked access completes.

        The engine has already filled the private stack; the core just
        accounts time and moves to the next trace record.
        """
        if self.state is not CoreState.BLOCKED:
            raise SimulationError(
                f"core {self.core_id}: resume while {self.state.value}"
            )
        if response_cycle < self.time:
            raise SimulationError(
                f"core {self.core_id}: response at cycle {response_cycle} "
                f"before the miss at cycle {self.time}"
            )
        self.time = response_cycle
        self.position += 1
        self._gap_applied = False
        self.state = CoreState.RUNNING
        if self.position >= len(self.trace):
            self._finish()

    def predict_next_bus_event(self) -> CorePrediction:
        """Predict the core's next bus-visible event without side effects.

        Replays the remaining trace against a *clone* of the private
        stack through the real :meth:`advance` code path (so hit/miss
        decisions, compute-gap handling and latency accounting cannot
        diverge from the live replay), then restores the core's state.
        Returns the cycle of the next L2 miss, or the finish time when
        the rest of the trace completes on private hits alone.

        The result is cached against ``stack.version``: between two
        external stack mutations (an LLC fill or a back-invalidation —
        the only events that bump the version) the core's deterministic
        replay follows exactly the predicted path, so the prediction
        stays exact while the version is unchanged.  Each prediction
        scans only the records up to the next miss, and consecutive
        predictions scan disjoint trace segments, so the total
        prediction cost over a run is linear in the trace length.

        Only valid for deterministic replacement policies: a ``random``
        private stack shares its RNG stream with the rest of the
        system, and the clone's draws could not be kept in lock-step
        (the engine forces the reference path in that case).
        """
        if self.state is CoreState.DONE:
            return CorePrediction(finish_at=self.finish_time)
        if self.state is CoreState.BLOCKED:
            return CorePrediction()
        if (
            self._prediction is not None
            and self._prediction_version == self.stack.version
        ):
            return self._prediction
        saved = (
            self.time,
            self.position,
            self._gap_applied,
            self.state,
            self.finish_time,
            self.private_hits,
            self.llc_requests,
        )
        live_stack = self.stack
        self.stack = live_stack.clone_for_prediction()
        try:
            miss = self.advance(_PREDICTION_HORIZON)
            if miss is not None:
                prediction = CorePrediction(miss_at=miss.at_cycle)
            else:
                prediction = CorePrediction(finish_at=self.finish_time)
        finally:
            self.stack = live_stack
            (
                self.time,
                self.position,
                self._gap_applied,
                self.state,
                self.finish_time,
                self.private_hits,
                self.llc_requests,
            ) = saved
        self._prediction = prediction
        self._prediction_version = live_stack.version
        return prediction

    def _finish(self) -> None:
        self.state = CoreState.DONE
        self.finish_time = self.time
