"""The trace-driven core model.

A core replays a memory trace: each record is a byte address plus an
access type.  Private hits complete at fixed latencies; an L2 miss
blocks the core (at most one outstanding request, Section 3) until the
slot engine delivers the LLC response.  The core keeps its own local
clock, which the engine advances up to each bus-slot boundary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import SimulationError
from repro.common.types import AccessType, BlockAddress, CoreId, Cycle
from repro.cpu.private_stack import PrivateStack
from repro.mem.address import AddressGeometry
from repro.workloads.trace import MemoryTrace


class CoreState(enum.Enum):
    """Execution state of a trace-driven core."""

    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass(frozen=True)
class MissInfo:
    """An L2 miss the core needs the bus for."""

    core: CoreId
    block: BlockAddress
    access: AccessType
    at_cycle: Cycle


class TraceDrivenCore:
    """Replays one memory trace through a private stack."""

    def __init__(
        self,
        core_id: CoreId,
        stack: PrivateStack,
        trace: MemoryTrace,
        line_size: int,
        start_cycle: Cycle = 0,
    ) -> None:
        if start_cycle < 0:
            raise SimulationError(
                f"core {core_id}: start_cycle must be non-negative, got {start_cycle}"
            )
        self.core_id = core_id
        self.stack = stack
        self.trace = trace
        self.geometry = AddressGeometry(line_size=line_size, num_sets=1)
        self.state = CoreState.RUNNING if len(trace) else CoreState.DONE
        self.time: Cycle = start_cycle
        self.position = 0
        # Whether the current record's compute gap has been consumed
        # (the gap applies once, even if the access then blocks).
        self._gap_applied = False
        self.finish_time: Optional[Cycle] = (
            start_cycle if self.state is CoreState.DONE else None
        )
        self.private_hits = 0
        self.llc_requests = 0

    @property
    def done(self) -> bool:
        """Whether the trace has been fully replayed."""
        return self.state is CoreState.DONE

    @property
    def blocked(self) -> bool:
        """Whether the core waits for an LLC response."""
        return self.state is CoreState.BLOCKED

    def advance(self, until: Cycle) -> Optional[MissInfo]:
        """Run private-hit execution while ``time < until``.

        Returns the first L2 miss encountered (leaving the core
        ``BLOCKED`` at the miss cycle), or ``None`` if the core ran out
        of trace or reached ``until`` on private hits alone.
        """
        if self.state is not CoreState.RUNNING:
            return None
        while self.time < until:
            if self.position >= len(self.trace):
                self._finish()
                return None
            record = self.trace[self.position]
            if not self._gap_applied:
                self._gap_applied = True
                if record.compute_cycles:
                    # Think time before the access; re-check the horizon
                    # so a long computation does not overshoot it.
                    self.time += record.compute_cycles
                    continue
            block = self.geometry.block_of(record.address)
            result = self.stack.access(block, record.access)
            if result.hit_level is not None:
                self.private_hits += 1
                self.time += result.latency
                self.position += 1
                self._gap_applied = False
                continue
            # L2 miss: the core blocks at the current cycle; the engine
            # parks the request in the PRB and wakes us on the response.
            self.state = CoreState.BLOCKED
            self.llc_requests += 1
            return MissInfo(
                core=self.core_id,
                block=block,
                access=record.access,
                at_cycle=self.time,
            )
        return None

    def resume(self, response_cycle: Cycle) -> None:
        """Deliver the LLC response: the blocked access completes.

        The engine has already filled the private stack; the core just
        accounts time and moves to the next trace record.
        """
        if self.state is not CoreState.BLOCKED:
            raise SimulationError(
                f"core {self.core_id}: resume while {self.state.value}"
            )
        if response_cycle < self.time:
            raise SimulationError(
                f"core {self.core_id}: response at cycle {response_cycle} "
                f"before the miss at cycle {self.time}"
            )
        self.time = response_cycle
        self.position += 1
        self._gap_applied = False
        self.state = CoreState.RUNNING
        if self.position >= len(self.trace):
            self._finish()

    def _finish(self) -> None:
        self.state = CoreState.DONE
        self.finish_time = self.time
