"""Arbitration between a core's PRB and PWB.

Section 3 of the paper: "There is a predictable arbitration such as
round-robin between PRB and PWB to choose from a request or a write-back
to send on the bus at the beginning of the core's slot."  The analysis
(Corollary 4.5) relies on the round-robin property that a core draining
``k`` write-backs interleaved with request attempts uses at most
``2k - 1`` of its own slots before a given write-back leaves.

The arbiter is pluggable so ablation experiments can measure how the
choice affects observed WCL:

* ``ROUND_ROBIN`` — strict alternation whenever both buffers are
  non-empty (the paper's policy, and the default);
* ``WRITEBACK_FIRST`` — drain the PWB before any request (most
  pessimistic for the requester);
* ``REQUEST_FIRST`` — always retry the request first (starves
  write-backs, and with it other cores' pending frees).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.common.types import TransactionKind


class ArbitrationPolicy(enum.Enum):
    """Which of PRB / PWB wins the core's slot when both are pending."""

    ROUND_ROBIN = "round-robin"
    WRITEBACK_FIRST = "writeback-first"
    REQUEST_FIRST = "request-first"

    @classmethod
    def parse(cls, name: str) -> "ArbitrationPolicy":
        """Parse a policy name (the enum value string)."""
        for member in cls:
            if member.value == name.lower():
                return member
        raise ConfigurationError(
            f"unknown arbitration policy {name!r}; choose from "
            f"{', '.join(member.value for member in cls)}"
        )


class PrbPwbArbiter:
    """Per-core chooser between the pending request and write-backs."""

    def __init__(self, policy: ArbitrationPolicy = ArbitrationPolicy.ROUND_ROBIN) -> None:
        self.policy = policy
        # Under round-robin, the kind preferred at the next contended
        # slot.  Write-backs go first initially: a freshly filled core
        # must push displaced dirty data before requesting more, which
        # is also the worst case for the requester that the analysis
        # assumes.
        self._preferred: TransactionKind = TransactionKind.WRITE_BACK
        #: Slots where both a request and a write-back were pending and
        #: the policy had to pick — the arbitration pressure the
        #: Corollary 4.5 ``2k - 1`` drain bound is about.
        self.contended_slots = 0

    def choose(
        self,
        has_request: bool,
        has_writeback: bool,
    ) -> Optional[TransactionKind]:
        """Pick the transaction kind for this slot, or ``None`` if idle.

        Round-robin state only advances when both kinds were available —
        an uncontended grant does not consume the other kind's turn.
        """
        if not has_request and not has_writeback:
            return None
        if has_request and not has_writeback:
            return TransactionKind.REQUEST
        if has_writeback and not has_request:
            return TransactionKind.WRITE_BACK

        self.contended_slots += 1
        if self.policy is ArbitrationPolicy.WRITEBACK_FIRST:
            return TransactionKind.WRITE_BACK
        if self.policy is ArbitrationPolicy.REQUEST_FIRST:
            return TransactionKind.REQUEST

        granted = self._preferred
        self._preferred = (
            TransactionKind.REQUEST
            if granted is TransactionKind.WRITE_BACK
            else TransactionKind.WRITE_BACK
        )
        return granted

    def reset(self) -> None:
        """Restore the initial round-robin preference."""
        self._preferred = TransactionKind.WRITE_BACK
