"""Shared L2<->LLC bus: TDM schedules, buffers and arbitration.

The bus is the timing backbone of the paper's model (Section 3): cores
only talk to the LLC inside their TDM slots, and the LLC only responds
within the requesting core's slot.  The worst-case analysis of Section 4
is entirely in terms of slots of this bus.
"""

from repro.bus.schedule import (
    TdmSchedule,
    one_slot_tdm,
    distance,
)
from repro.bus.buffers import (
    PendingRequest,
    PendingRequestBuffer,
    WritebackEntry,
    WritebackReason,
    PendingWritebackBuffer,
)
from repro.bus.arbiter import ArbitrationPolicy, PrbPwbArbiter

__all__ = [
    "TdmSchedule",
    "one_slot_tdm",
    "distance",
    "PendingRequest",
    "PendingRequestBuffer",
    "WritebackEntry",
    "WritebackReason",
    "PendingWritebackBuffer",
    "ArbitrationPolicy",
    "PrbPwbArbiter",
]
