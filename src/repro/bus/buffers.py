"""Pending-request and pending-write-back buffers (PRB / PWB).

Section 3 of the paper: before a core's request or write-back is placed
on the bus, it waits in the core's PRB (requests) or PWB (write-backs).
Each core has **at most one outstanding memory request**, so the PRB
holds at most one entry; the PWB accumulates the dirty lines the core
must push to the LLC — both its own capacity evictions and the
write-backs forced on it by inclusive LLC evictions
(back-invalidations).

The PWB services back-invalidation write-backs before capacity
write-backs (FIFO within each class).  A back-invalidation write-back
is what frees a ``PENDING_EVICT`` LLC entry that another core may be
waiting on; Corollary 4.5's guaranteed decay rate — and with it the
Theorem 4.7/4.8 bounds — assumes the owner's next write-back slot
services exactly that obligation.  Under a plain FIFO a capacity
write-back queued ahead of it delays the freeing by a full extra
period per queued entry, and observed latencies exceed the theorem
(found by differential fuzzing; see
``tests/test_robustness_oracle.py``).  Capacity write-backs free no
entry anyone waits on, so delaying them costs no one.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.common.errors import SimulationError
from repro.common.types import AccessType, BlockAddress, CoreId, Cycle


@dataclass
class PendingRequest:
    """The (single) outstanding LLC request of one core.

    ``enqueued_at`` is when the L2 miss parked the request in the PRB;
    ``first_on_bus_at`` is when the request was first broadcast (used by
    the set sequencer, which records broadcast order); ``completed_at``
    is filled when the LLC response arrives.  Observed latency for the
    WCL experiments is ``completed_at - enqueued_at``.
    """

    core: CoreId
    block: BlockAddress
    access: AccessType
    enqueued_at: Cycle
    first_on_bus_at: Optional[Cycle] = None
    completed_at: Optional[Cycle] = None
    bus_attempts: int = 0
    #: Whether the LLC served the request from a resident line (True)
    #: or had to allocate and fetch from DRAM (False).
    served_by_hit: bool = False

    @property
    def latency(self) -> Cycle:
        """Completion latency in cycles; raises if not completed."""
        if self.completed_at is None:
            raise SimulationError("latency of an incomplete request")
        return self.completed_at - self.enqueued_at


class PendingRequestBuffer:
    """PRB: capacity-one buffer for the core's outstanding request."""

    def __init__(self, core: CoreId) -> None:
        self.core = core
        self._entry: Optional[PendingRequest] = None

    @property
    def entry(self) -> Optional[PendingRequest]:
        """The outstanding request, if any."""
        return self._entry

    @property
    def is_empty(self) -> bool:
        return self._entry is None

    def push(self, request: PendingRequest) -> None:
        """Park a new request; the PRB must be empty.

        A second outstanding request violates the one-outstanding-
        request assumption of the system model and indicates a core
        model bug.
        """
        if self._entry is not None:
            raise SimulationError(
                f"core {self.core}: PRB already holds a request for block "
                f"{self._entry.block:#x}; one outstanding request allowed"
            )
        if request.core != self.core:
            raise SimulationError(
                f"request for core {request.core} pushed into core {self.core}'s PRB"
            )
        self._entry = request

    def pop(self) -> PendingRequest:
        """Remove and return the outstanding request."""
        if self._entry is None:
            raise SimulationError(f"core {self.core}: pop from empty PRB")
        entry = self._entry
        self._entry = None
        return entry


class WritebackReason(enum.Enum):
    """Why a write-back entered the PWB."""

    #: The core's own L2 displaced a dirty line while filling.
    CAPACITY = "capacity"
    #: The LLC evicted a line this core cached dirty (inclusive
    #: back-invalidation); the LLC entry stays PENDING_EVICT until this
    #: write-back reaches the LLC.
    BACK_INVALIDATION = "back-invalidation"


@dataclass
class WritebackEntry:
    """One dirty line waiting to be written back over the bus."""

    core: CoreId
    block: BlockAddress
    reason: WritebackReason
    enqueued_at: Cycle


class PendingWritebackBuffer:
    """PWB: the core's pending write-backs.

    Back-invalidation write-backs are serviced before capacity
    write-backs, FIFO within each class (module docstring has the
    timing argument).  ``peek``/``pop`` take the slot-start cycle so
    only write-backs already queued *at the beginning of the slot* are
    eligible — entries are pushed in cycle order, so an ineligible
    selection can never shadow an eligible one.
    """

    def __init__(self, core: CoreId) -> None:
        self.core = core
        self._entries: Deque[WritebackEntry] = deque()
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def push(self, entry: WritebackEntry) -> None:
        """Queue a write-back."""
        if entry.core != self.core:
            raise SimulationError(
                f"write-back for core {entry.core} pushed into core {self.core}'s PWB"
            )
        self._entries.append(entry)
        self.max_occupancy = max(self.max_occupancy, len(self._entries))

    def _select(self, before: Optional[Cycle]) -> Optional[WritebackEntry]:
        eligible = [
            entry
            for entry in self._entries
            if before is None or entry.enqueued_at <= before
        ]
        for entry in eligible:
            if entry.reason is WritebackReason.BACK_INVALIDATION:
                return entry
        return eligible[0] if eligible else None

    def pop(self, before: Optional[Cycle] = None) -> WritebackEntry:
        """Remove and return the next write-back to send.

        ``before`` restricts the choice to entries enqueued at or
        before that cycle (the slot-eligibility rule).
        """
        entry = self._select(before)
        if entry is None:
            raise SimulationError(f"core {self.core}: pop from empty PWB")
        self._entries.remove(entry)
        return entry

    def peek(self, before: Optional[Cycle] = None) -> Optional[WritebackEntry]:
        """The write-back ``pop`` would return, without removing it."""
        return self._select(before)

    def earliest_enqueue(self) -> Optional[Cycle]:
        """Smallest ``enqueued_at`` among queued entries, or ``None``.

        The cycle from which *some* entry is slot-eligible — the
        fast-forward engine uses it to place this buffer's next
        actionable slot without scanning every intermediate slot.
        """
        if not self._entries:
            return None
        return min(entry.enqueued_at for entry in self._entries)

    def blocks(self) -> list[BlockAddress]:
        """Blocks currently queued, oldest first."""
        return [entry.block for entry in self._entries]
