"""TDM bus schedules and the paper's distance metric.

A TDM schedule is a repeating sequence of equally sized slots, each
owned by one core.  The paper distinguishes:

* a **general TDM schedule**, where a core may own several slots per
  period — Section 4.1 shows this makes the WCL of a shared partition
  *unbounded*;
* a **1S-TDM schedule** (Definition 4.1), with exactly one slot per core
  per period, which restores a finite bound.

The *distance* ``d_{c_j}^{c_i}`` (Definition 4.2) is the number of slots
from the start of ``c_i``'s slot to the start of ``c_j``'s **next**
slot; under 1S-TDM it lies in ``[1, N]`` (Corollary 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.common.errors import ScheduleError
from repro.common.types import CoreId, Cycle, SlotIndex
from repro.common.validation import require_positive


@dataclass(frozen=True)
class TdmSchedule:
    """A repeating TDM slot assignment.

    Parameters
    ----------
    slot_owners:
        Owner of each slot within one period, in slot order.  For
        example ``(0, 1, 2, 3)`` is the paper's 1S-TDM schedule
        ``{c_ua, c_2, c_3, c_4}``, and ``(0, 1, 1)`` gives core 1 two
        slots per period (a schedule under which Section 4.1's
        unbounded scenario is possible).
    slot_width:
        Slot length ``SW`` in cycles.
    """

    slot_owners: Tuple[CoreId, ...]
    slot_width: int

    def __init__(self, slot_owners: Sequence[CoreId], slot_width: int) -> None:
        owners = tuple(slot_owners)
        if not owners:
            raise ScheduleError("a TDM schedule needs at least one slot")
        for owner in owners:
            if not isinstance(owner, int) or isinstance(owner, bool) or owner < 0:
                raise ScheduleError(f"slot owner must be a core id >= 0, got {owner!r}")
        require_positive(slot_width, "slot_width", ScheduleError)
        object.__setattr__(self, "slot_owners", owners)
        object.__setattr__(self, "slot_width", slot_width)
        # Memoised slots_of results: next_slot_of sits on the engine's
        # fast-forward path, where rebuilding the position tuple per
        # call would dominate the candidate computation.
        object.__setattr__(self, "_positions", {})

    @classmethod
    def parse(cls, text: str, slot_width: int) -> "TdmSchedule":
        """Parse a comma-separated owner list, e.g. ``"0,1,1"``.

        The textual form used by CLI flags and config files.

        >>> TdmSchedule.parse("0,1,1", 50).slots_of(1)
        (1, 2)
        """
        tokens = [token.strip() for token in text.split(",") if token.strip()]
        if not tokens:
            raise ScheduleError(f"empty TDM schedule string: {text!r}")
        try:
            owners = [int(token) for token in tokens]
        except ValueError:
            raise ScheduleError(
                f"TDM schedule must be comma-separated core ids, got {text!r}"
            ) from None
        return cls(owners, slot_width)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def period_slots(self) -> int:
        """Slots per period."""
        return len(self.slot_owners)

    @property
    def period_cycles(self) -> Cycle:
        """Cycles per period."""
        return self.period_slots * self.slot_width

    @property
    def cores(self) -> Tuple[CoreId, ...]:
        """Distinct cores with at least one slot, ascending."""
        return tuple(sorted(set(self.slot_owners)))

    @property
    def num_cores(self) -> int:
        """Number of distinct cores in the schedule."""
        return len(set(self.slot_owners))

    def slots_of(self, core: CoreId) -> Tuple[int, ...]:
        """Positions (within a period) of ``core``'s slots."""
        cached = self._positions.get(core)
        if cached is None:
            cached = tuple(
                i for i, owner in enumerate(self.slot_owners) if owner == core
            )
            self._positions[core] = cached
        return cached

    @property
    def is_one_slot(self) -> bool:
        """Whether this is a 1S-TDM schedule (Definition 4.1)."""
        return all(len(self.slots_of(core)) == 1 for core in self.cores)

    def require_one_slot(self) -> None:
        """Raise :class:`ScheduleError` unless this is 1S-TDM."""
        if not self.is_one_slot:
            offenders = [
                core for core in self.cores if len(self.slots_of(core)) != 1
            ]
            raise ScheduleError(
                "schedule is not 1S-TDM (Definition 4.1): cores "
                f"{offenders} own more than one slot per period; the WCL "
                "of a shared partition is unbounded under such a schedule "
                "(Section 4.1)"
            )

    # ------------------------------------------------------------------
    # Time arithmetic
    # ------------------------------------------------------------------
    def owner_of_slot(self, slot: SlotIndex) -> CoreId:
        """Core owning absolute slot number ``slot``."""
        if slot < 0:
            raise ScheduleError(f"slot index must be non-negative, got {slot}")
        return self.slot_owners[slot % self.period_slots]

    def slot_start(self, slot: SlotIndex) -> Cycle:
        """First cycle of absolute slot ``slot``."""
        if slot < 0:
            raise ScheduleError(f"slot index must be non-negative, got {slot}")
        return slot * self.slot_width

    def slot_end(self, slot: SlotIndex) -> Cycle:
        """One past the last cycle of absolute slot ``slot``."""
        if slot < 0:
            raise ScheduleError(
                f"slot_end: slot index must be non-negative, got {slot}"
            )
        return self.slot_start(slot) + self.slot_width

    def slot_of_cycle(self, cycle: Cycle) -> SlotIndex:
        """Absolute slot containing ``cycle``."""
        if cycle < 0:
            raise ScheduleError(f"cycle must be non-negative, got {cycle}")
        return cycle // self.slot_width

    def next_slot_of(self, core: CoreId, from_slot: SlotIndex) -> SlotIndex:
        """First absolute slot >= ``from_slot`` owned by ``core``."""
        positions = self.slots_of(core)
        if not positions:
            raise ScheduleError(f"core {core} owns no slot in the schedule")
        period = self.period_slots
        base = (from_slot // period) * period
        phase = from_slot % period
        for position in positions:
            if position >= phase:
                return base + position
        return base + period + positions[0]

    def next_slot_start(self, core: CoreId, from_cycle: Cycle) -> Cycle:
        """Start cycle of the first slot of ``core`` starting >= ``from_cycle``.

        A request that becomes ready exactly at a slot boundary can use
        that slot; one that becomes ready mid-slot waits for the next.

        ``from_cycle`` must be non-negative: simulation time starts at
        cycle 0, and Python's floor division would otherwise round a
        negative cycle *down* to a negative candidate slot — either a
        wrong (too early) answer or a confusing "slot index must be
        non-negative" error surfacing from ``slot_start``.

        >>> one_slot_tdm(2, 50).next_slot_start(1, 50)
        50
        >>> one_slot_tdm(2, 50).next_slot_start(1, 51)
        150
        """
        if from_cycle < 0:
            raise ScheduleError(
                f"next_slot_start: from_cycle must be non-negative, got {from_cycle}"
            )
        first_candidate = (from_cycle + self.slot_width - 1) // self.slot_width
        return self.slot_start(self.next_slot_of(core, first_candidate))


def one_slot_tdm(
    num_cores: int,
    slot_width: int,
    order: Optional[Sequence[CoreId]] = None,
) -> TdmSchedule:
    """Build a 1S-TDM schedule (Definition 4.1) over ``num_cores`` cores.

    ``order`` permutes the slot order; by default core ``i`` owns slot
    ``i``, reproducing the paper's ``{c_ua, c_2, ..., c_N}`` layout with
    the core under analysis first.
    """
    require_positive(num_cores, "num_cores", ScheduleError)
    if order is None:
        owners: Sequence[CoreId] = tuple(range(num_cores))
    else:
        owners = tuple(order)
        if sorted(owners) != list(range(num_cores)):
            raise ScheduleError(
                f"order must be a permutation of 0..{num_cores - 1}, got {list(owners)}"
            )
    return TdmSchedule(owners, slot_width)


def distance(schedule: TdmSchedule, from_core: CoreId, to_core: CoreId) -> int:
    """Distance ``d_{to}^{from}`` under a 1S-TDM schedule (Definition 4.2).

    Slots from the start of ``from_core``'s slot to the start of
    ``to_core``'s next slot.  ``distance(s, c, c) == N``: a core's next
    own slot is a full period away.  Satisfies Corollary 4.3:
    ``1 <= d <= N``.
    """
    schedule.require_one_slot()
    positions_from = schedule.slots_of(from_core)
    positions_to = schedule.slots_of(to_core)
    if not positions_from:
        raise ScheduleError(f"core {from_core} not in schedule")
    if not positions_to:
        raise ScheduleError(f"core {to_core} not in schedule")
    span = (positions_to[0] - positions_from[0]) % schedule.period_slots
    return span if span > 0 else schedule.period_slots
