"""A simple DRAM backend model.

The paper's system model (Section 3) places the DRAM directly behind the
LLC; the LLC↔DRAM interface does **not** use the TDM bus, so DRAM
traffic never competes with L2↔LLC transactions.  The analysis counts
latency purely in bus slots, which requires an LLC miss's line fetch to
complete within the requesting core's slot.  We therefore model DRAM as
a fixed-latency device and validate at system-build time that
``fetch_latency <= slot_width``.

The model still keeps honest accounting (reads, writes, busy cycles) so
experiments can report memory traffic, and it supports an optional
bandwidth model (one transfer at a time) for ablations that want a
less idealised backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.types import BlockAddress, Cycle
from repro.common.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class DramConfig:
    """Configuration of the DRAM backend.

    Parameters
    ----------
    fetch_latency:
        Cycles to read one cache line.
    write_latency:
        Cycles to absorb one line write-back (buffered; does not stall
        the LLC pipeline unless ``serialize`` is set).
    serialize:
        When true, transfers are serialised (a fetch issued while an
        earlier transfer is in flight waits); the idealised paper model
        leaves this off.
    """

    fetch_latency: int = 30
    write_latency: int = 30
    serialize: bool = False

    def __post_init__(self) -> None:
        require_positive(self.fetch_latency, "fetch_latency", ConfigurationError)
        require_non_negative(self.write_latency, "write_latency", ConfigurationError)


@dataclass
class DramStats:
    """Traffic counters for the DRAM backend."""

    reads: int = 0
    writes: int = 0
    busy_cycles: int = 0


class Dram:
    """Fixed-latency DRAM behind the LLC."""

    def __init__(self, config: DramConfig | None = None) -> None:
        self.config = config or DramConfig()
        self.stats = DramStats()
        self._free_at: Cycle = 0

    def fetch(self, block: BlockAddress, now: Cycle) -> Cycle:
        """Fetch a line; returns the cycle at which the data is ready."""
        start = max(now, self._free_at) if self.config.serialize else now
        done = start + self.config.fetch_latency
        self.stats.reads += 1
        self.stats.busy_cycles += self.config.fetch_latency
        if self.config.serialize:
            self._free_at = done
        return done

    def write_back(self, block: BlockAddress, now: Cycle) -> Cycle:
        """Absorb a line write-back; returns the completion cycle."""
        start = max(now, self._free_at) if self.config.serialize else now
        done = start + self.config.write_latency
        self.stats.writes += 1
        self.stats.busy_cycles += self.config.write_latency
        if self.config.serialize:
            self._free_at = done
        return done

    def reset(self) -> None:
        """Clear traffic counters and the serialisation horizon."""
        self.stats = DramStats()
        self._free_at = 0
