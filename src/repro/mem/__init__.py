"""Physical memory substrate: address geometry and the DRAM backend."""

from repro.mem.address import AddressGeometry, AddressRange
from repro.mem.dram import Dram, DramConfig

__all__ = ["AddressGeometry", "AddressRange", "Dram", "DramConfig"]
