"""Physical address decomposition for set-associative caches.

A cache with ``line_size``-byte lines and ``num_sets`` sets splits a
physical address into::

    +---------------------- tag ----------------------+-- index --+- offset -+
    address // (line_size * num_sets)                  set index    in-line

All caches in the system share the line size (64 bytes in the paper's
evaluation, Section 5) but differ in set count, so each cache owns an
:class:`AddressGeometry`.

:class:`AddressRange` models the paper's synthetic workloads, which draw
random addresses from disjoint per-core byte ranges (Section 5,
"Workload generation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common.errors import GeometryError
from repro.common.intmath import ilog2
from repro.common.types import Address, BlockAddress
from repro.common.validation import require_power_of_two


@dataclass(frozen=True)
class AddressGeometry:
    """Tag/index/offset decomposition for one cache level.

    Parameters
    ----------
    line_size:
        Cache line size in bytes; must be a power of two.
    num_sets:
        Number of sets the cache indexes into; must be a power of two.
    """

    line_size: int
    num_sets: int

    def __post_init__(self) -> None:
        require_power_of_two(self.line_size, "line_size", GeometryError)
        require_power_of_two(self.num_sets, "num_sets", GeometryError)

    @property
    def offset_bits(self) -> int:
        """Number of in-line offset bits."""
        return ilog2(self.line_size)

    @property
    def index_bits(self) -> int:
        """Number of set-index bits."""
        return ilog2(self.num_sets)

    def block_of(self, address: Address) -> BlockAddress:
        """The cache-line (block) address containing ``address``."""
        if address < 0:
            raise GeometryError(f"address must be non-negative, got {address}")
        return address >> self.offset_bits

    def set_index(self, address: Address) -> int:
        """The set index ``address`` maps to."""
        return self.block_of(address) & (self.num_sets - 1)

    def tag_of(self, address: Address) -> int:
        """The tag bits of ``address``."""
        return self.block_of(address) >> self.index_bits

    def set_index_of_block(self, block: BlockAddress) -> int:
        """The set index a block address maps to."""
        if block < 0:
            raise GeometryError(f"block must be non-negative, got {block}")
        return block & (self.num_sets - 1)

    def tag_of_block(self, block: BlockAddress) -> int:
        """The tag bits of a block address."""
        if block < 0:
            raise GeometryError(f"block must be non-negative, got {block}")
        return block >> self.index_bits

    def block_base_address(self, block: BlockAddress) -> Address:
        """The first byte address of a block."""
        return block << self.offset_bits


@dataclass(frozen=True)
class AddressRange:
    """A half-open byte range ``[base, base + size)``.

    The paper's workload generator gives each core a *disjoint* address
    range so that no data is shared between cores (Section 5).  The
    range size is the knob swept on the x-axis of Figures 7 and 8.
    """

    base: Address
    size: int

    def __post_init__(self) -> None:
        if self.base < 0:
            raise GeometryError(f"range base must be non-negative, got {self.base}")
        if self.size <= 0:
            raise GeometryError(f"range size must be positive, got {self.size}")

    @property
    def end(self) -> Address:
        """One past the last byte of the range."""
        return self.base + self.size

    def __contains__(self, address: Address) -> bool:
        return self.base <= address < self.end

    def overlaps(self, other: "AddressRange") -> bool:
        """Whether the two byte ranges intersect."""
        return self.base < other.end and other.base < self.end

    def blocks(self, line_size: int) -> Iterator[BlockAddress]:
        """Iterate over the block addresses the range touches."""
        require_power_of_two(line_size, "line_size", GeometryError)
        first = self.base // line_size
        last = (self.end - 1) // line_size
        return iter(range(first, last + 1))

    def num_blocks(self, line_size: int) -> int:
        """Number of distinct cache lines the range touches."""
        require_power_of_two(line_size, "line_size", GeometryError)
        first = self.base // line_size
        last = (self.end - 1) // line_size
        return last - first + 1
