"""Benchmarks E2–E5: Figures 8a–8d — execution time at fixed capacity.

Each benchmark regenerates one sub-figure: execution time of SS, NSS and
P at a fixed total partition capacity across address ranges.
Reproduction criteria (the paper's shape): exact three-way ties while
the range fits the per-core private partition; SS at least as fast as P
beyond it, with the paper reporting average speedups of 1.34× / 2.13× /
1.10× / 1.02×.
"""

import pytest

from repro.experiments.fig8 import run_fig8

from bench_common import emit


def make_runner(subfigure):
    def run():
        return run_fig8(subfigure, num_requests=500)

    return run


def check_shape(result):
    for row in result.rows_with_fit():
        assert row.ss_cycles == row.nss_cycles == row.p_cycles, (
            "configurations must tie while the range fits the private "
            f"partition (range {row.address_range})"
        )
    exceeding = result.rows_exceeding()
    assert exceeding, "the sweep must cross the partition size"
    for row in exceeding:
        assert row.ss_speedup_vs_p >= 1.0, (
            f"SS must not lose to P beyond the partition size "
            f"(range {row.address_range}: {row.ss_speedup_vs_p:.2f}x)"
        )
    assert result.average_speedup_vs_p() > 1.0


@pytest.mark.parametrize("subfigure", ["8a", "8b", "8c", "8d"])
def test_fig8_execution_time(benchmark, subfigure):
    result = benchmark.pedantic(make_runner(subfigure), iterations=1, rounds=1)
    emit(result.render())
    emit(
        f"average SS speedup vs P:   {result.average_speedup_vs_p():.2f}x\n"
        f"average SS speedup vs NSS: {result.average_speedup_vs_nss():.2f}x"
    )
    check_shape(result)
