"""Benchmark E14 (extension): the admission planner at cluster scale.

Plans partition layouts for randomized 16-core tasksets on an
MPPA3-like cluster and measures planning throughput.  Checks: plans fit
the LLC, shared groups carry sequencers, and every admitted verdict is
consistent with its bound.
"""

import random

from repro.analysis.admission import PlatformSpec, TaskSpec, plan_admission
from repro.experiments.tables import render_table

from bench_common import emit

PLATFORM = PlatformSpec(
    num_cores=16, llc_sets=64, llc_ways=16, slot_width=50
)


def random_taskset(seed: int):
    rng = random.Random(seed)
    tasks = []
    for core in range(PLATFORM.num_cores):
        critical = rng.random() < 0.25
        tasks.append(
            TaskSpec(
                name=f"task{core}",
                core=core,
                # The private bound on a 16-core 1S-TDM bus is already
                # (2*16+1)*50 = 1650 cycles — slots are the floor, so
                # budgets below that are physically unmeetable.
                latency_budget_cycles=(
                    rng.choice([1_700, 2_500]) if critical
                    else rng.choice([25_000, 60_000, 120_000])
                ),
                footprint_bytes=rng.choice([2048, 4096, 8192, 16384]),
                criticality="ASIL-D" if critical else "QM",
                allow_sharing=not critical,
            )
        )
    return tasks


def plan_many(count: int = 50):
    plans = [plan_admission(random_taskset(seed), PLATFORM) for seed in range(count)]
    return plans


def test_admission_planning_at_scale(benchmark):
    plans = benchmark(plan_many)
    feasible = sum(1 for plan in plans if plan.feasible)
    shared_groups = [
        sum(1 for p in plan.partitions if p.is_shared) for plan in plans
    ]
    utilizations = [plan.utilization() for plan in plans]
    emit(
        render_table(
            ["metric", "value"],
            [
                ["tasksets planned", len(plans)],
                ["feasible", feasible],
                ["mean shared groups", f"{sum(shared_groups)/len(plans):.1f}"],
                ["mean LLC utilisation", f"{sum(utilizations)/len(plans):.0%}"],
            ],
            title="Admission planning: 16-core cluster, randomized tasksets",
        )
    )
    for plan in plans:
        assert plan.sets_used <= PLATFORM.llc_sets
        for partition in plan.partitions:
            assert partition.sequencer == partition.is_shared
        for verdict in plan.verdicts.values():
            assert verdict.admitted == (
                verdict.bound_cycles <= verdict.task.latency_budget_cycles
            )
    assert feasible == len(plans), "generous QM budgets must always fit"
