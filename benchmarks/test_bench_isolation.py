"""Benchmark E10 (extension): temporal isolation under partial sharing.

The paper's Section 6 deployment — some cores share a sequencer-ordered
partition, others keep private ones — is only certifiable if the
private cores are untouched by the sharers' behaviour.  Criterion: the
private cores' per-request latencies are bit-identical whether the
sharers are idle, moderately loaded, or storming; all observations stay
within their partitions' bounds.
"""

from repro.experiments.isolation import run_isolation

from bench_common import emit


def run():
    return run_isolation()


def test_partial_sharing_isolation(benchmark):
    result = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(result.render())
    assert result.private_cores_isolated(), (
        "private cores observed different latencies when sharer load changed"
    )
    assert result.bounds_hold()
