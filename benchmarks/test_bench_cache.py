"""Benchmark gates of the content-addressed result cache.

A cache that slows the first run down gets switched off, and one that
barely beats re-simulation is not worth its disk: the acceptance
criteria are **< 5% wall clock over the plain simulator on a cold run**
(the miss + store path) and **>= 10x on a warm re-run of the Figure 7
sweep** (every grid point replayed from the store), with byte-identical
figure tables in both directions.
"""

import gc
import random
import time

from repro.common.types import AccessType
from repro.experiments.fig7 import run_fig7
from repro.llc.partition import PartitionSpec
from repro.sim.cache import clear_result_cache, install_result_cache
from repro.sim.config import SystemConfig
from repro.sim.simulator import simulate
from repro.workloads.trace import MemoryTrace, TraceRecord

from bench_common import emit

NUM_CORES = 4
REQUESTS_PER_CORE = 6_000
LINE = 64


def _workload():
    rng = random.Random(2022)
    config = SystemConfig(
        num_cores=NUM_CORES,
        partitions=[
            PartitionSpec(
                name="shared",
                sets=list(range(8)),
                way_range=(0, 8),
                cores=tuple(range(NUM_CORES)),
            )
        ],
        llc_sets=8,
        llc_ways=8,
        record_events=False,
    )
    traces = {
        core: MemoryTrace(
            [
                TraceRecord(rng.randrange(256) * LINE, AccessType.WRITE)
                for _ in range(REQUESTS_PER_CORE)
            ],
            name=f"bench-core{core}",
        )
        for core in range(NUM_CORES)
    }
    return config, traces


def test_cold_run_overhead(benchmark, tmp_path_factory):
    """Fingerprint + store must cost < 5% of one real simulation."""
    config, traces = _workload()

    def run_plain():
        started = time.perf_counter()
        report = simulate(config, traces)
        return report, time.perf_counter() - started

    def run_cold_cached():
        # A fresh directory per round: every round is a true cold run
        # (miss, simulate, fingerprint, serialise, fsync, rename).
        directory = tmp_path_factory.mktemp("cold-cache")
        install_result_cache(directory)
        try:
            started = time.perf_counter()
            report = simulate(config, traces)
            elapsed = time.perf_counter() - started
        finally:
            clear_result_cache()
        return report, elapsed

    # Interleaved best-of-three per arm (the checkpoint bench's
    # discipline): single wall-clock samples on a shared CI box carry
    # enough scheduler noise to swamp a 5% gate, and the store's JSON
    # allocations can tip a gen-2 GC that walks the whole pytest heap.
    gc.collect()
    gc.freeze()
    try:
        plain_runs = [run_plain()]
        cold_runs = [
            benchmark.pedantic(run_cold_cached, iterations=1, rounds=1)
        ]
        for _ in range(2):
            plain_runs.append(run_plain())
            cold_runs.append(run_cold_cached())
    finally:
        gc.unfreeze()
    plain, plain_seconds = min(plain_runs, key=lambda pair: pair[1])
    cold, cold_seconds = min(cold_runs, key=lambda pair: pair[1])
    ratio = cold_seconds / plain_seconds
    emit(
        f"plain: {plain_seconds:.2f}s   cold-cached: {cold_seconds:.2f}s"
        f"   overhead: {ratio:.2f}x"
    )

    # Transparency: the cache must not perturb the simulation.
    assert cold.latencies() == plain.latencies()
    assert cold.total_slots == plain.total_slots

    assert ratio < 1.05, (
        f"a cold cached run costs {ratio:.2f}x wall clock (budget: "
        "< 1.05x); the fingerprint or the store path has regressed"
    )


def test_warm_fig7_sweep_speedup(benchmark, tmp_path):
    """A warm Figure 7 sweep must replay >= 10x faster than it ran."""
    cache = install_result_cache(tmp_path)
    try:
        started = time.perf_counter()
        cold = run_fig7(num_requests=400)
        cold_seconds = time.perf_counter() - started

        def warm_run():
            # Measure the disk path, not the in-process memo: a fresh
            # CLI invocation (the CI cache-smoke job) starts memo-cold.
            cache._memo.clear()
            begun = time.perf_counter()
            result = run_fig7(num_requests=400)
            return result, time.perf_counter() - begun

        warm, warm_seconds = min(
            [benchmark.pedantic(warm_run, iterations=1, rounds=1), warm_run()],
            key=lambda pair: pair[1],
        )
    finally:
        clear_result_cache()

    speedup = cold_seconds / warm_seconds
    emit(
        f"fig7 cold: {cold_seconds:.2f}s   warm: {warm_seconds:.2f}s"
        f"   speedup: {speedup:.1f}x over {len(warm.rows)} row(s)"
    )

    # Byte-identity: the replayed sweep renders the same figure table.
    assert warm.render() == cold.render()
    assert [row.observed_wcl for row in warm.rows] == [
        row.observed_wcl for row in cold.rows
    ]

    assert speedup >= 10.0, (
        f"a warm fig7 sweep only gained {speedup:.1f}x (budget: >= 10x); "
        "entry loading or report rebuilding has regressed"
    )
