"""Benchmark E11 (extension): scaling with the core count.

The paper's motivation is the trend toward more cores per cluster
(Kalray MPPA3: 16 cores per cluster).  This benchmark sweeps the sharer
count and shows the two bounds diverging — Theorem 4.7 growing ~n³,
Theorem 4.8 ~n² (sic: 2(n−1)·n·N with N = n) — while the simulator's
observed WCL on the same storm stays under both.
"""

from repro.analysis.wcl import (
    SharedPartitionParams,
    wcl_nss_cycles,
    wcl_ss_cycles,
)
from repro.common.types import AccessType
from repro.experiments.tables import render_table
from repro.llc.partition import PartitionSpec
from repro.sim.config import SystemConfig
from repro.sim.simulator import simulate
from repro.workloads.adversarial import conflict_storm_traces

from bench_common import emit

CORE_COUNTS = (2, 4, 6, 8)
WAYS = 8
SLOT = 50


def run_scaling():
    rows = []
    for cores in CORE_COUNTS:
        partition = PartitionSpec(
            "shared", [0], (0, WAYS), tuple(range(cores)), sequencer=True
        )
        config = SystemConfig(
            num_cores=cores,
            partitions=[partition],
            llc_sets=1,
            llc_ways=WAYS,
            slot_width=SLOT,
            max_slots=1_000_000,
        )
        traces = conflict_storm_traces(
            cores=list(range(cores)),
            partition_sets=1,
            lines_per_core=WAYS + 4,
            repeats=15,
        )
        report = simulate(config, traces)
        params = SharedPartitionParams(
            total_cores=cores,
            sharers=cores,
            ways=WAYS,
            partition_lines=WAYS,
            core_capacity_lines=64,
            slot_width=SLOT,
        )
        rows.append(
            [
                cores,
                report.observed_bus_wcl(),
                wcl_ss_cycles(params),
                wcl_nss_cycles(params),
                report.makespan,
            ]
        )
    return rows


def test_core_count_scaling(benchmark):
    rows = benchmark.pedantic(run_scaling, iterations=1, rounds=1)
    emit(
        render_table(
            ["cores", "observed WCL", "SS bound", "NSS bound", "makespan"],
            rows,
            title="Scaling: shared 8-way single-set partition, all cores sharing",
        )
    )
    for cores, observed, ss_bound, nss_bound, _makespan in rows:
        assert observed <= ss_bound, cores
        assert ss_bound < nss_bound
    # Bounds must be monotone in the core count.
    ss_bounds = [row[2] for row in rows]
    nss_bounds = [row[3] for row in rows]
    assert ss_bounds == sorted(ss_bounds)
    assert nss_bounds == sorted(nss_bounds)
    # The NSS/SS gap widens with the core count (the paper's case for
    # the set sequencer getting stronger as integration grows).
    gaps = [row[3] / row[2] for row in rows]
    assert gaps == sorted(gaps)
