"""Benchmark E6: the Section 4.1 unbounded-WCL scenario.

Regenerates the Figure 2 dynamics: under a TDM schedule that grants the
interfering core two slots per period, the victim's latency grows
linearly with the interferer's stream (unbounded in the limit); under
1S-TDM (Definition 4.1) it is flat and sits far below the Theorem 4.7
bound.
"""

from repro.analysis.unbounded import starvation_witness
from repro.experiments.tables import render_table

from bench_common import emit


def run():
    return starvation_witness(stream_lengths=(50, 100, 200, 400), ways=4)


def test_unbounded_scenario(benchmark):
    result = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        render_table(
            ["interferer stream", "multi-slot TDM (cycles)", "1S-TDM (cycles)"],
            [
                list(row)
                for row in zip(
                    result.stream_lengths,
                    result.multi_slot_latencies,
                    result.one_slot_latencies,
                )
            ],
            title="Section 4.1: victim latency vs interferer stream length",
        )
    )
    assert result.multi_slot_growth
    assert result.one_slot_bounded
    assert len(set(result.one_slot_latencies)) == 1
