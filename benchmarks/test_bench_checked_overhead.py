"""Benchmark: checked-mode (per-slot invariant monitor) overhead.

Checked mode re-verifies nine model invariants after every bus slot of
the Figure 7 configuration.  It exists for debugging and CI smoke runs,
not for production sweeps — but it must stay usable: the acceptance
criterion is **under 3× wall clock** versus the unmonitored simulator on
the same workload, and bit-identical results.
"""

import time

from repro.experiments.fig7 import run_fig7

from bench_common import emit

NUM_REQUESTS = 200


def _timed(checked):
    started = time.perf_counter()
    result = run_fig7(num_requests=NUM_REQUESTS, checked=checked)
    return result, time.perf_counter() - started


def test_checked_mode_overhead(benchmark):
    plain, plain_seconds = _timed(checked=False)

    def run_checked():
        return _timed(checked=True)

    monitored, checked_seconds = benchmark.pedantic(
        run_checked, iterations=1, rounds=1
    )
    ratio = checked_seconds / plain_seconds
    emit(
        f"unchecked: {plain_seconds:.2f}s   checked: {checked_seconds:.2f}s"
        f"   overhead: {ratio:.2f}x"
    )

    # Transparency: the monitor must not perturb the simulation.
    assert monitored.all_within_bounds()
    for plain_row, checked_row in zip(plain.rows, monitored.rows):
        assert plain_row == checked_row

    assert ratio < 3.0, (
        f"checked mode costs {ratio:.2f}x wall clock (budget: < 3x); "
        "an invariant's per-slot check has regressed"
    )
