"""Benchmark E12 (extension): average case on realistic phased workloads.

The paper's synthetic traffic is uniform random; real control tasks
alternate hot loops, scans and lookups.  This benchmark replays the
Markov-phased control-task workload on SS / NSS / P at the Figure 8a
capacity and reports execution time and LLC hit rates — the average-
case picture with temporal locality present.
"""

from repro.experiments.configs import fig8_system
from repro.experiments.tables import render_table
from repro.llc.partition import PartitionKind
from repro.sim.simulator import simulate
from repro.workloads.phased import generate_phased_workload

from bench_common import emit


def run():
    traces = generate_phased_workload(
        [0, 1], num_requests=1500, footprint_bytes=4096
    )
    rows = []
    for kind in (PartitionKind.SS, PartitionKind.NSS, PartitionKind.P):
        config = fig8_system(kind, num_cores=2, capacity_bytes=4096)
        report = simulate(config, traces)
        rows.append(
            [
                kind.value,
                report.makespan,
                f"{report.llc_stats.hit_rate:.2f}",
                report.dram_reads,
            ]
        )
    return rows


def test_phased_average_case(benchmark):
    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        render_table(
            ["config", "makespan", "LLC hit rate", "DRAM reads"],
            rows,
            title="Phased control-task workload, 2 cores / 4096B capacity",
        )
    )
    by_kind = {row[0]: row for row in rows}
    # Shared capacity must not lose to the strict split on this
    # locality-rich workload (hot loops mostly hit privately anyway).
    assert by_kind["SS"][1] <= by_kind["P"][1] * 1.6
    # And everyone finishes with a sane hit rate.
    for row in rows:
        assert float(row[2]) >= 0.0
