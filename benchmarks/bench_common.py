"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's evaluation artifacts
(Figure 7, Figures 8a–8d, the Section 5.1 analytical constants, the
Section 4.1 unbounded scenario) and prints the resulting table so the
run doubles as the reproduction record.  ``pytest benchmarks/
--benchmark-only`` runs them all.
"""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print a result table unconditionally (even under capture)."""
    sys.stdout.write("\n" + text + "\n")
