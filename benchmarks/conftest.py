"""Benchmark harness package marker (helpers live in bench_common)."""
