"""Benchmark P1: parallel sweep speedup and determinism.

Runs the same seed sweep serially and through the fork-backed pool
(:mod:`repro.sim.parallel`) and asserts two things:

* **speedup** — with ``jobs=4`` the wall clock drops by at least 2.5×.
  Each task carries a fixed latency component (injected in the trace
  factory, which runs inside the worker), so the measurement exercises
  the pool's ability to overlap task wall-clock time and stays
  meaningful on single-core CI runners.
* **determinism** — the parallel :class:`SweepResult` and the robust
  campaign's manifest are bit-identical to the serial ones.
"""

import time

import pytest

from repro.robustness.runner import (
    CampaignRunner,
    RunManifest,
    sweep_seeds_robust,
)
from repro.sim.parallel import parallel_available
from repro.sim.sweeps import sweep_seeds
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)

from bench_common import emit

pytestmark = pytest.mark.skipif(
    not parallel_available(), reason="fork start method unavailable"
)

SEEDS = list(range(1, 9))
#: Fixed per-task latency (seconds), injected where the worker runs.
TASK_LATENCY = 0.25


def _config():
    from repro.llc.partition import PartitionSpec
    from repro.sim.config import SystemConfig

    return SystemConfig(
        num_cores=2,
        partitions=[
            PartitionSpec(
                name="shared", sets=[0], way_range=(0, 4), cores=(0, 1)
            )
        ],
        llc_sets=4,
        llc_ways=4,
    )


def trace_factory(seed):
    time.sleep(TASK_LATENCY)  # executes inside the worker process
    workload = SyntheticWorkloadConfig(
        num_requests=40, address_range_size=1024, seed=seed
    )
    return generate_disjoint_workload(workload, [0, 1])


def test_parallel_sweep_speedup(benchmark):
    config = _config()

    started = time.perf_counter()
    serial = sweep_seeds(config, trace_factory, SEEDS, jobs=1)
    serial_elapsed = time.perf_counter() - started

    def parallel_run():
        started = time.perf_counter()
        result = sweep_seeds(config, trace_factory, SEEDS, jobs=4)
        return result, time.perf_counter() - started

    parallel, parallel_elapsed = benchmark.pedantic(
        parallel_run, iterations=1, rounds=1
    )
    speedup = serial_elapsed / parallel_elapsed
    emit(
        f"parallel sweep: serial {serial_elapsed:.2f}s, "
        f"jobs=4 {parallel_elapsed:.2f}s, speedup {speedup:.2f}x"
    )

    assert parallel == serial, "parallel result must be bit-identical"
    assert speedup >= 2.5, (
        f"jobs=4 over {len(SEEDS)} tasks must be at least 2.5x faster, "
        f"got {speedup:.2f}x"
    )


def test_parallel_campaign_manifest_is_deterministic(benchmark, tmp_path):
    config = _config()

    def both_runs():
        serial = sweep_seeds_robust(
            config,
            trace_factory,
            SEEDS,
            runner=CampaignRunner(manifest_path=tmp_path / "serial.json"),
        )
        parallel = sweep_seeds_robust(
            config,
            trace_factory,
            SEEDS,
            runner=CampaignRunner(
                manifest_path=tmp_path / "parallel.json", jobs=4
            ),
        )
        return serial, parallel

    serial, parallel = benchmark.pedantic(both_runs, iterations=1, rounds=1)
    assert parallel.result == serial.result
    assert parallel.completed_seeds == serial.completed_seeds
    serial_manifest = RunManifest.load(tmp_path / "serial.json")
    parallel_manifest = RunManifest.load(tmp_path / "parallel.json")
    assert parallel_manifest.results() == serial_manifest.results()
    emit(
        "parallel campaign manifest matches serial for "
        f"{len(SEEDS)} seeds (status + payload per task)"
    )
