"""Benchmark E7: the analytical constants of Section 5.1 and the
abstract's WCL-reduction claim.

The closed forms (Theorems 4.7/4.8 and the private bound) must
regenerate the paper's exact numbers — 5000, 979 250 and 450 cycles —
and the table reports the SS-vs-NSS reduction factor at several
partition sizes, including the abstract's 128-line configuration.
"""

from repro.analysis.wcl import (
    SharedPartitionParams,
    wcl_nss_cycles,
    wcl_private_cycles,
    wcl_reduction_factor,
    wcl_ss_cycles,
)
from repro.experiments.tables import render_table

from bench_common import emit


def paper_params(partition_lines=16, core_capacity=64):
    return SharedPartitionParams(
        total_cores=4,
        sharers=4,
        ways=16,
        partition_lines=partition_lines,
        core_capacity_lines=core_capacity,
        slot_width=50,
    )


def compute_tables():
    constants = [
        ["SS(1,16,4)", wcl_ss_cycles(paper_params()), 5_000],
        ["NSS(1,16,4)", wcl_nss_cycles(paper_params()), 979_250],
        ["P(1,16)", wcl_private_cycles(4, 50), 450],
    ]
    reductions = []
    for lines in (16, 32, 64, 128):
        params = paper_params(partition_lines=lines, core_capacity=max(64, lines))
        reductions.append(
            [
                lines,
                wcl_nss_cycles(params),
                wcl_ss_cycles(params),
                f"{wcl_reduction_factor(params):.0f}x",
            ]
        )
    return constants, reductions


def test_section51_constants(benchmark):
    constants, reductions = benchmark(compute_tables)
    emit(
        render_table(
            ["config", "computed (cycles)", "paper (cycles)"],
            constants,
            title="Section 5.1 analytical WCLs",
        )
    )
    emit(
        render_table(
            ["partition lines", "NSS bound", "SS bound", "reduction"],
            reductions,
            title="WCL reduction from the set sequencer (Theorem 4.7 / 4.8)",
        )
    )
    for _config, computed, paper in constants:
        assert computed == paper

    # The abstract claims a 2048x reduction for a 128-line 16-way
    # partition; the formulas as printed give ~1486x (Eq. 1/2 with
    # m = 128).  We assert the computed order of magnitude and record
    # the discrepancy in EXPERIMENTS.md.
    reduction_128 = wcl_reduction_factor(
        paper_params(partition_lines=128, core_capacity=128)
    )
    assert 1_000 < reduction_128 < 2_100
