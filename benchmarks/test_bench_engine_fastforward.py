"""Benchmark: idle-slot fast-forward speedup gate.

The fast engine exists for one reason: sparse workloads — long think
times between accesses — spend almost all their slots idle, and the
reference loop burns a full arbitration pass on each one.  The gate:

* **sparse** (think gaps of ~200k cycles, thousands of idle slots per
  access): the fast engine must finish at least **5× faster** than the
  reference loop, with byte-identical exported reports;
* **dense** (back-to-back accesses, nothing to skip): the per-slot
  prefilter must stay in the noise — fast may cost at most **1.5×**
  the reference wall clock.

Times are min-of-N ``perf_counter`` so scheduler jitter does not flake
the gate.
"""

import dataclasses
import json
import time

from repro.experiments.configs import build_system_for_notation
from repro.sim.export import report_to_dict
from repro.sim.simulator import simulate
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)

from bench_common import emit

#: The 5× sparse gate and 1.5× dense bound, asserted below.
SPARSE_MIN_SPEEDUP = 5.0
DENSE_MAX_OVERHEAD = 1.5


def _config(engine):
    base = build_system_for_notation("SS(1,16,4)", num_cores=4)
    return dataclasses.replace(base, engine=engine)


def _workload(num_requests, max_think_cycles, seed=2022):
    workload = SyntheticWorkloadConfig(
        num_requests=num_requests,
        address_range_size=4096,
        write_fraction=1.0,
        seed=seed,
        max_think_cycles=max_think_cycles,
    )
    return generate_disjoint_workload(workload, [0, 1, 2, 3])


def _best_of(engine, traces, rounds):
    """Min-of-N wall clock plus the (identical every round) report."""
    config = _config(engine)
    best = float("inf")
    report = None
    for _ in range(rounds):
        started = time.perf_counter()
        report = simulate(config, traces)
        best = min(best, time.perf_counter() - started)
    return best, report


def _exported(report):
    return json.dumps(report_to_dict(report), sort_keys=True)


def test_sparse_fast_forward_speedup(benchmark):
    traces = _workload(num_requests=40, max_think_cycles=200_000)
    reference_seconds, reference_report = _best_of("reference", traces, rounds=2)

    def run_fast():
        return _best_of("fast", traces, rounds=3)

    fast_seconds, fast_report = benchmark.pedantic(
        run_fast, iterations=1, rounds=1
    )
    speedup = reference_seconds / fast_seconds
    emit(
        f"sparse (think<=200k): reference {reference_seconds:.3f}s"
        f"   fast {fast_seconds:.3f}s   speedup {speedup:.1f}x"
    )

    # Bit-identity first: a fast engine that wins by diverging loses.
    assert _exported(fast_report) == _exported(reference_report)
    assert fast_report.slot_usage == reference_report.slot_usage
    assert fast_report.total_slots == reference_report.total_slots

    assert speedup >= SPARSE_MIN_SPEEDUP, (
        f"fast engine is only {speedup:.1f}x on the sparse workload "
        f"(gate: >= {SPARSE_MIN_SPEEDUP}x); the fast-forward path has "
        "regressed or stopped engaging"
    )


def test_dense_no_regression(benchmark):
    traces = _workload(num_requests=1500, max_think_cycles=0)
    reference_seconds, reference_report = _best_of("reference", traces, rounds=3)

    def run_fast():
        return _best_of("fast", traces, rounds=3)

    fast_seconds, fast_report = benchmark.pedantic(
        run_fast, iterations=1, rounds=1
    )
    overhead = fast_seconds / reference_seconds
    emit(
        f"dense (no think): reference {reference_seconds:.3f}s"
        f"   fast {fast_seconds:.3f}s   overhead {overhead:.2f}x"
    )

    assert _exported(fast_report) == _exported(reference_report)

    assert overhead <= DENSE_MAX_OVERHEAD, (
        f"fast engine costs {overhead:.2f}x on a dense workload "
        f"(budget: <= {DENSE_MAX_OVERHEAD}x); the per-slot prefilter "
        "has grown too expensive"
    )
