"""Benchmark E9 (extension): bound tightness under adversarial steering.

Not a paper artifact — it quantifies the paper's remark that the
Theorem 4.7 bound is "grossly pessimistic" while Theorem 4.8 is usable:
adversarial replacement + write-back-first arbitration push the
observed WCL to a double-digit percentage of the SS bound but to well
under 1% of the NSS bound.
"""

from repro.experiments.tightness import run_tightness

from bench_common import emit


def run():
    return run_tightness(repeats=30)


def test_bound_tightness(benchmark):
    result = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(result.render())

    for config in ("SS(1,16,4)", "NSS(1,16,4)"):
        steered = result.row(config, True)
        unsteered = result.row(config, False)
        assert steered.observed_wcl <= steered.bound
        assert steered.observed_wcl >= unsteered.observed_wcl

    # The asymmetry the paper motivates the sequencer with: steering
    # gets visibly close to the SS bound but nowhere near the NSS one.
    assert result.row("SS(1,16,4)", True).ratio > 0.05
    assert result.row("NSS(1,16,4)", True).ratio < 0.05
