"""Benchmark: fuzz-harness overhead (oracle on) vs plain simulation.

Every fuzz case runs with event recording on and is then replayed by
the differential oracle.  That second pass must stay cheap, or fuzz
budgets collapse and CI stops exploring: the acceptance criterion is
**under 5× wall clock** versus running the same generated scenarios
through the bare simulator with events off, and a floor on absolute
throughput so a 200-case smoke budget stays in seconds.
"""

import dataclasses
import time

from repro.robustness.fuzz import (
    config_from_dict,
    generate_cases,
    run_fuzz_case,
    traces_from_case,
)
from repro.sim.simulator import simulate

from bench_common import emit

BUDGET = 120
SEED = 0


def _plain_seconds(cases):
    """The same scenarios on the bare engine: no events, no oracle."""
    started = time.perf_counter()
    for case in cases:
        config = dataclasses.replace(
            config_from_dict(case.config), record_events=False
        )
        simulate(config, traces_from_case(case))
    return time.perf_counter() - started


def test_fuzz_harness_overhead(benchmark):
    cases = generate_cases(BUDGET, SEED)
    plain_seconds = _plain_seconds(cases)

    def run_fuzzed():
        started = time.perf_counter()
        results = [run_fuzz_case(case) for case in cases]
        return results, time.perf_counter() - started

    results, fuzz_seconds = benchmark.pedantic(
        run_fuzzed, iterations=1, rounds=1
    )
    ratio = fuzz_seconds / plain_seconds
    emit(
        f"plain: {BUDGET / plain_seconds:.0f} configs/s   "
        f"oracle: {BUDGET / fuzz_seconds:.0f} configs/s   "
        f"overhead: {ratio:.2f}x"
    )

    # Transparency first: the harness found nothing on a healthy engine.
    assert all(result.passed for result in results)
    # The oracle pass must stay cheap enough for CI fuzz budgets.
    assert ratio < 5.0, f"fuzz-harness overhead {ratio:.2f}x exceeds 5x"
    # And absolute throughput must keep a 200-case smoke run in seconds.
    assert BUDGET / fuzz_seconds > 20, "fuzz throughput below 20 configs/s"
