"""Benchmark E1: Figure 7 — observed vs analytical WCL (SS / NSS / P).

Regenerates the paper's Figure 7: the observed worst-case latency of the
three partition configurations across address ranges, against the
analytical bounds of 5000 (SS), 979 250 (NSS) and 450 (P) cycles.
Reproduction criteria: every observation under its bound; NSS's observed
WCL at least SS's; P's the lowest.
"""

from repro.experiments.fig7 import run_fig7

from bench_common import emit


def run():
    return run_fig7(num_requests=300)


def run_adversarial():
    return run_fig7(num_requests=300, adversarial=True)


def test_fig7_wcl(benchmark):
    result = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(result.render())

    assert result.all_within_bounds()
    ss_max = result.max_observed("SS(1,16,4)")
    nss_max = result.max_observed("NSS(1,16,4)")
    p_max = result.max_observed("P(1,16)")
    assert nss_max >= ss_max, "NSS must observe at least SS's WCL (Obs. 3)"
    assert p_max <= ss_max, "the private partition observes the lowest WCL"
    assert p_max <= 450, "P must sit under the paper's 450-cycle bound"


def test_fig7_wcl_adversarial(benchmark):
    """The steered variant separates NSS from SS at *every* range,
    matching the published figure's per-range appearance."""
    result = benchmark.pedantic(run_adversarial, iterations=1, rounds=1)
    emit(result.render())

    assert result.all_within_bounds()
    ss_by_range = {
        row.address_range: row.observed_wcl
        for row in result.for_config("SS(1,16,4)")
    }
    for row in result.for_config("NSS(1,16,4)"):
        assert row.observed_wcl > ss_by_range[row.address_range], (
            f"NSS must exceed SS at range {row.address_range}"
        )
    for row in result.for_config("P(1,16)"):
        assert row.observed_wcl <= 450
