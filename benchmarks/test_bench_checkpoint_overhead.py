"""Benchmark: periodic-checkpoint overhead at the default interval.

Checkpointing exists so a killed campaign loses at most one interval of
work — but a safety net nobody enables is worthless, so it must be
cheap enough to leave on.  The acceptance criterion is **at most 10%
wall clock** over the plain simulator at the default interval
(``DEFAULT_POLL_SLOTS``), with a byte-identical report.
"""

import gc
import random
import time

from repro.common.types import AccessType
from repro.llc.partition import PartitionSpec
from repro.robustness.checkpoint import DEFAULT_POLL_SLOTS
from repro.sim.config import SystemConfig
from repro.sim.simulator import simulate
from repro.workloads.trace import MemoryTrace, TraceRecord

from bench_common import emit

NUM_CORES = 4
REQUESTS_PER_CORE = 6_000
LINE = 64


def _workload():
    rng = random.Random(2022)
    config = SystemConfig(
        num_cores=NUM_CORES,
        partitions=[
            PartitionSpec(
                name="shared",
                sets=list(range(8)),
                way_range=(0, 8),
                cores=tuple(range(NUM_CORES)),
            )
        ],
        llc_sets=8,
        llc_ways=8,
        record_events=False,
    )
    traces = {
        core: MemoryTrace(
            [
                TraceRecord(rng.randrange(256) * LINE, AccessType.WRITE)
                for _ in range(REQUESTS_PER_CORE)
            ],
            name=f"bench-core{core}",
        )
        for core in range(NUM_CORES)
    }
    return config, traces


def test_checkpoint_overhead(benchmark, tmp_path):
    config, traces = _workload()

    def run_plain():
        started = time.perf_counter()
        report = simulate(config, traces)
        return report, time.perf_counter() - started

    def run_checkpointed():
        path = tmp_path / "bench.ckpt"
        started = time.perf_counter()
        report = simulate(
            config,
            traces,
            checkpoint_path=path,
            checkpoint_every_slots=DEFAULT_POLL_SLOTS,
        )
        return report, time.perf_counter() - started

    # Interleaved best-of-three per arm: a single multi-second
    # wall-clock sample on a shared CI box carries enough scheduler
    # noise to swamp a 10% gate, and alternating the arms exposes both
    # to the same load drift.  The snapshot allocations can also tip a
    # gen-2 GC that walks the whole pytest heap — a harness artifact,
    # not a checkpoint cost — so the imported object graph is frozen
    # out of collection scope.
    gc.collect()
    gc.freeze()
    try:
        plain_runs = [run_plain()]
        ckpt_runs = [
            benchmark.pedantic(run_checkpointed, iterations=1, rounds=1)
        ]
        for _ in range(2):
            plain_runs.append(run_plain())
            ckpt_runs.append(run_checkpointed())
    finally:
        gc.unfreeze()
    plain, plain_seconds = min(plain_runs, key=lambda pair: pair[1])
    checkpointed, ckpt_seconds = min(ckpt_runs, key=lambda pair: pair[1])
    saves = plain.total_slots // DEFAULT_POLL_SLOTS
    ratio = ckpt_seconds / plain_seconds
    emit(
        f"plain: {plain_seconds:.2f}s   checkpointed: {ckpt_seconds:.2f}s"
        f"   overhead: {ratio:.2f}x over {saves} save(s) "
        f"(interval: {DEFAULT_POLL_SLOTS} slots)"
    )

    # Transparency: checkpointing must not perturb the simulation.
    assert checkpointed.latencies() == plain.latencies()
    assert checkpointed.total_slots == plain.total_slots

    assert ratio < 1.10, (
        f"checkpointing costs {ratio:.2f}x wall clock (budget: < 1.10x) "
        f"at the default {DEFAULT_POLL_SLOTS}-slot interval; either the "
        "snapshot walk or the fsync path has regressed"
    )
