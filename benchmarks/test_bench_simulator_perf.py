"""Simulator-throughput benchmark (not a paper artifact).

Measures bus slots simulated per second on the paper's 4-core platform
so performance regressions in the engine are visible across revisions.
"""

from repro.experiments.configs import build_system_for_notation
from repro.sim.simulator import simulate
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)

from bench_common import emit


def make_inputs():
    config = build_system_for_notation("SS(4,16,4)", num_cores=4)
    workload = SyntheticWorkloadConfig(
        num_requests=400, address_range_size=8192, seed=11
    )
    traces = generate_disjoint_workload(workload, range(4))
    return config, traces


def test_engine_throughput(benchmark):
    config, traces = make_inputs()
    report = benchmark(lambda: simulate(config, traces))
    assert not report.timed_out
    emit(
        f"simulated {report.total_slots} slots / {report.total_cycles} cycles; "
        f"{len(report.requests)} LLC requests completed"
    )
