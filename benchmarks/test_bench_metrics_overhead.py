"""Benchmark: observability overhead gate.

The observability layer promises to be effectively free when disabled
and cheap when enabled.  Two gates, both on the same workload:

* post-run collection (``with_metrics=True`` on an experiment): the
  full catalogue build must cost **under 15%** wall clock versus the
  bare run;
* the live per-slot sampler (``record_metrics=True``): its hot-path
  sampling must also cost **under 15%** versus the unsampled engine.

Both paths must leave the simulation results untouched — observation is
passive.  Ratios use best-of-N timing to damp scheduler noise.
"""

import dataclasses
import time

from repro.experiments.configs import build_system_for_notation
from repro.experiments.fig7 import run_fig7
from repro.sim.simulator import simulate
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)

from bench_common import emit

NUM_REQUESTS = 200
MAX_OVERHEAD = 1.15
ROUNDS = 3


def _best_of(fn, rounds=ROUNDS):
    result, best = None, float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def test_collection_overhead(benchmark):
    plain, plain_seconds = _best_of(
        lambda: run_fig7(num_requests=NUM_REQUESTS)
    )

    def run_with_metrics():
        return _best_of(
            lambda: run_fig7(num_requests=NUM_REQUESTS, with_metrics=True)
        )

    collected, metrics_seconds = benchmark.pedantic(
        run_with_metrics, iterations=1, rounds=1
    )
    ratio = metrics_seconds / plain_seconds
    emit(
        f"bare: {plain_seconds:.2f}s   with metrics: {metrics_seconds:.2f}s"
        f"   overhead: {ratio:.2f}x"
    )

    # Passivity: collection must not perturb the experiment.
    assert plain.rows == collected.rows
    assert plain.metrics is None and collected.metrics is not None

    assert ratio < MAX_OVERHEAD, (
        f"metrics collection costs {ratio:.2f}x wall clock "
        f"(budget: < {MAX_OVERHEAD}x); collect_metrics or the merge "
        "has regressed"
    )


def test_sampler_overhead(benchmark):
    config = build_system_for_notation("SS(1,16,4)", num_cores=4)
    traces = generate_disjoint_workload(
        SyntheticWorkloadConfig(
            num_requests=400, address_range_size=4096, seed=7
        ),
        range(config.num_cores),
    )
    plain, plain_seconds = _best_of(lambda: simulate(config, traces))
    sampled_config = dataclasses.replace(config, record_metrics=True)

    def run_sampled():
        return _best_of(lambda: simulate(sampled_config, traces))

    sampled, sampled_seconds = benchmark.pedantic(
        run_sampled, iterations=1, rounds=1
    )
    ratio = sampled_seconds / plain_seconds
    emit(
        f"unsampled: {plain_seconds:.2f}s   sampled: {sampled_seconds:.2f}s"
        f"   overhead: {ratio:.2f}x"
    )

    # Passivity: sampling must not perturb the simulation.
    assert sampled.makespan == plain.makespan
    assert sampled.observed_wcl() == plain.observed_wcl()
    # Disabled means disabled: the plain run carries no sampler output.
    assert plain.metrics is None and sampled.metrics is not None

    assert ratio < MAX_OVERHEAD, (
        f"per-slot sampling costs {ratio:.2f}x wall clock "
        f"(budget: < {MAX_OVERHEAD}x); SlotSampler.sample has regressed"
    )
