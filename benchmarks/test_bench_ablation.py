"""Benchmark E8: ablations of the design choices DESIGN.md calls out.

Three ablations on the Figure 7 storm workload:

* replacement policy — the analysis is policy-agnostic (Section 4.3),
  so the SS bound must hold for every policy;
* PRB/PWB arbitration — round-robin vs write-back-first vs
  request-first;
* sequencer on/off — the observed-WCL gap the set sequencer buys.
"""

import dataclasses

import pytest

from repro.analysis.wcl import SharedPartitionParams, wcl_ss_cycles, wcl_nss_cycles
from repro.bus.arbiter import ArbitrationPolicy
from repro.experiments.configs import build_system_for_notation
from repro.experiments.tables import render_table
from repro.sim.simulator import simulate
from repro.workloads.adversarial import conflict_storm_traces

from bench_common import emit

PARAMS = SharedPartitionParams(
    total_cores=4,
    sharers=4,
    ways=16,
    partition_lines=16,
    core_capacity_lines=64,
    slot_width=50,
)


def storm():
    return conflict_storm_traces(
        cores=[0, 1, 2, 3], partition_sets=1, lines_per_core=20, repeats=25
    )


def run_policy_ablation():
    rows = []
    for policy in ("lru", "fifo", "plru", "random", "round-robin", "nmru"):
        config = build_system_for_notation(
            "SS(1,16,4)", num_cores=4, llc_policy=policy
        )
        report = simulate(config, storm())
        rows.append([policy, report.observed_wcl(), wcl_ss_cycles(PARAMS)])
    return rows


def run_arbitration_ablation():
    """Arbitration policies on the storm.

    ``request-first`` is expected to *starve*: a blocked core never
    yields a slot to its write-backs, so no pending eviction ever
    frees and every sharer deadlocks — the model-level reason the paper
    requires a predictable PRB/PWB round-robin (Section 3).  The run is
    capped at a small slot budget and reported as starved.
    """
    rows = []
    for policy in ArbitrationPolicy:
        config = dataclasses.replace(
            build_system_for_notation(
                "NSS(1,16,4)", num_cores=4, max_slots=50_000
            ),
            arbitration=policy,
        )
        report = simulate(config, storm())
        rows.append(
            [
                policy.value,
                report.observed_wcl(),
                report.makespan,
                "yes" if report.starved_cores() else "no",
            ]
        )
    return rows


def run_sequencer_ablation():
    rows = []
    for notation in ("SS(1,16,4)", "NSS(1,16,4)"):
        config = build_system_for_notation(notation, num_cores=4)
        report = simulate(config, storm())
        rows.append(
            [
                notation,
                report.observed_wcl(),
                report.llc_blocked_slots,
                report.makespan,
            ]
        )
    return rows


def test_replacement_policy_ablation(benchmark):
    rows = benchmark.pedantic(run_policy_ablation, iterations=1, rounds=1)
    emit(
        render_table(
            ["policy", "observed WCL", "SS bound"],
            rows,
            title="Ablation: replacement policy (storm, SS(1,16,4))",
        )
    )
    for policy, observed, bound in rows:
        assert observed <= bound, policy


def test_arbitration_ablation(benchmark):
    rows = benchmark.pedantic(run_arbitration_ablation, iterations=1, rounds=1)
    emit(
        render_table(
            ["arbitration", "observed WCL", "makespan", "starved"],
            rows,
            title="Ablation: PRB/PWB arbitration (storm, NSS(1,16,4))",
        )
    )
    bound = wcl_nss_cycles(PARAMS)
    by_policy = {row[0]: row for row in rows}
    for policy in (ArbitrationPolicy.ROUND_ROBIN, ArbitrationPolicy.WRITEBACK_FIRST):
        row = by_policy[policy.value]
        assert row[1] <= bound, policy
        assert row[3] == "no", policy
    # Request-first starves the write-back path and with it every
    # sharer — the reason the system model mandates round-robin.
    assert by_policy[ArbitrationPolicy.REQUEST_FIRST.value][3] == "yes"


def test_sequencer_ablation(benchmark):
    rows = benchmark.pedantic(run_sequencer_ablation, iterations=1, rounds=1)
    emit(
        render_table(
            ["config", "observed WCL", "blocked slots", "makespan"],
            rows,
            title="Ablation: set sequencer on/off (storm)",
        )
    )
    ss_row, nss_row = rows
    assert nss_row[1] >= ss_row[1], "sequencer must not worsen observed WCL"
