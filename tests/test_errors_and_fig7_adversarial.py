"""Error-hierarchy checks and the adversarial Figure 7 variant."""

import pytest

from repro.common.errors import (
    AnalysisError,
    CampaignError,
    ConfigurationError,
    GeometryError,
    InvariantViolation,
    PartitionError,
    ReproError,
    ScheduleError,
    SimulationError,
    TaskTimeoutError,
    TraceError,
)
from repro.experiments.fig7 import run_fig7


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error",
        [
            ConfigurationError,
            GeometryError,
            ScheduleError,
            PartitionError,
            SimulationError,
            InvariantViolation,
            TraceError,
            AnalysisError,
            CampaignError,
            TaskTimeoutError,
        ],
    )
    def test_everything_derives_from_repro_error(self, error):
        assert issubclass(error, ReproError)

    @pytest.mark.parametrize(
        "error", [GeometryError, ScheduleError, PartitionError]
    )
    def test_configuration_refinements(self, error):
        assert issubclass(error, ConfigurationError)

    def test_simulation_error_is_not_configuration(self):
        # Internal invariant failures must be distinguishable from bad
        # user input.
        assert not issubclass(SimulationError, ConfigurationError)

    def test_catching_the_base_class_catches_everything(self):
        from repro import PartitionNotation

        with pytest.raises(ReproError):
            PartitionNotation.parse("garbage")

    def test_invariant_violation_is_a_simulation_error(self):
        # Checked mode reports model corruption through the same
        # channel the engine's own guards use.
        assert issubclass(InvariantViolation, SimulationError)

    def test_task_timeout_is_a_campaign_error(self):
        assert issubclass(TaskTimeoutError, CampaignError)
        assert not issubclass(CampaignError, SimulationError)

    def test_invariant_violation_carries_context(self):
        violation = InvariantViolation(
            "inclusivity", "stale copy", slot=12, core=2, set_index=0
        )
        assert violation.invariant == "inclusivity"
        assert violation.slot == 12
        assert violation.core == 2
        assert violation.set_index == 0
        assert "slot 12" in str(violation)


class TestFig7Adversarial:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(
            address_ranges=(1024, 4096), num_requests=150, adversarial=True
        )

    def test_still_within_bounds(self, result):
        assert result.all_within_bounds()

    def test_nss_exceeds_ss_at_every_range(self, result):
        ss = {r.address_range: r.observed_wcl for r in result.for_config("SS(1,16,4)")}
        for row in result.for_config("NSS(1,16,4)"):
            assert row.observed_wcl > ss[row.address_range]

    def test_private_partition_untouched_by_steering(self, result):
        for row in result.for_config("P(1,16)"):
            assert row.observed_wcl <= 450

    def test_cli_flag(self, capsys):
        from repro.cli import main

        assert main(["fig7", "--requests", "60", "--adversarial"]) == 0
        assert "Figure 7" in capsys.readouterr().out
