"""Tests for the configuration comparison harness."""

import pytest

from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.experiments.compare import compare_notations


@pytest.fixture(scope="module")
def result():
    return compare_notations(
        ["SS(2,16,4)", "NSS(2,16,4)", "P(1,16)"],
        suite="storm",
        num_requests=120,
    )


class TestCompareNotations:
    def test_one_row_per_notation(self, result):
        assert [row.notation for row in result.rows] == [
            "SS(2,16,4)",
            "NSS(2,16,4)",
            "P(1,16)",
        ]

    def test_analytical_bounds_attached(self, result):
        assert result.row("SS(2,16,4)").analytical_wcl == 5_000
        assert result.row("P(1,16)").analytical_wcl == 450

    def test_observed_within_analytical(self, result):
        for row in result.rows:
            if row.analytical_wcl is not None:
                assert row.observed_wcl <= row.analytical_wcl

    def test_headroom_property(self, result):
        row = result.row("P(1,16)")
        assert row.bound_headroom == pytest.approx(
            row.analytical_wcl / row.observed_wcl
        )

    def test_fastest_and_lowest_wcl_selectors(self, result):
        assert result.fastest().makespan == min(r.makespan for r in result.rows)
        assert result.lowest_wcl().observed_wcl == min(
            r.observed_wcl for r in result.rows
        )

    def test_sequencer_beats_best_effort_wcl_on_storm(self, result):
        assert (
            result.row("SS(2,16,4)").observed_wcl
            <= result.row("NSS(2,16,4)").observed_wcl
        )

    def test_render(self, result):
        text = result.render()
        assert "SS(2,16,4)" in text and "hit rate" in text

    def test_unknown_row_rejected(self, result):
        with pytest.raises(KeyError):
            result.row("P(2,16)")

    def test_empty_notations_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_notations([])

    def test_same_traces_across_configs(self):
        # DRAM read counts can differ (partition capacity), but the
        # workload itself must be identical: a P(2,16) system given the
        # same suite build twice produces identical results.
        first = compare_notations(["P(2,16)"], suite="fig7", num_requests=60)
        second = compare_notations(["P(2,16)"], suite="fig7", num_requests=60)
        assert first.rows[0] == second.rows[0]


class TestCompareCli:
    def test_command_runs(self, capsys):
        code = main(
            [
                "compare",
                "SS(2,16,4)",
                "P(1,16)",
                "--suite",
                "storm",
                "--requests",
                "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fastest:" in out
        assert "lowest observed WCL:" in out
