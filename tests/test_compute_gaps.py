"""Tests for compute gaps (think time) in traces and the core model."""

import pytest

from repro.common.errors import TraceError
from repro.common.types import AccessType
from repro.cpu.core import TraceDrivenCore
from repro.cpu.private_stack import PrivateStack, PrivateStackConfig
from repro.sim.simulator import simulate
from repro.workloads.trace import MemoryTrace, TraceRecord, read_trace, write_trace

from sim_helpers import shared_partition, small_config


class TestRecordFormat:
    def test_gap_serialised(self):
        record = TraceRecord(0x40, AccessType.WRITE, compute_cycles=120)
        assert record.to_line() == "W 0x40 +120"

    def test_zero_gap_omitted(self):
        assert TraceRecord(0x40, AccessType.READ).to_line() == "R 0x40"

    def test_parse_with_gap(self):
        record = TraceRecord.from_line("R 0x80 +77")
        assert record.compute_cycles == 77
        assert record.address == 0x80

    def test_roundtrip(self):
        record = TraceRecord(0x1A40, AccessType.INSTR, compute_cycles=5)
        assert TraceRecord.from_line(record.to_line()) == record

    def test_file_roundtrip_with_gaps(self, tmp_path):
        trace = MemoryTrace(
            [
                TraceRecord(0, AccessType.READ),
                TraceRecord(64, AccessType.WRITE, compute_cycles=300),
            ]
        )
        path = tmp_path / "gaps.trace"
        write_trace(trace, path)
        assert read_trace(path) == trace

    def test_malformed_gap_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord.from_line("R 0x40 120")
        with pytest.raises(TraceError):
            TraceRecord.from_line("R 0x40 +x")

    def test_negative_gap_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord(0, compute_cycles=-1)


def make_core(records, line=64):
    stack = PrivateStack(0, PrivateStackConfig(l1_sets=2, l1_ways=2,
                                               l2_sets=4, l2_ways=2))
    return TraceDrivenCore(0, stack, MemoryTrace(records), line)


class TestCoreModel:
    def test_gap_delays_miss(self):
        core = make_core([TraceRecord(64, AccessType.READ, compute_cycles=500)])
        miss = core.advance(10_000)
        assert miss.at_cycle == 500

    def test_gap_applied_once_across_blocking(self):
        core = make_core([TraceRecord(64, AccessType.READ, compute_cycles=500)])
        # The gap keeps the core busy past early horizons.
        assert core.advance(100) is None
        assert core.advance(400) is None
        miss = core.advance(1_000)
        assert miss.at_cycle == 500

    def test_gap_between_hits_accumulates(self):
        records = [
            TraceRecord(64, AccessType.READ),           # miss, filled below
            TraceRecord(64, AccessType.READ, compute_cycles=100),
            TraceRecord(64, AccessType.READ, compute_cycles=100),
        ]
        core = make_core(records)
        core.advance(10_000)
        core.stack.fill_from_llc(1, AccessType.READ)
        core.resume(50)
        core.advance(100_000)
        assert core.done
        l1 = core.stack.config.l1_hit_latency
        assert core.finish_time == 50 + 2 * (100 + l1)

    def test_cpu_bound_core_rarely_touches_bus(self):
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=4)],
            llc_sets=1,
            llc_ways=4,
        )
        # Core 0 computes a lot between accesses; core 1 is memory-bound.
        cpu_bound = MemoryTrace(
            [TraceRecord(i * 2 * 64, AccessType.READ, compute_cycles=400)
             for i in range(10)]
        )
        mem_bound = MemoryTrace(
            [TraceRecord((i * 2 + 1) * 64, AccessType.READ) for i in range(10)]
        )
        report = simulate(config, {0: cpu_bound, 1: mem_bound})
        assert report.core_reports[0].completed
        # The CPU-bound core's execution time is dominated by compute.
        assert report.execution_time(0) >= 10 * 400
        # The memory-bound core finishes far earlier.
        assert report.execution_time(1) < report.execution_time(0)

    def test_gaps_do_not_break_invariants(self):
        from repro.sim.simulator import Simulator

        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=2)],
            llc_sets=1,
            llc_ways=2,
        )
        traces = {
            core: MemoryTrace(
                [
                    TraceRecord(
                        (i * 2 + core) * 64,
                        AccessType.WRITE,
                        compute_cycles=(i * 37) % 90,
                    )
                    for i in range(15)
                ]
            )
            for core in (0, 1)
        }
        sim = Simulator(config, traces)
        report = sim.run()
        assert not report.timed_out
        sim.system.check_inclusivity()
