"""Tests for the task-level WCET bounds."""

import pytest

from repro.analysis.wcet import (
    TaskProfile,
    WcetBound,
    hybrid_wcet_bound,
    profile_task,
    sharing_cost_factor,
    static_wcet_bound,
)
from repro.common.errors import AnalysisError
from repro.cpu.private_stack import PrivateStackConfig
from repro.sim.simulator import simulate
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)

from sim_helpers import shared_partition, small_config


class TestProfiles:
    def test_valid_profile(self):
        profile = TaskProfile(accesses=100, llc_accesses=20)
        assert profile.accesses == 100

    def test_llc_accesses_bounded_by_accesses(self):
        with pytest.raises(AnalysisError):
            TaskProfile(accesses=10, llc_accesses=11)

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            TaskProfile(accesses=-1)


class TestStaticBound:
    def test_all_accesses_pay_wcl(self):
        bound = static_wcet_bound(TaskProfile(accesses=100), wcl_cycles=450)
        assert bound.total_cycles == 45_000
        assert bound.kind == "static"

    def test_zero_accesses(self):
        assert static_wcet_bound(TaskProfile(accesses=0), 450).total_cycles == 0

    def test_bad_wcl_rejected(self):
        with pytest.raises(AnalysisError):
            static_wcet_bound(TaskProfile(accesses=1), 0)


class TestHybridBound:
    def test_decomposition(self):
        stack = PrivateStackConfig(l2_hit_latency=4)
        bound = hybrid_wcet_bound(
            TaskProfile(accesses=100, llc_accesses=20), wcl_cycles=450, stack=stack
        )
        assert bound.private_cycles == 80 * 4
        assert bound.memory_cycles == 20 * 450
        assert bound.total_cycles == 320 + 9000

    def test_requires_llc_count(self):
        with pytest.raises(AnalysisError, match="LLC-access count"):
            hybrid_wcet_bound(TaskProfile(accesses=100), wcl_cycles=450)

    def test_tighter_than_static(self):
        profile = TaskProfile(accesses=100, llc_accesses=20)
        hybrid = hybrid_wcet_bound(profile, 450)
        static = static_wcet_bound(profile, 450)
        assert hybrid.total_cycles < static.total_cycles


class TestAgainstSimulation:
    @pytest.fixture(scope="class")
    def run(self):
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, sets=(0, 1, 2, 3), ways=4)],
            llc_sets=4,
            llc_ways=4,
        )
        workload = SyntheticWorkloadConfig(
            num_requests=200, address_range_size=2048, seed=3
        )
        traces = generate_disjoint_workload(workload, [0, 1])
        return config, simulate(config, traces)

    def test_profile_extraction(self, run):
        _config, report = run
        profile = profile_task(report, core=0)
        assert profile.accesses == 200
        assert profile.llc_accesses == report.core_reports[0].requests

    def test_hybrid_bound_dominates_simulated_time(self, run):
        """The composed bound must cover the actual execution time."""
        from repro.analysis.wcl import SharedPartitionParams, wcl_nss_cycles

        config, report = run
        wcl = wcl_nss_cycles(
            SharedPartitionParams(
                total_cores=2,
                sharers=2,
                ways=4,
                partition_lines=16,
                core_capacity_lines=config.stack.l2_capacity_lines,
                slot_width=config.slot_width,
            )
        )
        for core in (0, 1):
            profile = profile_task(report, core)
            bound = hybrid_wcet_bound(profile, wcl, config.stack)
            assert report.execution_time(core) <= bound.total_cycles

    def test_static_bound_dominates_hybrid(self, run):
        _config, report = run
        profile = profile_task(report, core=0)
        assert (
            static_wcet_bound(profile, 450).total_cycles
            >= hybrid_wcet_bound(profile, 450).total_cycles
        )


class TestSharingCost:
    def test_factor_grows_with_sharers(self):
        profile = TaskProfile(accesses=1000, llc_accesses=100)
        two = sharing_cost_factor(profile, 2, total_cores=4, slot_width=50)
        four = sharing_cost_factor(profile, 4, total_cores=4, slot_width=50)
        assert 1.0 < two < four

    def test_memory_bound_task_pays_more(self):
        lean = TaskProfile(accesses=1000, llc_accesses=10)
        hungry = TaskProfile(accesses=1000, llc_accesses=500)
        kwargs = dict(sharers=4, total_cores=4, slot_width=50)
        assert sharing_cost_factor(hungry, **kwargs) > sharing_cost_factor(
            lean, **kwargs
        )

    def test_single_sharer_rejected(self):
        with pytest.raises(AnalysisError):
            sharing_cost_factor(
                TaskProfile(accesses=10, llc_accesses=1),
                sharers=1,
                total_cores=4,
                slot_width=50,
            )
