"""Regenerate the golden-trace fixtures.

Run only after an intentional change to the simulator's event stream,
the trace encoding, the metric catalogue or the JSONL exporter — and
review the diff before committing::

    PYTHONPATH=src:tests python tests/golden/regen.py

``--out DIR`` writes the fixtures somewhere else instead of the
committed directory; the golden-drift guard uses it to regenerate into
a scratch directory and byte-compare against the committed files.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from golden_scenarios import (  # noqa: E402
    GOLDEN_DIR,
    SCENARIOS,
    fixture_paths,
    run_scenario,
)


def regenerate(root: Path) -> None:
    """Write every scenario's fixtures under ``root``."""
    for name in sorted(SCENARIOS):
        trace_bytes, metrics_bytes = run_scenario(name)
        trace_path, metrics_path = fixture_paths(name, root=root)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        trace_path.write_bytes(trace_bytes)
        metrics_path.write_bytes(metrics_bytes)
        print(
            f"{name}: {len(trace_bytes.splitlines())} events, "
            f"{len(metrics_bytes.splitlines())} metric series"
        )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write fixtures here instead of the committed directory",
    )
    args = parser.parse_args(argv)
    regenerate(GOLDEN_DIR if args.out is None else Path(args.out))


if __name__ == "__main__":
    main()
