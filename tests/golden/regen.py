"""Regenerate the golden-trace fixtures.

Run only after an intentional change to the simulator's event stream,
the trace encoding, the metric catalogue or the JSONL exporter — and
review the diff before committing::

    PYTHONPATH=src:tests python tests/golden/regen.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from golden_scenarios import SCENARIOS, fixture_paths, run_scenario  # noqa: E402


def main() -> None:
    for name in sorted(SCENARIOS):
        trace_bytes, metrics_bytes = run_scenario(name)
        trace_path, metrics_path = fixture_paths(name)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        trace_path.write_bytes(trace_bytes)
        metrics_path.write_bytes(metrics_bytes)
        print(
            f"{name}: {len(trace_bytes.splitlines())} events, "
            f"{len(metrics_bytes.splitlines())} metric series"
        )


if __name__ == "__main__":
    main()
