"""Tracing tests: canonical encoding, digests, streaming sink."""

import dataclasses
import io
import json

import pytest

from sim_helpers import small_config, write_trace_of

from repro.common.errors import ObservabilityError
from repro.obs.tracing import (
    JsonlTraceSink,
    event_json_line,
    event_to_dict,
    trace_digest,
    trace_to_jsonl_bytes,
)
from repro.sim.events import EventKind, SimEvent
from repro.sim.simulator import simulate


def sample_event(**overrides):
    fields = dict(
        cycle=100,
        slot=2,
        kind=EventKind.RESPONSE,
        core=1,
        block=7,
        set_index=0,
        way=3,
        detail="hit",
    )
    fields.update(overrides)
    return SimEvent(**fields)


def run_small(config=None, **simulate_kwargs):
    config = config or small_config()
    traces = {
        0: write_trace_of([0, 1, 0, 2]),
        1: write_trace_of([16, 17, 16]),
    }
    return simulate(config, traces, **simulate_kwargs)


class TestEncoding:
    def test_event_to_dict_is_plain_data(self):
        data = event_to_dict(sample_event())
        assert data == {
            "cycle": 100,
            "slot": 2,
            "kind": "response",
            "core": 1,
            "block": 7,
            "set": 0,
            "way": 3,
            "detail": "hit",
        }

    def test_json_line_is_canonical(self):
        line = event_json_line(sample_event())
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )
        assert "\n" not in line

    def test_bytes_and_digest_agree(self):
        events = [sample_event(cycle=c) for c in (1, 2, 3)]
        blob = trace_to_jsonl_bytes(events)
        assert blob.count(b"\n") == 3
        import hashlib

        assert trace_digest(events) == hashlib.sha256(blob).hexdigest()

    def test_digest_is_order_sensitive(self):
        a, b = sample_event(cycle=1), sample_event(cycle=2)
        assert trace_digest([a, b]) != trace_digest([b, a])


class TestSinkFiltering:
    def test_writes_all_events_to_handle(self):
        buffer = io.StringIO()
        sink = JsonlTraceSink(buffer)
        events = [sample_event(cycle=c) for c in (1, 2)]
        for event in events:
            sink(event)
        sink.close()
        assert sink.emitted == 2
        assert buffer.getvalue().encode() == trace_to_jsonl_bytes(events)

    def test_kind_and_core_filters_are_conjunctive(self):
        buffer = io.StringIO()
        sink = JsonlTraceSink(
            buffer, kinds={EventKind.RESPONSE}, cores=[0]
        )
        sink(sample_event(core=0, kind=EventKind.RESPONSE))  # both match
        sink(sample_event(core=1, kind=EventKind.RESPONSE))  # wrong core
        sink(sample_event(core=0, kind=EventKind.REQ_BROADCAST))  # wrong kind
        assert sink.emitted == 1

    def test_closed_sink_rejects_events(self):
        sink = JsonlTraceSink(io.StringIO())
        sink.close()
        with pytest.raises(ObservabilityError):
            sink(sample_event())
        sink.close()  # idempotent

    def test_unwritable_path_is_an_error(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot open trace sink"):
            JsonlTraceSink(tmp_path / "missing" / "trace.jsonl")


class TestLiveStreaming:
    def test_sink_matches_recorded_log(self, tmp_path):
        """Streaming during the run reproduces the in-memory log's bytes."""
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            report = run_small(event_sink=sink)
        recorded = trace_to_jsonl_bytes(report.events.all())
        assert path.read_bytes() == recorded
        assert sink.emitted == len(report.events.all())

    def test_sink_streams_with_recording_off(self, tmp_path):
        """O(1)-memory tracing: events flow to the sink, none are kept."""
        config = dataclasses.replace(small_config(), record_events=False)
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            report = run_small(config, event_sink=sink)
        assert len(report.events.all()) == 0
        assert sink.emitted > 0
        assert len(path.read_text().splitlines()) == sink.emitted

    def test_same_seed_same_digest(self):
        """The golden-trace premise: identical runs, identical digests."""
        first = run_small()
        second = run_small()
        assert trace_digest(first.events.all()) == trace_digest(
            second.events.all()
        )
