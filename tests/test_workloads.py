"""Unit tests for traces, synthetic workloads and adversarial patterns."""

import pytest

from repro.common.errors import ConfigurationError, TraceError
from repro.common.types import AccessType
from repro.workloads.adversarial import conflict_storm_traces, pingpong_traces
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_core_trace,
    generate_disjoint_workload,
)
from repro.workloads.trace import MemoryTrace, TraceRecord, read_trace, write_trace


class TestTraceRecord:
    def test_line_roundtrip(self):
        record = TraceRecord(0x1A40, AccessType.WRITE)
        assert TraceRecord.from_line(record.to_line()) == record

    def test_parse_decimal_address(self):
        assert TraceRecord.from_line("R 100").address == 100

    def test_parse_hex_address(self):
        assert TraceRecord.from_line("W 0x40").address == 64

    def test_malformed_line_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord.from_line("R")

    def test_bad_access_token_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord.from_line("Q 0x40")

    def test_bad_address_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord.from_line("R zz")

    def test_negative_address_rejected(self):
        with pytest.raises(TraceError):
            TraceRecord(-1)


class TestMemoryTrace:
    def test_sequence_protocol(self):
        trace = MemoryTrace([TraceRecord(0), TraceRecord(64)])
        assert len(trace) == 2
        assert trace[1].address == 64
        assert [record.address for record in trace] == [0, 64]

    def test_slicing_returns_trace(self):
        trace = MemoryTrace([TraceRecord(i * 64) for i in range(5)], name="t")
        head = trace[:2]
        assert isinstance(head, MemoryTrace)
        assert len(head) == 2
        assert head.name == "t"

    def test_equality(self):
        first = MemoryTrace([TraceRecord(0)])
        second = MemoryTrace([TraceRecord(0)])
        assert first == second

    def test_write_fraction(self):
        trace = MemoryTrace(
            [TraceRecord(0, AccessType.WRITE), TraceRecord(64, AccessType.READ)]
        )
        assert trace.write_fraction() == pytest.approx(0.5)

    def test_write_fraction_empty(self):
        assert MemoryTrace().write_fraction() == 0.0

    def test_footprint_blocks(self):
        trace = MemoryTrace([TraceRecord(0), TraceRecord(32), TraceRecord(64)])
        assert trace.footprint_blocks(64) == 2

    def test_file_roundtrip(self, tmp_path):
        trace = MemoryTrace(
            [TraceRecord(64 * i, AccessType.WRITE) for i in range(10)],
            name="roundtrip",
        )
        path = tmp_path / "trace.txt"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded == trace

    def test_read_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\nR 0x40\n  \nW 0x80\n")
        loaded = read_trace(path)
        assert len(loaded) == 2

    def test_read_reports_line_number(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("R 0x40\nbogus line here\n")
        with pytest.raises(TraceError, match=":2:"):
            read_trace(path)


class TestSyntheticWorkload:
    def test_respects_request_count(self):
        config = SyntheticWorkloadConfig(num_requests=123)
        assert len(generate_core_trace(config, 0)) == 123

    def test_addresses_stay_in_core_range(self):
        config = SyntheticWorkloadConfig(num_requests=500, address_range_size=2048)
        for core in (0, 3):
            core_range = config.core_range(core)
            trace = generate_core_trace(config, core)
            assert all(address in core_range for address in trace.addresses())

    def test_addresses_line_aligned(self):
        config = SyntheticWorkloadConfig(num_requests=100, line_size=64)
        trace = generate_core_trace(config, 0)
        assert all(address % 64 == 0 for address in trace.addresses())

    def test_deterministic_per_seed(self):
        config = SyntheticWorkloadConfig(num_requests=50, seed=9)
        assert generate_core_trace(config, 1) == generate_core_trace(config, 1)

    def test_different_cores_different_streams(self):
        config = SyntheticWorkloadConfig(num_requests=50)
        assert generate_core_trace(config, 0) != generate_core_trace(config, 1)

    def test_write_fraction_zero_and_one(self):
        all_writes = generate_core_trace(
            SyntheticWorkloadConfig(num_requests=50, write_fraction=1.0), 0
        )
        all_reads = generate_core_trace(
            SyntheticWorkloadConfig(num_requests=50, write_fraction=0.0), 0
        )
        assert all_writes.write_fraction() == 1.0
        assert all_reads.write_fraction() == 0.0

    def test_disjoint_workload_ranges(self):
        config = SyntheticWorkloadConfig(num_requests=20, address_range_size=1024)
        traces = generate_disjoint_workload(config, [0, 1, 2])
        footprints = [set(trace.addresses()) for trace in traces.values()]
        for i, first in enumerate(footprints):
            for second in footprints[i + 1 :]:
                assert not (first & second)

    def test_duplicate_cores_rejected(self):
        config = SyntheticWorkloadConfig(num_requests=5)
        with pytest.raises(ConfigurationError):
            generate_disjoint_workload(config, [0, 0])

    def test_bad_write_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticWorkloadConfig(write_fraction=1.5)

    def test_overlapping_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticWorkloadConfig(address_range_size=4096, range_stride=1024)

    def test_think_cycles_default_zero(self):
        trace = generate_core_trace(SyntheticWorkloadConfig(num_requests=30), 0)
        assert all(record.compute_cycles == 0 for record in trace)

    def test_think_cycles_within_bound(self):
        config = SyntheticWorkloadConfig(num_requests=100, max_think_cycles=250)
        trace = generate_core_trace(config, 0)
        gaps = [record.compute_cycles for record in trace]
        assert all(0 <= gap <= 250 for gap in gaps)
        assert any(gap > 0 for gap in gaps)

    def test_negative_think_cycles_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticWorkloadConfig(max_think_cycles=-1)


class TestAdversarialWorkloads:
    def test_storm_all_blocks_fold_to_target_set(self):
        traces = conflict_storm_traces(
            cores=[0, 1], partition_sets=4, lines_per_core=8, repeats=2, target_set=3
        )
        for trace in traces.values():
            for address in trace.addresses():
                assert (address // 64) % 4 == 3

    def test_storm_cores_disjoint(self):
        traces = conflict_storm_traces(
            cores=[0, 1, 2], partition_sets=1, lines_per_core=4, repeats=1
        )
        footprints = [set(trace.addresses()) for trace in traces.values()]
        for i, first in enumerate(footprints):
            for second in footprints[i + 1 :]:
                assert not (first & second)

    def test_storm_all_writes(self):
        traces = conflict_storm_traces(
            cores=[0], partition_sets=1, lines_per_core=4, repeats=3
        )
        assert traces[0].write_fraction() == 1.0

    def test_storm_length(self):
        traces = conflict_storm_traces(
            cores=[0], partition_sets=1, lines_per_core=4, repeats=3
        )
        assert len(traces[0]) == 12

    def test_storm_deterministic(self):
        kwargs = dict(cores=[0, 1], partition_sets=2, lines_per_core=4, repeats=2, seed=5)
        assert conflict_storm_traces(**kwargs) == conflict_storm_traces(**kwargs)

    def test_storm_rejects_bad_target_set(self):
        with pytest.raises(ConfigurationError):
            conflict_storm_traces(
                cores=[0], partition_sets=2, lines_per_core=1, repeats=1, target_set=2
            )

    def test_pingpong_two_blocks_per_core(self):
        traces = pingpong_traces(cores=[0, 1], partition_sets=1, repeats=3)
        for trace in traces.values():
            assert len(set(trace.addresses())) == 2
            assert len(trace) == 6
