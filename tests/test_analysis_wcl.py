"""Unit tests for the analytical WCL bounds (Theorems 4.7 and 4.8).

The key fixtures are the paper's own numbers (Section 5.1): with the
4-core, 16-way, 1-set, SW=50 setup the bounds must come out to exactly
5000 (SS), 979 250 (NSS) and 450 (P) cycles.
"""

import pytest

from repro.analysis.wcl import (
    NssBreakdown,
    SharedPartitionParams,
    analytical_wcl_cycles,
    interference_factor,
    wcl_nss_breakdown,
    wcl_nss_cycles,
    wcl_nss_slots,
    wcl_private_cycles,
    wcl_private_slots,
    wcl_reduction_factor,
    wcl_ss_cycles,
    wcl_ss_slots,
)
from repro.common.errors import AnalysisError
from repro.llc.partition import PartitionNotation


def paper_params(**overrides):
    """The Figure 7 shared-partition parameters."""
    defaults = dict(
        total_cores=4,
        sharers=4,
        ways=16,
        partition_lines=16,  # one 16-way set
        core_capacity_lines=64,  # 4-way x 16-set L2
        slot_width=50,
    )
    defaults.update(overrides)
    return SharedPartitionParams(**defaults)


class TestInterferenceFactor:
    def test_paper_value(self):
        # A = 2(n-1) * w * (n-1) = 2*3*16*3 = 288
        assert interference_factor(4, 16) == 288

    def test_two_sharers(self):
        assert interference_factor(2, 4) == 2 * 1 * 4 * 1

    def test_single_sharer_is_zero(self):
        assert interference_factor(1, 16) == 0


class TestTheorem47:
    def test_paper_nss_bound_cycles(self):
        assert wcl_nss_cycles(paper_params()) == 979_250

    def test_paper_nss_bound_slots(self):
        assert wcl_nss_slots(paper_params()) == 19_585

    def test_m_is_min_of_capacity_and_partition(self):
        # Partition smaller than the L2: m = M.
        assert paper_params().m == 16
        # Partition larger than the L2: m = m_cua.
        assert paper_params(partition_lines=128).m == 64

    def test_grows_with_partition_lines_until_capacity(self):
        small = wcl_nss_cycles(paper_params(partition_lines=16))
        large = wcl_nss_cycles(paper_params(partition_lines=64))
        capped = wcl_nss_cycles(paper_params(partition_lines=128))
        assert small < large == capped

    def test_cubic_growth_in_sharers(self):
        # WCL ~ n^3 through A = 2(n-1)^2 w and N >= n.
        four = wcl_nss_cycles(paper_params())
        eight = wcl_nss_cycles(
            paper_params(total_cores=8, sharers=8)
        )
        assert eight > 8 * four

    def test_breakdown_parts_sum(self):
        breakdown = wcl_nss_breakdown(paper_params())
        assert isinstance(breakdown, NssBreakdown)
        total = (
            (breakdown.writebacks - 1) * breakdown.slots_between_writebacks
            + breakdown.slots_before_first
            + breakdown.slots_after_last
        )
        assert total == breakdown.total_slots == wcl_nss_slots(paper_params())

    def test_breakdown_part_values(self):
        breakdown = wcl_nss_breakdown(paper_params())
        assert breakdown.writebacks == 16
        assert breakdown.slots_between_writebacks == 288 * 4
        assert breakdown.slots_after_last == 288 * 4 + 1


class TestTheorem48:
    def test_paper_ss_bound_cycles(self):
        assert wcl_ss_cycles(paper_params()) == 5_000

    def test_paper_ss_bound_slots(self):
        assert wcl_ss_slots(paper_params()) == 100

    def test_independent_of_partition_size(self):
        small = wcl_ss_cycles(paper_params(partition_lines=16))
        large = wcl_ss_cycles(paper_params(partition_lines=512))
        assert small == large

    def test_independent_of_ways(self):
        narrow = wcl_ss_cycles(paper_params(ways=2, partition_lines=16))
        wide = wcl_ss_cycles(paper_params(ways=16, partition_lines=16))
        assert narrow == wide

    def test_two_sharers(self):
        params = paper_params(sharers=2)
        # (2*1*2 + 1) * 4 * 50
        assert wcl_ss_cycles(params) == 5 * 4 * 50


class TestPrivateBound:
    def test_paper_value(self):
        assert wcl_private_cycles(4, 50) == 450

    def test_slots(self):
        assert wcl_private_slots(4) == 9

    def test_scales_with_cores(self):
        assert wcl_private_cycles(8, 50) == 17 * 50

    def test_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            wcl_private_slots(0)
        with pytest.raises(AnalysisError):
            wcl_private_cycles(4, 0)


class TestReductionFactor:
    def test_fig7_setup_reduction(self):
        # 979250 / 5000 = 195.85 for the Figure 7 parameters.
        assert wcl_reduction_factor(paper_params()) == pytest.approx(195.85)

    def test_reduction_grows_with_partition(self):
        small = wcl_reduction_factor(paper_params(partition_lines=16))
        large = wcl_reduction_factor(
            paper_params(partition_lines=128, core_capacity_lines=128)
        )
        assert large > small


class TestParamValidation:
    def test_sharers_exceeding_cores_rejected(self):
        with pytest.raises(AnalysisError):
            paper_params(sharers=5)

    def test_single_sharer_rejected(self):
        with pytest.raises(AnalysisError, match="private"):
            paper_params(sharers=1)

    def test_ways_exceeding_partition_rejected(self):
        with pytest.raises(AnalysisError):
            paper_params(ways=32, partition_lines=16)

    def test_zero_slot_width_rejected(self):
        with pytest.raises(AnalysisError):
            paper_params(slot_width=0)


class TestNotationDispatch:
    @pytest.mark.parametrize(
        "notation,expected",
        [("SS(1,16,4)", 5_000), ("NSS(1,16,4)", 979_250), ("P(1,16)", 450)],
    )
    def test_figure7_constants(self, notation, expected):
        cycles = analytical_wcl_cycles(
            PartitionNotation.parse(notation),
            total_cores=4,
            slot_width=50,
            core_capacity_lines=64,
        )
        assert cycles == expected

    def test_nss_vs_ss_ordering(self):
        common = dict(total_cores=4, slot_width=50, core_capacity_lines=64)
        nss = analytical_wcl_cycles(PartitionNotation.parse("NSS(2,16,4)"), **common)
        ss = analytical_wcl_cycles(PartitionNotation.parse("SS(2,16,4)"), **common)
        private = analytical_wcl_cycles(PartitionNotation.parse("P(2,16)"), **common)
        assert private < ss < nss
