"""The content-addressed result cache: hits replay byte-identically.

The contract under test is the module's hard guarantee: a cache hit
produces the same bytes as a fresh simulation on every canonical
surface — ``report_to_dict`` JSON, metrics JSONL, requests CSV, event
lines — and a defective entry is discarded and recomputed, never
trusted.
"""

import dataclasses
import json

import pytest

from sim_helpers import small_config, write_trace_of

from repro.common.errors import ConfigurationError
from repro.obs.collect import collect_metrics
from repro.obs.exporters import metrics_to_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.sim.cache import (
    MODEL_SCHEMA_VERSION,
    SimResultCache,
    active_result_cache,
    clear_result_cache,
    install_result_cache,
    load_report,
    report_state,
    result_cache_key,
    trace_cache_fingerprint,
)
from repro.sim.export import report_to_dict
from repro.sim.simulator import _simulate_uncached, simulate


@pytest.fixture(autouse=True)
def _no_leaked_policy():
    clear_result_cache()
    yield
    clear_result_cache()


def _traces(num_cores=2):
    return {
        core: write_trace_of([core * 16 + i for i in range(6)])
        for core in range(num_cores)
    }


def _counter(cache, name):
    return cache.registry.counter(f"sim_cache.{name}").value


def _canonical_surfaces(report, config):
    """Every byte surface a cached report must reproduce exactly."""
    metrics = collect_metrics(report, config.slot_width)
    return (
        json.dumps(report_to_dict(report), indent=2, sort_keys=True),
        metrics_to_jsonl(metrics),
        [str(event) for event in report.events.all()],
    )


def test_store_then_lookup_round_trips_all_bytes(tmp_path):
    config = small_config(num_cores=2, record_events=True)
    traces = _traces()
    fresh = _simulate_uncached(config, traces)
    cache = SimResultCache(tmp_path)
    cache.store(config, traces, None, fresh)

    # Disk path: forget the memo so the entry is read back and verified.
    cache._memo.clear()
    cached = cache.lookup(config, traces)
    assert cached is not None
    assert _canonical_surfaces(cached, config) == _canonical_surfaces(
        fresh, config
    )
    assert _counter(cache, "hits") == 1
    assert _counter(cache, "stores") == 1


def test_report_state_round_trip_without_events(tmp_path):
    config = small_config(num_cores=2, record_events=False)
    fresh = _simulate_uncached(config, _traces())
    rebuilt = load_report(report_state(fresh))
    assert not rebuilt.events.enabled
    assert report_to_dict(rebuilt) == report_to_dict(fresh)


def test_metrics_rows_survive_the_cache(tmp_path):
    config = small_config(num_cores=2, record_events=False)
    config = dataclasses.replace(config, record_metrics=True)
    traces = _traces()
    fresh = _simulate_uncached(config, traces)
    assert fresh.metrics is not None
    cache = SimResultCache(tmp_path)
    cache.store(config, traces, None, fresh)
    cache._memo.clear()
    cached = cache.lookup(config, traces)
    assert metrics_to_jsonl(cached.metrics) == metrics_to_jsonl(fresh.metrics)


def test_installed_cache_threads_through_simulate(tmp_path):
    config = small_config(num_cores=2)
    traces = _traces()
    baseline = _simulate_uncached(config, traces)
    cache = install_result_cache(tmp_path)
    assert active_result_cache() is cache
    first = simulate(config, traces)
    second = simulate(config, traces)
    for report in (first, second):
        assert _canonical_surfaces(report, config) == _canonical_surfaces(
            baseline, config
        )
    assert _counter(cache, "misses") == 1
    assert _counter(cache, "stores") == 1
    assert _counter(cache, "hits") == 1
    clear_result_cache()
    assert active_result_cache() is None


def test_event_sink_runs_bypass_the_cache(tmp_path):
    config = small_config(num_cores=2)
    traces = _traces()
    cache = install_result_cache(tmp_path)
    seen = []
    simulate(config, traces, event_sink=seen.append)
    assert seen, "the sink must have streamed events"
    assert cache.stats().entries == 0
    assert _counter(cache, "misses") == 0


def test_memo_dedups_within_process(tmp_path):
    config = small_config(num_cores=2)
    traces = _traces()
    cache = SimResultCache(tmp_path)
    cache.store(config, traces, None, _simulate_uncached(config, traces))
    # Remove the on-disk entry: the memo alone must serve the hit.
    key = result_cache_key(config, traces)
    cache.entry_path(key).unlink()
    assert cache.lookup(config, traces) is not None
    assert _counter(cache, "hits") == 1


def test_hits_return_fresh_objects(tmp_path):
    config = small_config(num_cores=2)
    traces = _traces()
    cache = SimResultCache(tmp_path)
    cache.store(config, traces, None, _simulate_uncached(config, traces))
    one = cache.lookup(config, traces)
    two = cache.lookup(config, traces)
    assert one is not two
    assert one.requests is not two.requests
    one.requests.clear()
    assert two.requests, "mutating one hit must not leak into the next"


def test_start_cycles_enter_the_key():
    config = small_config(num_cores=2)
    traces = _traces()
    assert result_cache_key(config, traces) != result_cache_key(
        config, traces, {0: 100}
    )
    assert result_cache_key(config, traces, {0: 100}) != result_cache_key(
        config, traces, {0: 200}
    )


def test_trace_name_is_not_part_of_the_key():
    renamed = write_trace_of([1, 2, 3])
    renamed.name = "totally-different"
    assert trace_cache_fingerprint(
        write_trace_of([1, 2, 3])
    ) == trace_cache_fingerprint(renamed)


def test_version_mismatch_discarded_and_recomputed(tmp_path, monkeypatch):
    config = small_config(num_cores=2)
    traces = _traces()
    baseline = _simulate_uncached(config, traces)
    cache = SimResultCache(tmp_path)
    cache.store(config, traces, None, baseline)
    key = result_cache_key(config, traces)
    path = cache.entry_path(key)

    # Rewrite the entry as if an older model build had written it: the
    # integrity digest is recomputed so only the stamp check can fire.
    document = json.loads(path.read_text())
    document["payload"]["model_schema_version"] = MODEL_SCHEMA_VERSION - 1
    from repro.sim.cache import _canonical
    import hashlib

    body = _canonical(document["payload"])
    digest = hashlib.sha256(body.encode()).hexdigest()
    path.write_text('{"integrity":"%s","payload":%s}' % (digest, body) + "\n")

    cache._memo.clear()
    assert cache.lookup(config, traces) is None
    assert _counter(cache, "version_mismatch") == 1
    assert not path.exists(), "a stale entry must be deleted"

    # The recompute-and-restore loop ends byte-identical.
    install_result_cache(tmp_path, registry=cache.registry)
    recomputed = simulate(config, traces)
    assert _canonical_surfaces(recomputed, config) == _canonical_surfaces(
        baseline, config
    )


def test_gc_is_deterministic_and_counts_evictions(tmp_path):
    import os

    cache = SimResultCache(tmp_path)
    config = small_config(num_cores=2)
    sizes = {}
    for requests, mtime in ((4, 100), (6, 200), (8, 300)):
        traces = {
            core: write_trace_of(list(range(requests))) for core in range(2)
        }
        path = cache.store(
            config, traces, None, _simulate_uncached(config, traces)
        )
        os.utime(path, (mtime, mtime))
        sizes[path] = path.stat().st_size

    by_age = sorted(sizes, key=lambda p: p.stat().st_mtime)
    keep_last = sum(sizes.values()) - sizes[by_age[0]] - sizes[by_age[1]] + 1
    evicted = cache.gc(max_bytes=keep_last)
    assert evicted == by_age[:2], "oldest-first, deterministic order"
    assert _counter(cache, "evictions") == 2
    assert cache.stats().entries == 1

    # Age-based pruning with an injected clock.
    remaining = by_age[2]
    assert cache.gc(max_age_secs=50, now=400.0) == [remaining]
    assert cache.stats().entries == 0


def test_gc_requires_a_bound(tmp_path):
    with pytest.raises(ConfigurationError):
        SimResultCache(tmp_path).gc()


def test_verify_removes_defective_entries(tmp_path):
    config = small_config(num_cores=2)
    traces = _traces()
    cache = SimResultCache(tmp_path)
    good = cache.store(config, traces, None, _simulate_uncached(config, traces))
    bad = tmp_path / ("res-" + "0" * 64 + ".json")
    bad.write_text('{"integrity":"nope","payload":{}}\n')
    ok, removed = cache.verify()
    assert ok == [good]
    assert removed == [bad]
    assert not bad.exists()
    assert _counter(cache, "corruption") == 1


def test_stats_counts_entries_and_bytes(tmp_path):
    cache = SimResultCache(tmp_path)
    assert cache.stats() == type(cache.stats())(entries=0, total_bytes=0)
    config = small_config(num_cores=2)
    traces = _traces()
    path = cache.store(config, traces, None, _simulate_uncached(config, traces))
    stats = cache.stats()
    assert stats.entries == 1
    assert stats.total_bytes == path.stat().st_size


def test_stale_tmp_swept_on_startup(tmp_path):
    orphan = tmp_path / "res-deadbeef.json.tmp"
    orphan.write_text("half a write")
    SimResultCache(tmp_path)
    assert not orphan.exists()


def test_engine_override_is_part_of_the_key(tmp_path):
    config = small_config(num_cores=2)
    traces = _traces()
    cache = install_result_cache(tmp_path)
    fast = simulate(config, traces)
    reference = simulate(config, traces, engine="reference")
    assert _counter(cache, "misses") == 2, (
        "an engine override must key (and simulate) separately"
    )
    assert report_to_dict(fast) == report_to_dict(reference)


def test_unjsonable_config_value_is_a_configuration_error():
    from repro.sim.cache import _jsonify

    with pytest.raises(ConfigurationError):
        _jsonify(object())
