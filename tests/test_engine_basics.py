"""Integration tests of the slot engine's basic transaction handling."""

import pytest

from repro.bus.arbiter import ArbitrationPolicy
from repro.common.types import AccessType
from repro.sim.events import EventKind
from repro.sim.simulator import Simulator, simulate

from sim_helpers import (
    private_partitions,
    read_trace_of,
    shared_partition,
    small_config,
    trace_of_blocks,
    write_trace_of,
)


class TestSingleCore:
    def config(self, **kwargs):
        defaults = dict(
            num_cores=1,
            partitions=[shared_partition(1, ways=4)],
            llc_sets=4,
            llc_ways=4,
        )
        defaults.update(kwargs)
        return small_config(**defaults)

    def test_single_miss_completes_in_first_slot(self):
        report = simulate(self.config(), {0: write_trace_of([1])})
        assert len(report.requests) == 1
        record = report.requests[0]
        assert record.first_on_bus_at == 0
        assert record.completed_at == 45  # llc_miss_latency
        assert record.bus_attempts == 1

    def test_llc_hit_after_private_eviction(self):
        # Two blocks that conflict in a 1-set/1-way L2 but fit the LLC.
        config = self.config()
        report = simulate(config, {0: write_trace_of([0, 1, 2, 3, 0])})
        # Block 0 was L2-resident or LLC-resident; final access must not
        # go to DRAM again if it stayed in the LLC.
        assert report.llc_stats.hits >= 0  # smoke: simulation completed
        assert report.core_reports[0].completed

    def test_empty_trace_finishes_immediately(self):
        report = simulate(self.config(), {0: trace_of_blocks([])})
        assert report.core_reports[0].completed
        assert report.total_slots == 0

    def test_no_trace_for_core_treated_as_empty(self):
        report = simulate(self.config(), {})
        assert report.core_reports[0].completed

    def test_private_hits_do_not_touch_bus(self):
        # Same block over and over: one miss, then L1 hits.
        report = simulate(self.config(), {0: read_trace_of([1] * 50)})
        assert len(report.requests) == 1
        assert report.core_reports[0].private_hits == 49

    def test_dram_traffic_counted(self):
        report = simulate(self.config(), {0: write_trace_of([0, 1, 2])})
        assert report.dram_reads == 3


class TestEvictionAndWriteback:
    def test_cross_core_dirty_eviction_costs_owner_a_slot(self):
        # Core 1 fills the only way of a 1-way shared partition with a
        # dirty line; core 0's later miss must wait for core 1's
        # write-back slot.
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=1)],
            llc_sets=4,
            llc_ways=1,
        )
        traces = {
            1: write_trace_of([0]),
            0: write_trace_of([2]),  # folds to the same single-way set 0
        }
        sim = Simulator(config, traces, start_cycles={0: 60})
        report = sim.run()
        wb_events = report.events.of_kind(EventKind.WB_SENT)
        assert any(event.core == 1 for event in wb_events)
        freed = report.events.of_kind(EventKind.ENTRY_FREED)
        assert freed, "the pending entry must be freed by the write-back"
        assert report.core_reports[0].completed

    def test_clean_victim_frees_in_slot_and_completes(self):
        # Core 1's line is clean (read): core 0's miss evicts silently
        # and completes within its own slot (Lemma 4.4 completion rule).
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=1)],
            llc_sets=4,
            llc_ways=1,
        )
        traces = {1: read_trace_of([0]), 0: read_trace_of([2])}
        sim = Simulator(config, traces, start_cycles={0: 60})
        report = sim.run()
        record = next(r for r in report.requests if r.core == 0)
        assert record.bus_attempts == 1
        assert record.completed_at - record.first_on_bus_at == 45

    def test_self_eviction_in_slot_by_default(self):
        # A single core thrashing its own 1-way partition: with the
        # in-slot self write-back, every miss completes in one attempt.
        config = small_config(
            num_cores=1,
            partitions=[shared_partition(1, ways=1)],
            llc_sets=1,
            llc_ways=1,
            self_writeback_in_slot=True,
        )
        report = simulate(config, {0: write_trace_of([0, 1, 0, 1])})
        assert all(record.bus_attempts == 1 for record in report.requests)

    def test_self_eviction_buffered_costs_extra_periods(self):
        config = small_config(
            num_cores=1,
            partitions=[shared_partition(1, ways=1)],
            llc_sets=1,
            llc_ways=1,
            self_writeback_in_slot=False,
        )
        report = simulate(config, {0: write_trace_of([0, 1, 0, 1])})
        assert any(record.bus_attempts > 1 for record in report.requests)

    def test_capacity_writeback_updates_llc(self):
        # A core with a tiny L2 streams blocks that all fit the LLC: its
        # L2 capacity evictions send write-backs that must land on VALID
        # entries (UPDATED), not free anything.
        from repro.cpu.private_stack import PrivateStackConfig
        from repro.sim.config import SystemConfig

        config = SystemConfig(
            num_cores=1,
            partitions=[shared_partition(1, sets=(0, 1, 2, 3), ways=4)],
            llc_sets=4,
            llc_ways=4,
            stack=PrivateStackConfig(l1_sets=0, l2_sets=1, l2_ways=1),
            record_events=True,
            max_slots=10_000,
        )
        report = simulate(config, {0: write_trace_of([0, 1, 2, 3])})
        updated = [
            event
            for event in report.events.of_kind(EventKind.WB_SENT)
            if "updated" in event.detail
        ]
        assert updated, "capacity write-backs should update VALID entries"


class TestArbitration:
    def test_round_robin_interleaves_requests_and_writebacks(self):
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=2)],
            llc_sets=2,
            llc_ways=2,
            arbitration=ArbitrationPolicy.ROUND_ROBIN,
        )
        traces = {
            0: write_trace_of([0, 2, 4, 6, 8]),
            1: write_trace_of([1, 3, 5, 7, 9]),
        }
        report = simulate(config, traces)
        assert report.core_reports[0].completed
        assert report.core_reports[1].completed

    def test_all_arbitration_policies_run_to_completion(self):
        for policy in ArbitrationPolicy:
            config = small_config(
                num_cores=2,
                partitions=[shared_partition(2, ways=2)],
                llc_sets=2,
                llc_ways=2,
                arbitration=policy,
            )
            traces = {
                0: write_trace_of([0, 2, 4, 6]),
                1: write_trace_of([1, 3, 5, 7]),
            }
            report = simulate(config, traces)
            assert not report.timed_out, policy


class TestReports:
    def test_observed_wcl_is_max_latency(self):
        config = small_config(num_cores=2)
        traces = {0: write_trace_of([0, 4, 8]), 1: write_trace_of([1, 5, 9])}
        report = simulate(config, traces)
        for core in (0, 1):
            latencies = report.latencies(core)
            assert report.observed_wcl(core) == max(latencies)
        assert report.observed_wcl() == max(report.latencies())

    def test_bus_wcl_not_larger_than_wcl(self):
        config = small_config(num_cores=2)
        traces = {0: write_trace_of([0, 4]), 1: write_trace_of([1, 5])}
        report = simulate(config, traces)
        for record in report.requests:
            assert record.bus_latency <= record.latency

    def test_makespan_is_max_finish(self):
        config = small_config(num_cores=2)
        traces = {0: write_trace_of([0]), 1: write_trace_of([1, 5, 9])}
        report = simulate(config, traces)
        assert report.makespan == max(
            report.execution_time(0), report.execution_time(1)
        )

    def test_no_starved_cores_on_clean_completion(self):
        config = small_config(num_cores=2)
        report = simulate(config, {0: write_trace_of([0]), 1: write_trace_of([1])})
        assert report.starved_cores() == []
        assert not report.timed_out

    def test_events_disabled_by_default_config(self):
        config = small_config(num_cores=1, record_events=False)
        report = simulate(config, {0: write_trace_of([0])})
        assert len(report.events) == 0
