"""Tests for the phased workload generator and seed sweeps."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import AccessType
from repro.sim.sweeps import compare_configs, sweep_seeds
from repro.workloads.phased import (
    Phase,
    PhaseKind,
    PhasedWorkloadConfig,
    control_task_config,
    generate_phased_trace,
    generate_phased_workload,
)
from repro.workloads.synthetic import SyntheticWorkloadConfig, generate_disjoint_workload

from sim_helpers import shared_partition, small_config


def single_phase_config(kind, **phase_kwargs):
    phase = Phase("only", kind, range_bytes=1024, **phase_kwargs)
    return PhasedWorkloadConfig(
        phases=(phase,),
        transitions=((1.0,),),
        num_requests=100,
    )


class TestPhases:
    def test_sequential_phase_sweeps_lines(self):
        config = single_phase_config(PhaseKind.SEQUENTIAL, write_fraction=0.0)
        trace = generate_phased_trace(config)
        addresses = trace.addresses()[:16]
        assert addresses == [i * 64 for i in range(16)]

    def test_sequential_wraps(self):
        config = single_phase_config(PhaseKind.SEQUENTIAL, write_fraction=0.0)
        trace = generate_phased_trace(config)
        # 1024B = 16 lines; the 17th access wraps to line 0.
        assert trace.addresses()[16] == 0

    def test_hot_set_phase_uses_few_lines(self):
        config = single_phase_config(PhaseKind.HOT_SET, hot_lines=4)
        trace = generate_phased_trace(config)
        assert trace.footprint_blocks(64) <= 4

    def test_random_phase_stays_in_range(self):
        config = single_phase_config(PhaseKind.RANDOM)
        trace = generate_phased_trace(config)
        assert all(0 <= address < 1024 for address in trace.addresses())

    def test_write_fraction_respected_at_extremes(self):
        writes = single_phase_config(PhaseKind.RANDOM, write_fraction=1.0)
        reads = single_phase_config(PhaseKind.RANDOM, write_fraction=0.0)
        assert generate_phased_trace(writes).write_fraction() == 1.0
        assert generate_phased_trace(reads).write_fraction() == 0.0

    def test_deterministic(self):
        config = control_task_config(num_requests=200, seed=5)
        assert generate_phased_trace(config, 1) == generate_phased_trace(config, 1)

    def test_cores_differ(self):
        config = control_task_config(num_requests=200, seed=5)
        assert generate_phased_trace(config, 0) != generate_phased_trace(config, 1)


class TestConfigValidation:
    def test_bad_transition_row_sum(self):
        phase = Phase("p", PhaseKind.RANDOM, 1024)
        with pytest.raises(ConfigurationError, match="probability"):
            PhasedWorkloadConfig(
                phases=(phase,), transitions=((0.5,),), num_requests=10
            )

    def test_bad_matrix_shape(self):
        phase = Phase("p", PhaseKind.RANDOM, 1024)
        with pytest.raises(ConfigurationError):
            PhasedWorkloadConfig(
                phases=(phase, phase), transitions=((1.0,),), num_requests=10
            )

    def test_footprint_is_largest_phase(self):
        config = control_task_config(footprint_bytes=8192)
        assert config.footprint_bytes == 8192

    def test_control_task_visits_all_phases(self):
        config = control_task_config(num_requests=3000, seed=1)
        trace = generate_phased_trace(config)
        # The hot loop alone touches ~8 lines; scans/lookups push the
        # footprint toward the full range.
        assert trace.footprint_blocks(64) > 16


class TestPhasedWorkload:
    def test_disjoint_across_cores(self):
        traces = generate_phased_workload([0, 1, 2], num_requests=300)
        footprints = [set(t.addresses()) for t in traces.values()]
        for i, first in enumerate(footprints):
            for second in footprints[i + 1 :]:
                assert not (first & second)

    def test_overlapping_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_phased_workload([0, 1], footprint_bytes=8192, stride=1024)

    def test_runs_through_the_simulator(self):
        from repro.sim.simulator import simulate

        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, sets=(0, 1, 2, 3), ways=4)],
            llc_sets=4,
            llc_ways=4,
            max_slots=300_000,
        )
        traces = generate_phased_workload([0, 1], num_requests=300,
                                          footprint_bytes=2048)
        report = simulate(config, traces)
        assert not report.timed_out
        # Temporal locality should buy a decent private hit count.
        assert report.core_reports[0].private_hits > 0


class TestSweeps:
    def factory(self, num_cores=2):
        def build(seed):
            workload = SyntheticWorkloadConfig(
                num_requests=80, address_range_size=1024, seed=seed
            )
            return generate_disjoint_workload(workload, list(range(num_cores)))

        return build

    def test_sweep_aggregates(self):
        config = small_config(num_cores=2)
        result = sweep_seeds(config, self.factory(), seeds=[1, 2, 3])
        assert len(result.observed_wcls) == 3
        assert result.max_observed_wcl == max(result.observed_wcls)
        assert result.wcl_spread >= 0
        assert result.mean_makespan > 0

    def test_check_failure_names_seed(self):
        config = small_config(num_cores=2)

        def check(report):
            assert report.observed_wcl() < 0, "impossible"

        with pytest.raises(AssertionError, match="seed 1"):
            sweep_seeds(config, self.factory(), seeds=[1], check=check)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_seeds(small_config(num_cores=2), self.factory(), seeds=[])

    def test_compare_configs_same_traces(self):
        ss = small_config(num_cores=2, sequencer=True)
        nss = small_config(num_cores=2, sequencer=False)
        results = compare_configs(
            {"ss": ss, "nss": nss}, self.factory(), seeds=[5, 6]
        )
        assert set(results) == {"ss", "nss"}
        for result in results.values():
            assert len(result.seeds) == 2
