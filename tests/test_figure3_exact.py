"""Figure 3, reproduced slot by slot.

The paper's Figure 3 walks the 1S-TDM schedule ``{c_ua, c2, c3, c4}``
through a 2-way set: the core under analysis requests X, the LLC evicts
l1 (privately cached by c3), c3 writes it back, c4 steals the freed
entry, and the pattern repeats for l2 — until both lines belong to c4,
whose forced write-back finally lets c_ua complete "in s_{t+3}" (slot
t + 3 periods).

This test constructs exactly that execution with our cores
(c_ua = core 0, paper's c3 = core 2, paper's c4 = core 3), pins the
timing with per-core start cycles, and asserts the full event sequence
and the 3-period completion.
"""

import pytest

from repro.common.types import AccessType
from repro.llc.partition import PartitionSpec
from repro.sim.config import SystemConfig
from repro.sim.events import EventKind
from repro.sim.simulator import Simulator
from repro.workloads.trace import MemoryTrace, TraceRecord

SW = 50
PERIOD = 4 * SW

# Distinct blocks, all folding onto the single partition set.
A, B, X, Y1, Y2 = 10, 20, 30, 40, 50


@pytest.fixture(scope="module")
def run():
    partition = PartitionSpec(
        "shared", [0], (0, 2), (0, 1, 2, 3), sequencer=False
    )
    config = SystemConfig(
        num_cores=4,
        partitions=[partition],
        llc_sets=1,
        llc_ways=2,
        slot_width=SW,
        llc_policy="lru",
        record_events=True,
        max_slots=10_000,
    )
    traces = {
        # Paper's c3 (our core 2): warms the set with l1 = A, l2 = B.
        2: MemoryTrace(
            [TraceRecord(A * 64, AccessType.WRITE),
             TraceRecord(B * 64, AccessType.WRITE)]
        ),
        # The core under analysis: one request to X, issued in slot 8.
        0: MemoryTrace([TraceRecord(X * 64, AccessType.WRITE)]),
        # Paper's c4 (our core 3): occupies each freed entry.
        3: MemoryTrace(
            [TraceRecord(Y1 * 64, AccessType.WRITE),
             TraceRecord(Y2 * 64, AccessType.WRITE)]
        ),
    }
    sim = Simulator(config, traces, start_cycles={0: 400, 3: 420})
    report = sim.run()
    return sim, report


def events_at_slot(report, slot, kind):
    return [
        event
        for event in report.events.of_kind(kind)
        if event.slot == slot
    ]


class TestFigure3SlotBySlot:
    def test_step1_cua_evicts_l1_owned_by_c3(self, run):
        _sim, report = run
        evictions = events_at_slot(report, 8, EventKind.EVICT_START)
        assert len(evictions) == 1
        assert evictions[0].core == 0
        assert evictions[0].block == A
        assert "owners=[2]" in evictions[0].detail

    def test_step2_c3_writes_back_l1_in_its_slot(self, run):
        _sim, report = run
        writebacks = events_at_slot(report, 10, EventKind.WB_SENT)
        assert len(writebacks) == 1
        assert writebacks[0].core == 2
        assert writebacks[0].block == A
        assert events_at_slot(report, 10, EventKind.ENTRY_FREED)

    def test_step3_c4_occupies_the_freed_entry(self, run):
        _sim, report = run
        allocations = events_at_slot(report, 11, EventKind.LLC_ALLOC)
        assert len(allocations) == 1
        assert allocations[0].core == 3
        assert allocations[0].block == Y1

    def test_step4_cua_evicts_l2_owned_by_c3(self, run):
        _sim, report = run
        evictions = events_at_slot(report, 12, EventKind.EVICT_START)
        assert len(evictions) == 1
        assert evictions[0].block == B
        assert "owners=[2]" in evictions[0].detail

    def test_step5_and_6_second_steal(self, run):
        _sim, report = run
        assert events_at_slot(report, 14, EventKind.WB_SENT)[0].block == B
        allocations = events_at_slot(report, 15, EventKind.LLC_ALLOC)
        assert allocations[0].core == 3
        assert allocations[0].block == Y2

    def test_step8_c4_must_give_a_line_back(self, run):
        _sim, report = run
        evictions = events_at_slot(report, 16, EventKind.EVICT_START)
        assert len(evictions) == 1
        assert evictions[0].block == Y1  # the LRU of c4's two lines
        assert "owners=[3]" in evictions[0].detail
        writebacks = events_at_slot(report, 19, EventKind.WB_SENT)
        assert writebacks[0].core == 3
        assert writebacks[0].block == Y1

    def test_step9_cua_completes_in_slot_t_plus_3_periods(self, run):
        _sim, report = run
        allocations = events_at_slot(report, 20, EventKind.LLC_ALLOC)
        assert len(allocations) == 1
        assert allocations[0].core == 0
        assert allocations[0].block == X
        record = next(r for r in report.requests if r.core == 0)
        assert record.first_on_bus_at == 400       # slot t = slot 8
        assert record.completed_at == 1000 + 45    # within slot t + 3 periods
        assert record.bus_latency == 3 * PERIOD + 45

    def test_distance_trajectory_matches_the_paper(self, run):
        """The entry holding l1 goes c3 (d=2) -> c4 (d=1) -> c_ua."""
        from repro.analysis.distance import tracker_from_events

        sim, report = run
        tracker = tracker_from_events(
            report.events, sim.system.schedule, observer=0
        )
        l1_entry_key = next(
            key
            for key in tracker.history
            if any(
                change.owner == 2 for change in tracker.history[key]
            )
        )
        owners = [
            change.owner
            for change in tracker.history[l1_entry_key]
            if change.owner is not None
        ]
        # Paper's narrative for l1's entry: c3, then c4, finally c_ua.
        assert owners[:1] == [2]
        assert 3 in owners
        trajectory = [
            d for d in tracker.trajectory(l1_entry_key) if d is not None
        ]
        # d(c3 -> c_ua) = 2, d(c4 -> c_ua) = 1: non-increasing start.
        assert trajectory[0] == 2
        assert 1 in trajectory

    def test_everyone_completed(self, run):
        _sim, report = run
        assert not report.timed_out
        for core in (0, 2, 3):
            assert report.core_reports[core].completed
