"""Tests for the extended CLI subcommands."""

import json

import pytest

from repro.cli import main


class TestSimulateCommand:
    def test_basic_run(self, capsys):
        assert main(["simulate", "SS(1,16,4)", "--suite", "storm",
                     "--requests", "60"]) == 0
        out = capsys.readouterr().out
        assert "SS(1,16,4)" in out
        assert "latency p50/p90/p99/max" in out

    def test_json_export(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        assert main([
            "simulate", "P(1,16)", "--suite", "fig7",
            "--requests", "40", "--json", str(target),
        ]) == 0
        data = json.loads(target.read_text())
        assert data["makespan"] > 0
        assert "cores" in data

    def test_csv_export(self, tmp_path):
        target = tmp_path / "requests.csv"
        assert main([
            "simulate", "P(1,16)", "--suite", "fig7",
            "--requests", "40", "--csv", str(target),
        ]) == 0
        lines = target.read_text().splitlines()
        assert lines[0].startswith("core,block")
        assert len(lines) > 1

    def test_different_suites(self, capsys):
        for suite in ("readonly", "mixed", "pingpong"):
            assert main([
                "simulate", "SS(1,16,4)", "--suite", suite, "--requests", "40",
            ]) == 0


class TestWorkloadCommand:
    def test_list(self, capsys):
        assert main(["workload", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "storm" in out

    def test_dump_traces(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        assert main([
            "workload", "fig7", "--cores", "2", "--requests", "30",
            "--out", str(out_dir),
        ]) == 0
        files = sorted(out_dir.glob("*.trace"))
        assert len(files) == 2
        from repro.workloads.trace import read_trace

        trace = read_trace(files[0])
        assert len(trace) == 30

    def test_dumped_traces_replayable(self, tmp_path):
        out_dir = tmp_path / "traces"
        main(["workload", "storm", "--cores", "2", "--requests", "24",
              "--out", str(out_dir)])
        from repro.sim.simulator import simulate
        from repro.workloads.trace import read_trace
        from sim_helpers import shared_partition, small_config

        traces = {
            core: read_trace(out_dir / f"storm-core{core}.trace")
            for core in (0, 1)
        }
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=4)],
            llc_sets=1,
            llc_ways=4,
        )
        report = simulate(config, traces)
        assert not report.timed_out


class TestTimelineCommand:
    def test_renders(self, capsys):
        assert main([
            "timeline", "SS(1,16,2)", "--cores", "2", "--slots", "30",
            "--requests", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "core  0" in out
        assert "legend:" in out


class TestTightnessCommand:
    def test_runs(self, capsys):
        assert main(["tightness", "--repeats", "8"]) == 0
        out = capsys.readouterr().out
        assert "Bound tightness" in out


class TestAllCommand:
    def test_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        code = main(["all", "--out", str(out_dir), "--requests", "100"])
        assert (out_dir / "SUMMARY.txt").exists()
        assert (out_dir / "figure-7.txt").exists()
        summary = json.loads((out_dir / "summary.json").read_text())
        assert "figure-7" in summary
        assert code in (0, 1)  # shape checks may be noisy at tiny sizes
