"""Unit tests for byte-size parsing and formatting."""

import pytest

from repro.common.units import format_bytes, parse_bytes


class TestParseBytes:
    def test_plain_integer_passthrough(self):
        assert parse_bytes(4096) == 4096

    def test_zero(self):
        assert parse_bytes(0) == 0

    def test_negative_integer_rejected(self):
        with pytest.raises(ValueError):
            parse_bytes(-1)

    def test_bare_number_string(self):
        assert parse_bytes("64") == 64

    def test_kib(self):
        assert parse_bytes("4KiB") == 4096

    def test_kb_is_binary(self):
        assert parse_bytes("2KB") == 2048

    def test_short_k(self):
        assert parse_bytes("8k") == 8192

    def test_mib(self):
        assert parse_bytes("1MiB") == 1024**2

    def test_gib(self):
        assert parse_bytes("2GiB") == 2 * 1024**3

    def test_case_insensitive(self):
        assert parse_bytes("4kIb") == 4096

    def test_whitespace_tolerated(self):
        assert parse_bytes("  4 KiB ") == 4096

    def test_explicit_b_suffix(self):
        assert parse_bytes("512B") == 512

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_bytes("four")

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError):
            parse_bytes("4TiBs")

    def test_float_rejected(self):
        with pytest.raises(ValueError):
            parse_bytes("4.5KiB")


class TestFormatBytes:
    def test_exact_kib(self):
        assert format_bytes(4096) == "4KiB"

    def test_exact_mib(self):
        assert format_bytes(1024**2) == "1MiB"

    def test_exact_gib(self):
        assert format_bytes(3 * 1024**3) == "3GiB"

    def test_non_multiple_stays_bytes(self):
        assert format_bytes(1000) == "1000B"

    def test_zero(self):
        assert format_bytes(0) == "0B"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-5)

    @pytest.mark.parametrize("size", [64, 1024, 4096, 65536, 1024**2, 5 * 1024**3, 777])
    def test_roundtrip(self, size):
        assert parse_bytes(format_bytes(size)) == size
