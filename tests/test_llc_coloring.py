"""Tests for the page-coloring bridge."""

import pytest

from repro.common.errors import PartitionError
from repro.llc.coloring import (
    ColorGeometry,
    ColoredAllocator,
    colored_allocator_for_partition,
    colors_of_partition,
    is_colorable,
)
from repro.llc.partition import PartitionSpec

#: The paper's LLC with 4 KiB pages: 32 sets x 64B lines = 2 KiB of
#: sets per "pass", pages span 64 sets worth... here: 4096/64 = 64
#: lines per page > 32 sets -> a single color.
PAPER = ColorGeometry(line_size=64, num_sets=32, page_size=4096)

#: A colorable setup: 512-byte "pages" cover 8 sets -> 4 colors.
SMALL_PAGES = ColorGeometry(line_size=64, num_sets=32, page_size=512)


class TestColorGeometry:
    def test_paper_geometry_has_one_color(self):
        assert PAPER.sets_per_page == 32
        assert PAPER.num_colors == 1

    def test_small_pages_give_four_colors(self):
        assert SMALL_PAGES.sets_per_page == 8
        assert SMALL_PAGES.num_colors == 4

    def test_color_of_page_cycles(self):
        assert [SMALL_PAGES.color_of_page(i) for i in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_color_of_address(self):
        assert SMALL_PAGES.color_of_address(0) == 0
        assert SMALL_PAGES.color_of_address(512) == 1
        assert SMALL_PAGES.color_of_address(4 * 512 + 17) == 0

    def test_sets_of_color(self):
        assert list(SMALL_PAGES.sets_of_color(0)) == list(range(0, 8))
        assert list(SMALL_PAGES.sets_of_color(3)) == list(range(24, 32))

    def test_color_bounds_checked(self):
        with pytest.raises(PartitionError):
            SMALL_PAGES.sets_of_color(4)
        with pytest.raises(PartitionError):
            SMALL_PAGES.color_of_page(-1)

    def test_page_smaller_than_line_rejected(self):
        with pytest.raises(PartitionError):
            ColorGeometry(line_size=64, num_sets=32, page_size=32)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(PartitionError):
            ColorGeometry(line_size=64, num_sets=24, page_size=512)


def partition_with_sets(sets, name="p"):
    return PartitionSpec(name, list(sets), (0, 16), (0,))


class TestColorsOfPartition:
    def test_whole_color_partition(self):
        partition = partition_with_sets(range(0, 8))
        assert colors_of_partition(partition, SMALL_PAGES) == {0}

    def test_multi_color_partition(self):
        partition = partition_with_sets(range(8, 24))
        assert colors_of_partition(partition, SMALL_PAGES) == {1, 2}

    def test_partial_color_rejected(self):
        partition = partition_with_sets(range(0, 4))
        with pytest.raises(PartitionError, match="page coloring"):
            colors_of_partition(partition, SMALL_PAGES)

    def test_is_colorable(self):
        assert is_colorable(partition_with_sets(range(0, 8)), SMALL_PAGES)
        assert not is_colorable(partition_with_sets(range(0, 5)), SMALL_PAGES)

    def test_paper_partition_of_one_set_not_colorable_with_4k_pages(self):
        # The Figure 7 single-set partitions need hardware (way/set
        # index) support; 4 KiB-page coloring cannot express them.
        assert not is_colorable(partition_with_sets([0]), PAPER)

    def test_full_llc_is_colorable(self):
        assert is_colorable(partition_with_sets(range(32)), PAPER)


class TestColoredAllocator:
    def test_pages_cycle_through_colors(self):
        allocator = ColoredAllocator(SMALL_PAGES, [1, 3])
        pages = [allocator.page(i) for i in range(5)]
        assert pages == [1, 3, 5, 7, 9]
        assert all(SMALL_PAGES.color_of_page(p) in (1, 3) for p in pages)

    def test_single_color(self):
        allocator = ColoredAllocator(SMALL_PAGES, [2])
        assert [allocator.page(i) for i in range(3)] == [2, 6, 10]

    def test_translate_preserves_page_offsets(self):
        allocator = ColoredAllocator(SMALL_PAGES, [0])
        assert allocator.translate(0) == 0
        assert allocator.translate(100) == 100
        # Second virtual page -> next color-0 physical page (page 4).
        assert allocator.translate(512) == 4 * 512
        assert allocator.translate(512 + 7) == 4 * 512 + 7

    def test_translated_addresses_stay_in_partition_sets(self):
        partition = partition_with_sets(range(8, 16), name="colored")
        allocator = colored_allocator_for_partition(partition, SMALL_PAGES)
        for virtual in range(0, 8 * 512, 64):
            physical = allocator.translate(virtual)
            set_index = (physical // 64) % 32
            assert set_index in set(partition.sets)

    def test_distinct_virtual_addresses_distinct_physical(self):
        allocator = ColoredAllocator(SMALL_PAGES, [0, 2])
        seen = {allocator.translate(v) for v in range(0, 4096, 64)}
        assert len(seen) == 64

    def test_bad_inputs_rejected(self):
        with pytest.raises(PartitionError):
            ColoredAllocator(SMALL_PAGES, [])
        with pytest.raises(PartitionError):
            ColoredAllocator(SMALL_PAGES, [9])
        allocator = ColoredAllocator(SMALL_PAGES, [0])
        with pytest.raises(PartitionError):
            allocator.translate(-1)
        with pytest.raises(PartitionError):
            allocator.page(-1)
