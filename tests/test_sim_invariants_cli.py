"""System invariants through full runs, plus CLI coverage."""

import pytest

from repro.cli import build_parser, main
from repro.sim.simulator import Simulator
from repro.workloads.adversarial import conflict_storm_traces
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)

from sim_helpers import shared_partition, small_config, write_trace_of


class TestInclusivityInvariant:
    def test_holds_after_storm(self):
        config = small_config(
            num_cores=4,
            partitions=[shared_partition(4, ways=4, sequencer=True)],
            llc_sets=1,
            llc_ways=4,
            max_slots=500_000,
        )
        traces = conflict_storm_traces(
            cores=[0, 1, 2, 3], partition_sets=1, lines_per_core=6, repeats=15
        )
        sim = Simulator(config, traces)
        sim.run()  # Simulator.run checks inclusivity at the end
        sim.system.check_inclusivity()

    def test_holds_mid_run_every_period(self):
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=2)],
            llc_sets=2,
            llc_ways=2,
            max_slots=50_000,
        )
        traces = {
            0: write_trace_of([0, 2, 4, 6, 0, 2]),
            1: write_trace_of([1, 3, 5, 7, 1, 3]),
        }
        sim = Simulator(config, traces)
        engine = sim.engine
        # Drive the engine slot by slot, checking after each slot.
        while not engine._finished() and engine._slot < 2_000:
            slot_start = engine.schedule.slot_start(engine._slot)
            for core_id in sim.system.cores:
                engine._advance_core(core_id, slot_start + 1)
            owner = engine.schedule.owner_of_slot(engine._slot)
            engine._do_slot(owner, slot_start)
            engine._slot += 1
            sim.system.check_inclusivity()
        assert engine._finished()

    def test_synthetic_workload_leaves_llc_consistent(self):
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, sets=(0, 1, 2, 3), ways=4)],
            llc_sets=4,
            llc_ways=4,
            max_slots=200_000,
        )
        workload = SyntheticWorkloadConfig(
            num_requests=150, address_range_size=2048, seed=5
        )
        traces = generate_disjoint_workload(workload, [0, 1])
        sim = Simulator(config, traces)
        report = sim.run()
        assert not report.timed_out
        sim.system.llc.validate()

    def test_pwb_drains_by_default(self):
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=1)],
            llc_sets=1,
            llc_ways=1,
        )
        traces = {0: write_trace_of([0, 2]), 1: write_trace_of([1, 3])}
        sim = Simulator(config, traces)
        sim.run()
        for pwb in sim.system.pwbs.values():
            assert pwb.is_empty


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["bounds", "SS(1,16,4)"])
        assert args.notation == "SS(1,16,4)"

    def test_bounds_command(self, capsys):
        assert main(["bounds", "SS(1,16,4)"]) == 0
        out = capsys.readouterr().out
        assert "5000" in out

    def test_bounds_command_nss(self, capsys):
        assert main(["bounds", "NSS(1,16,4)"]) == 0
        assert "979250" in capsys.readouterr().out

    def test_bounds_command_private(self, capsys):
        assert main(["bounds", "P(1,16)"]) == 0
        assert "450" in capsys.readouterr().out

    def test_fig7_command_small(self, capsys):
        assert main(["fig7", "--requests", "60"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "VIOLATED" not in out

    def test_fig8_command_small(self, capsys):
        assert main(["fig8", "8a", "--requests", "120"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8a" in out
        assert "average SS speedup" in out

    def test_unbounded_command_small(self, capsys):
        assert main(["unbounded", "--lengths", "10", "20", "--ways", "2"]) == 0
        out = capsys.readouterr().out
        assert "grows with the stream: True" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
