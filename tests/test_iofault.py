"""The I/O fault injector and the persistence durability policy.

Covers the seam primitives (every fault kind lands where its spec
says), the two durability classes (ESSENTIAL retry-then-loud,
BEST-EFFORT circuit breaker), the ``.tmp``-leak fix, the counted
``io.swallowed.*`` metrics that replaced silent ``except OSError:
pass``, the loud trace-sink failure, and the ``--io-fault`` CLI flag.
"""

import errno
import json

import pytest

from sim_helpers import small_config, write_trace_of

from repro.cli import main
from repro.common import fileio
from repro.common.errors import (
    ConfigurationError,
    ObservabilityError,
    PersistenceError,
)
from repro.common.fileio import (
    Durability,
    EssentialRetryPolicy,
    atomic_write_text,
    persist_text,
    read_bytes,
    tmp_sibling,
)
from repro.obs.tracing import JsonlTraceSink
from repro.robustness.iofault import (
    InjectedIoError,
    IoFaultKind,
    IoFaultPlan,
    IoFaultSpec,
    io_faults,
    record_io_operations,
)
from repro.sim.cache import clear_result_cache, install_result_cache
from repro.sim.simulator import simulate


@pytest.fixture(autouse=True)
def _fresh_io_state():
    """Closed breakers, zero counters, no hook, no retry backoff."""
    fileio.reset_io_state()
    fileio.set_essential_retry(EssentialRetryPolicy(backoff_base=0.0))
    yield
    fileio.set_essential_retry(EssentialRetryPolicy())
    fileio.reset_io_state()


def _workload(length=60, blocks=16, seed=3):
    import random

    rng = random.Random(seed)
    return {
        core: write_trace_of([rng.randrange(blocks) for _ in range(length)])
        for core in (0, 1)
    }


def _counter(name):
    return fileio.io_metrics().counter(name).value


def plan(*texts, seed=0):
    return IoFaultPlan([IoFaultSpec.parse(text) for text in texts], seed=seed)


# ----------------------------------------------------------------------
# Spec grammar
# ----------------------------------------------------------------------
class TestSpecParsing:
    @pytest.mark.parametrize(
        "text, kind, nth, count",
        [
            ("enospc", IoFaultKind.ENOSPC, 1, 1),
            ("eio@7", IoFaultKind.EIO, 7, 1),
            ("eintr@3x2", IoFaultKind.EINTR, 3, 2),
            ("enospc@2x*", IoFaultKind.ENOSPC, 2, None),
            ("SHORT-WRITE@1", IoFaultKind.SHORT_WRITE, 1, 1),
        ],
    )
    def test_windows(self, text, kind, nth, count):
        spec = IoFaultSpec.parse(text)
        assert (spec.kind, spec.nth, spec.count) == (kind, nth, count)

    def test_filters(self):
        spec = IoFaultSpec.parse("eio@2,site=result-cache,op=read,path=res-*")
        assert spec.site == "result-cache"
        assert spec.op == "read"
        assert spec.path_glob == "res-*"

    def test_describe_round_trips(self):
        for text in (
            "enospc",
            "eio@7",
            "eintr@3x2",
            "enospc@2x*",
            "fsync@1,site=manifest",
            "corrupt-read@1,path=*.json",
            "eacces@1,op=open",
        ):
            spec = IoFaultSpec.parse(text)
            assert IoFaultSpec.parse(spec.describe()) == spec

    @pytest.mark.parametrize(
        "bad, needle",
        [
            ("whatever@1", "unknown io-fault kind"),
            ("enospc@x", "bad io-fault position"),
            ("enospc@1xq", "bad io-fault count"),
            ("enospc@0", "nth must be >= 1"),
            ("enospc@1,yo=1", "unknown io-fault filter key"),
            ("enospc@1,site=", "expected key=value"),
            ("enospc@1,op=frobnicate", "unknown op"),
        ],
    )
    def test_rejects_malformed(self, bad, needle):
        with pytest.raises(ConfigurationError, match=needle):
            IoFaultSpec.parse(bad)


# ----------------------------------------------------------------------
# Every fault kind lands where its spec says
# ----------------------------------------------------------------------
class TestFaultKinds:
    def test_enospc_mid_write_leaves_no_orphan_tmp(self, tmp_path):
        """Satellite: a failed atomic write cleans up its .tmp sibling."""
        target = tmp_path / "a.json"
        with io_faults(plan("enospc@1")):
            with pytest.raises(InjectedIoError) as excinfo:
                atomic_write_text(target, "x" * 4096, site="manifest")
        assert excinfo.value.errno == errno.ENOSPC
        assert not target.exists()
        assert not tmp_sibling(target).exists()
        assert list(tmp_path.iterdir()) == []

    def test_short_write_leaves_no_torn_file(self, tmp_path):
        target = tmp_path / "b.json"
        with io_faults(plan("short-write@1")):
            with pytest.raises(InjectedIoError):
                atomic_write_text(target, "Z" * 4096, site="manifest")
        # Half the bytes reached the temp file, but neither a torn
        # target nor the partial sibling survives.
        assert not target.exists()
        assert not tmp_sibling(target).exists()

    def test_rename_failure_keeps_previous_generation(self, tmp_path):
        target = tmp_path / "c.json"
        atomic_write_text(target, "old generation", site="manifest")
        with io_faults(plan("rename@1")):
            with pytest.raises(InjectedIoError) as excinfo:
                atomic_write_text(target, "new generation", site="manifest")
        assert excinfo.value.errno == errno.EIO
        assert target.read_text() == "old generation"
        assert not tmp_sibling(target).exists()

    def test_fsync_failure_targets_the_fsync_op(self, tmp_path):
        with io_faults(plan("fsync@1")) as active:
            with pytest.raises(InjectedIoError):
                atomic_write_text(tmp_path / "d.json", "x", site="manifest")
        assert [f.operation.op for f in active.fired] == ["fsync"]

    def test_eacces_targets_open(self, tmp_path):
        with io_faults(plan("eacces@1")) as active:
            with pytest.raises(InjectedIoError) as excinfo:
                atomic_write_text(tmp_path / "e.json", "x", site="manifest")
        assert excinfo.value.errno == errno.EACCES
        assert [f.operation.op for f in active.fired] == ["open"]

    def test_nth_and_count_windows(self, tmp_path):
        # eio@2x2 over ops (open write fsync replace fsync-dir):
        # fires at ops 2 and 3 of the *matching* stream only.
        with io_faults(plan("eio@2x2,op=write")) as active:
            atomic_write_text(tmp_path / "f1.json", "x", site="s")
            with pytest.raises(InjectedIoError):
                atomic_write_text(tmp_path / "f2.json", "x", site="s")
            with pytest.raises(InjectedIoError):
                atomic_write_text(tmp_path / "f3.json", "x", site="s")
            atomic_write_text(tmp_path / "f4.json", "x", site="s")
        assert len(active.fired) == 2
        assert (tmp_path / "f4.json").exists()

    def test_site_and_path_filters(self, tmp_path):
        with io_faults(plan("enospc@1x*,site=result-cache")):
            atomic_write_text(tmp_path / "g.json", "x", site="manifest")
            with pytest.raises(InjectedIoError):
                atomic_write_text(tmp_path / "h.json", "x", site="result-cache")
        with io_faults(plan("enospc@1x*,path=res-*.json")):
            atomic_write_text(tmp_path / "other.json", "x", site="s")
            with pytest.raises(InjectedIoError):
                atomic_write_text(tmp_path / "res-abc.json", "x", site="s")

    def test_read_corruption_is_deterministic_per_seed(self, tmp_path):
        target = tmp_path / "i.json"
        atomic_write_text(target, "GOOD DATA BYTES", site="s")
        corrupted = []
        for _ in range(2):
            with io_faults(plan("corrupt-read@1", seed=42)):
                corrupted.append(read_bytes(target, site="s"))
        assert corrupted[0] == corrupted[1]
        assert corrupted[0] != b"GOOD DATA BYTES"
        # The real bytes are untouched.
        assert target.read_bytes() == b"GOOD DATA BYTES"

    def test_recorder_sees_the_operation_stream(self, tmp_path):
        with record_io_operations() as recorder:
            atomic_write_text(tmp_path / "j.json", "x", site="manifest")
        assert [op.op for op in recorder.operations] == [
            "open", "write", "fsync", "replace", "fsync-dir",
        ]
        assert {op.site for op in recorder.operations} == {"manifest"}


# ----------------------------------------------------------------------
# Durability classes
# ----------------------------------------------------------------------
class TestEssentialPolicy:
    def test_transient_fault_is_absorbed_by_retry(self, tmp_path):
        target = tmp_path / "a.json"
        with io_faults(plan("eintr@1")):
            out = persist_text(target, "data", site="manifest")
        assert out == target and target.read_text() == "data"
        assert _counter("io.retry.manifest") == 1
        assert _counter("io.fault.manifest") == 1

    def test_persistent_fault_raises_actionable_persistence_error(
        self, tmp_path
    ):
        target = tmp_path / "b.json"
        with io_faults(plan("enospc@1x*")):
            with pytest.raises(PersistenceError) as excinfo:
                persist_text(target, "data", site="manifest")
        message = str(excinfo.value)
        # Actionable: the path, the site, the errno and what to do.
        assert str(target) in message
        assert "manifest" in message
        assert str(errno.ENOSPC) in message
        assert "free disk space" in message
        assert _counter("io.retry.manifest") == 2  # attempts - 1
        assert not tmp_sibling(target).exists()

    def test_retry_policy_backoff_schedule(self):
        policy = EssentialRetryPolicy(
            max_attempts=4, backoff_base=0.05, backoff_factor=2.0
        )
        assert [policy.delay(n) for n in (1, 2, 3)] == [0.05, 0.1, 0.2]


class TestBestEffortPolicy:
    def test_breaker_trips_after_k_failures_with_one_notice(
        self, tmp_path, capsys
    ):
        with io_faults(plan("enospc@1x*,site=result-cache")):
            results = [
                persist_text(
                    tmp_path / f"{i}.json",
                    "data",
                    site="result-cache",
                    durability=Durability.BEST_EFFORT,
                )
                for i in range(5)
            ]
        assert results == [None] * 5
        err = capsys.readouterr().err
        assert err.count("disabled after") == 1
        assert "result-cache" in err
        assert "run continues" in err
        assert _counter("io.degraded.result-cache") == fileio.DEGRADE_AFTER
        assert _counter("io.skipped.result-cache") == 5 - fileio.DEGRADE_AFTER
        assert fileio.circuit_breaker("result-cache").open

    def test_success_resets_the_consecutive_count(self, tmp_path):
        with io_faults(plan("enospc@1x2,site=result-cache")):
            for i in range(4):
                persist_text(
                    tmp_path / f"{i}.json",
                    "data",
                    site="result-cache",
                    durability=Durability.BEST_EFFORT,
                )
        # Two failures, then successes: never reaches the threshold.
        assert not fileio.circuit_breaker("result-cache").open
        assert (tmp_path / "2.json").exists()

    def test_breakers_are_per_site(self, tmp_path):
        with io_faults(plan("enospc@1x*,site=result-cache")):
            for i in range(fileio.DEGRADE_AFTER):
                persist_text(
                    tmp_path / f"{i}.json",
                    "x",
                    site="result-cache",
                    durability=Durability.BEST_EFFORT,
                )
            out = persist_text(
                tmp_path / "other.json",
                "x",
                site="auto-checkpoint",
                durability=Durability.BEST_EFFORT,
            )
        assert fileio.circuit_breaker("result-cache").open
        assert not fileio.circuit_breaker("auto-checkpoint").open
        assert out is not None


# ----------------------------------------------------------------------
# Counted swallows (satellite: no more silent `except OSError: pass`)
# ----------------------------------------------------------------------
class TestSwallowedCounters:
    def test_fsync_directory_failure_is_counted_not_silent(self, tmp_path):
        with io_faults(plan("eio@1,op=fsync-dir")):
            fileio.fsync_directory(tmp_path, site="manifest")
        assert _counter("io.swallowed.fsync-dir") == 1

    def test_cache_lookup_read_failure_is_counted_as_miss(self, tmp_path):
        config = small_config()
        traces = _workload()
        cache = install_result_cache(tmp_path / "cache")
        try:
            reference = simulate(config, traces)
            cache._memo.clear()  # force the next lookup to hit the disk
            with io_faults(plan("eio@1x*,site=result-cache,op=read")):
                again = simulate(config, traces)
        finally:
            clear_result_cache()
        # The unreadable entry degraded to a recompute, counted, with
        # byte-identical results.
        assert _counter("io.swallowed.result-cache.read") >= 1
        assert again.latencies() == reference.latencies()

    def test_cache_verify_read_failure_is_counted(self, tmp_path):
        from repro.sim.cache import SimResultCache

        config = small_config()
        traces = _workload()
        cache = SimResultCache(tmp_path / "cache")
        cache.store(config, traces, None, simulate(config, traces))
        with io_faults(plan("eio@1x*,site=result-cache,op=read")):
            ok, removed = cache.verify()
        assert ok == [] and removed == []
        assert _counter("io.swallowed.result-cache.read") == 1

    def test_corrupted_cache_read_is_rejected_by_integrity_check(
        self, tmp_path
    ):
        config = small_config()
        traces = _workload()
        cache = install_result_cache(tmp_path / "cache")
        try:
            reference = simulate(config, traces)
            cache._memo.clear()
            with io_faults(plan("corrupt-read@1,site=result-cache")):
                again = simulate(config, traces)
        finally:
            clear_result_cache()
        # Corrupted bytes are never trusted: the entry was dropped and
        # the run recomputed the same report.
        assert again.latencies() == reference.latencies()
        corruption = cache.registry.counter("sim_cache.corruption").value
        misses = cache.registry.counter("sim_cache.misses").value
        assert corruption + misses >= 1


# ----------------------------------------------------------------------
# Best-effort stores degrade; results stay byte-identical
# ----------------------------------------------------------------------
class TestDegradedRuns:
    def test_cache_store_failure_degrades_run_stays_correct(self, tmp_path):
        config = small_config()
        traces = _workload()
        reference = simulate(config, traces)
        cache = install_result_cache(tmp_path / "cache")
        try:
            with io_faults(plan("enospc@1x*,site=result-cache")):
                degraded = simulate(config, traces)
        finally:
            clear_result_cache()
        assert degraded.latencies() == reference.latencies()
        assert _counter("io.degraded.result-cache") >= 1
        assert cache.registry.counter("sim_cache.stores").value == 0
        assert list((tmp_path / "cache").glob("*.tmp")) == []

    def test_auto_checkpoint_failure_degrades_run_stays_correct(
        self, tmp_path
    ):
        from repro.robustness.checkpoint import (
            clear_auto_checkpoints,
            install_auto_checkpoints,
        )

        config = small_config()
        traces = _workload(length=120)
        reference = simulate(config, traces)
        install_auto_checkpoints(tmp_path / "ckpts", every_slots=16)
        try:
            with io_faults(plan("enospc@1x*,site=auto-checkpoint")):
                degraded = simulate(config, traces)
        finally:
            clear_auto_checkpoints()
        assert degraded.latencies() == reference.latencies()
        assert _counter("io.degraded.auto-checkpoint") >= 1
        assert list((tmp_path / "ckpts").glob("*.tmp")) == []

    def test_corrupt_auto_checkpoint_restarts_instead_of_crashing(
        self, tmp_path
    ):
        from repro.robustness.checkpoint import run_resumable

        config = small_config()
        traces = _workload(length=120)
        reference = simulate(config, traces)
        path = tmp_path / "bad.ckpt"
        path.write_text("{ not a checkpoint")
        report = run_resumable(
            config,
            traces,
            path=path,
            every_slots=16,
            durability=Durability.BEST_EFFORT,
            site="auto-checkpoint",
        )
        assert report.latencies() == reference.latencies()
        assert _counter("io.degraded.auto-checkpoint") == 1


# ----------------------------------------------------------------------
# Trace sink failure is loud (satellite)
# ----------------------------------------------------------------------
class TestTraceSinkFailure:
    def test_mid_run_write_failure_is_loud_and_names_the_path(self, tmp_path):
        trace_path = tmp_path / "events.jsonl"
        sink = JsonlTraceSink(trace_path)
        config = small_config()
        with io_faults(plan("enospc@1,site=trace-sink,op=write")):
            with pytest.raises(ObservabilityError) as excinfo:
                simulate(config, _workload(), event_sink=sink)
        sink.close()
        assert str(trace_path) in str(excinfo.value)

    def test_open_failure_is_loud_and_names_the_path(self, tmp_path):
        trace_path = tmp_path / "denied.jsonl"
        with io_faults(plan("eacces@1,site=trace-sink")):
            with pytest.raises(ObservabilityError) as excinfo:
                JsonlTraceSink(trace_path)
        assert str(trace_path) in str(excinfo.value)

    def test_partial_trace_write_then_failure_keeps_prefix_valid(
        self, tmp_path
    ):
        # Fail the 5th event write: the first 4 lines must be complete
        # JSON (the sink appends whole lines, never torn ones).
        trace_path = tmp_path / "prefix.jsonl"
        sink = JsonlTraceSink(trace_path)
        with io_faults(plan("eio@5,site=trace-sink,op=write")):
            with pytest.raises(ObservabilityError):
                simulate(small_config(), _workload(), event_sink=sink)
        sink.close()
        lines = trace_path.read_text().splitlines()
        assert len(lines) == 4
        for line in lines:
            json.loads(line)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCliIoFault:
    def test_essential_report_export_fault_exits_1_with_message(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "simulate",
                "SS(1,16,4)",
                "--requests", "30",
                "--json", str(tmp_path / "report.json"),
                "--io-fault", "enospc@1x*,site=report-export",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "error: cannot persist essential artifact" in captured.err
        assert "report.json" in captured.err
        assert not (tmp_path / "report.json").exists()
        assert list(tmp_path.glob("*.tmp")) == []
        # The one-line injection summary names the fault count.
        assert "io-fault:" in captured.err

    def test_transient_essential_fault_is_invisible_in_the_output(
        self, tmp_path, capsys
    ):
        target = tmp_path / "report.json"
        code = main(
            [
                "simulate",
                "SS(1,16,4)",
                "--requests", "30",
                "--json", str(target),
                "--io-fault", "eintr@1,site=report-export",
            ]
        )
        capsys.readouterr()
        assert code == 0
        json.loads(target.read_text())

    def test_metrics_export_fault_exits_2_via_observability_error(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "stats",
                "SS(1,16,4)",
                "--requests", "30",
                "--metrics", str(tmp_path / "m.jsonl"),
                "--io-fault", "enospc@1x*,site=metrics-export",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot write metrics" in captured.err

    def test_trace_sink_fault_exits_2_with_path(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        code = main(
            [
                "stats",
                "SS(1,16,4)",
                "--requests", "30",
                "--trace", str(trace),
                "--io-fault", "eio@1,site=trace-sink,op=write",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert str(trace) in captured.err

    def test_best_effort_cache_fault_exits_0_and_degrades(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "simulate",
                "SS(1,16,4)",
                "--requests", "30",
                "--cache", str(tmp_path / "cache"),
                "--io-fault", "enospc@1x*,site=result-cache",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "disabled after" not in captured.err  # one miss, no trip
        assert _counter("io.degraded.result-cache") == 1

    def test_malformed_spec_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "SS(1,16,4)", "--io-fault", "frobnicate@1"])
        assert excinfo.value.code == 2
        assert "unknown io-fault kind" in capsys.readouterr().err
