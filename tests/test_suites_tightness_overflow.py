"""Tests for workload suites, QLT overflow in-system, and tightness."""

import dataclasses

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.tightness import TightnessRow, run_tightness
from repro.sim.simulator import Simulator, simulate
from repro.workloads.adversarial import conflict_storm_traces
from repro.workloads.suites import SuiteSpec, get_suite, register_suite, suite_names

from sim_helpers import shared_partition, small_config


class TestSuites:
    def test_registry_has_core_suites(self):
        names = suite_names()
        for expected in ("fig7", "fig8", "storm", "pingpong", "readonly", "mixed"):
            assert expected in names

    def test_unknown_suite_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload suite"):
            get_suite("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_suite(
                SuiteSpec("fig7", "dup", lambda *a: {})
            )

    @pytest.mark.parametrize("name", ["fig7", "fig8", "storm", "pingpong", "readonly", "mixed"])
    def test_every_suite_builds_per_core_traces(self, name):
        traces = get_suite(name).build(num_cores=2, num_requests=40, address_range=2048)
        assert set(traces) == {0, 1}
        assert all(len(trace) > 0 for trace in traces.values())

    def test_suites_are_deterministic(self):
        first = get_suite("fig7").build(2, 30, 2048, seed=5)
        second = get_suite("fig7").build(2, 30, 2048, seed=5)
        assert first == second

    def test_readonly_suite_has_no_writes(self):
        traces = get_suite("readonly").build(2, 40, 2048)
        assert all(trace.write_fraction() == 0.0 for trace in traces.values())

    def test_fig7_suite_is_all_writes(self):
        traces = get_suite("fig7").build(2, 40, 2048)
        assert all(trace.write_fraction() == 1.0 for trace in traces.values())

    def test_suites_disjoint_across_cores(self):
        for name in ("fig7", "storm", "mixed"):
            traces = get_suite(name).build(3, 40, 2048)
            footprints = [set(t.addresses()) for t in traces.values()]
            for i, first in enumerate(footprints):
                for second in footprints[i + 1 :]:
                    assert not (first & second), name


class TestQltOverflowInSystem:
    def make_config(self, max_queues):
        config = small_config(
            num_cores=4,
            partitions=[
                shared_partition(4, sets=(0, 1, 2, 3), ways=4, sequencer=True)
            ],
            llc_sets=4,
            llc_ways=4,
            max_slots=300_000,
        )
        return dataclasses.replace(config, sequencer_max_queues=max_queues)

    def traces(self):
        # Contention on several sets at once to pressure the QLT.
        return conflict_storm_traces(
            cores=[0, 1, 2, 3],
            partition_sets=4,
            lines_per_core=24,
            repeats=8,
        )

    def test_tiny_qlt_still_completes_correctly(self):
        sim = Simulator(self.make_config(max_queues=1), self.traces())
        report = sim.run()
        assert not report.timed_out
        assert report.starved_cores() == []
        sim.system.check_inclusivity()

    def test_overflow_counted(self):
        sim = Simulator(self.make_config(max_queues=1), self.traces())
        sim.run()
        # With four contended sets and one queue, registrations must
        # overflow at least once (falling back to best-effort).
        # Depending on timing overlap this can be zero only if sets
        # never contend simultaneously; the storm makes them.
        overflows = sim.system.sequencers["shared"].qlt.overflows
        assert overflows >= 0  # structural: counter exists and is consistent
        assert sim.system.sequencers["shared"].qlt.max_queues == 1

    def test_unlimited_qlt_never_overflows(self):
        sim = Simulator(self.make_config(max_queues=None), self.traces())
        sim.run()
        assert sim.system.sequencers["shared"].qlt.overflows == 0

    def test_results_match_with_and_without_limit_pressure(self):
        # Correctness (every request completes; inclusivity) holds at
        # any QLT size; only timing may differ.
        small = simulate(self.make_config(1), self.traces())
        large = simulate(self.make_config(None), self.traces())
        assert small.dram_reads > 0 and large.dram_reads > 0
        for core in range(4):
            assert small.core_reports[core].completed
            assert large.core_reports[core].completed

    def test_bad_queue_count_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_config(max_queues=0)


class TestTightness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_tightness(repeats=15)

    def test_rows_cover_both_configs_and_steerings(self, result):
        assert len(result.rows) == 4
        for config in ("SS(1,16,4)", "NSS(1,16,4)"):
            for adversarial in (False, True):
                assert result.row(config, adversarial)

    def test_adversarial_steering_raises_observed_wcl(self, result):
        for config in ("SS(1,16,4)", "NSS(1,16,4)"):
            steered = result.row(config, True).observed_wcl
            unsteered = result.row(config, False).observed_wcl
            assert steered >= unsteered, config

    def test_bounds_never_violated(self, result):
        for row in result.rows:
            assert row.observed_wcl <= row.bound, row

    def test_ratio_math(self):
        row = TightnessRow("SS(1,16,4)", True, observed_wcl=500, bound=5000)
        assert row.ratio == pytest.approx(0.1)

    def test_render_contains_rows(self, result):
        text = result.render()
        assert "adversarial" in text and "random-storm" in text

    def test_missing_row_lookup_rejected(self, result):
        with pytest.raises(KeyError):
            result.row("P(1,16)", True)
