"""Property-based temporal-isolation test.

The strongest guarantee strict partitioning sells: a core with a
private partition observes **bit-identical** per-request latencies no
matter what the other cores do.  Here hypothesis generates arbitrary
co-runner workloads and the property must hold for every one of them —
the generalized version of the E10 isolation experiment.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import AccessType
from repro.llc.partition import PartitionSpec
from repro.sim.config import SystemConfig
from repro.sim.simulator import simulate
from repro.workloads.trace import MemoryTrace, TraceRecord

LINE = 64


def config():
    return SystemConfig(
        num_cores=3,
        partitions=[
            # The observed core: its own 2 sets x 4 ways.
            PartitionSpec("observed", [0, 1], (0, 4), (0,)),
            # Two interferers sharing a separate region.
            PartitionSpec("others", [2, 3], (0, 4), (1, 2), sequencer=True),
        ],
        llc_sets=4,
        llc_ways=4,
        max_slots=200_000,
    )


def observed_trace():
    # A fixed, conflict-heavy workload for the observed core.
    blocks = [0, 2, 4, 6, 8, 10, 0, 4, 8, 2, 6, 10]
    return MemoryTrace(
        [TraceRecord(b * LINE, AccessType.WRITE) for b in blocks]
    )


corunner_traces = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=20),
        st.booleans(),
    ),
    min_size=0,
    max_size=30,
)


@given(first=corunner_traces, second=corunner_traces)
@settings(max_examples=40, deadline=None)
def test_private_core_latencies_independent_of_corunners(first, second):
    def trace_from(records, offset):
        return MemoryTrace(
            [
                TraceRecord(
                    (1000 + offset + block) * LINE,
                    AccessType.WRITE if is_write else AccessType.READ,
                )
                for block, is_write in records
            ]
        )

    baseline = simulate(config(), {0: observed_trace()})
    loaded = simulate(
        config(),
        {
            0: observed_trace(),
            1: trace_from(first, 0),
            2: trace_from(second, 500),
        },
    )
    assert not loaded.timed_out
    assert baseline.latencies(0) == loaded.latencies(0)
    assert baseline.execution_time(0) == loaded.execution_time(0)


@given(first=corunner_traces)
@settings(max_examples=25, deadline=None)
def test_shared_partition_sharers_do_not_disturb_private_core(first):
    """Even mid-storm sharers leave the private core untouched."""
    storm = MemoryTrace(
        [
            TraceRecord((2000 + i) * LINE, AccessType.WRITE)
            for i in range(40)
        ]
    )
    interferer = MemoryTrace(
        [
            TraceRecord(
                (3000 + block) * LINE,
                AccessType.WRITE if is_write else AccessType.READ,
            )
            for block, is_write in first
        ]
    )
    quiet = simulate(config(), {0: observed_trace(), 1: interferer})
    noisy = simulate(
        config(), {0: observed_trace(), 1: interferer, 2: storm}
    )
    assert quiet.latencies(0) == noisy.latencies(0)
