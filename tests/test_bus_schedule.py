"""Unit tests for TDM schedules and the distance metric (Def 4.2)."""

import pytest

from repro.bus.schedule import TdmSchedule, distance, one_slot_tdm
from repro.common.errors import ScheduleError


class TestTdmScheduleStructure:
    def test_period(self):
        schedule = TdmSchedule((0, 1, 2, 3), 50)
        assert schedule.period_slots == 4
        assert schedule.period_cycles == 200

    def test_cores(self):
        schedule = TdmSchedule((0, 1, 1), 10)
        assert schedule.cores == (0, 1)
        assert schedule.num_cores == 2

    def test_slots_of(self):
        schedule = TdmSchedule((0, 1, 1), 10)
        assert schedule.slots_of(1) == (1, 2)
        assert schedule.slots_of(0) == (0,)

    def test_is_one_slot_true(self):
        assert TdmSchedule((0, 1, 2), 10).is_one_slot

    def test_is_one_slot_false(self):
        assert not TdmSchedule((0, 1, 1), 10).is_one_slot

    def test_require_one_slot_raises_with_offenders(self):
        with pytest.raises(ScheduleError, match=r"\[1\]"):
            TdmSchedule((0, 1, 1), 10).require_one_slot()

    def test_rejects_empty(self):
        with pytest.raises(ScheduleError):
            TdmSchedule((), 10)

    def test_rejects_negative_owner(self):
        with pytest.raises(ScheduleError):
            TdmSchedule((0, -1), 10)

    def test_rejects_zero_slot_width(self):
        with pytest.raises(ScheduleError):
            TdmSchedule((0,), 0)


class TestTimeArithmetic:
    def test_owner_of_slot_wraps(self):
        schedule = TdmSchedule((0, 1, 2), 10)
        assert schedule.owner_of_slot(0) == 0
        assert schedule.owner_of_slot(4) == 1
        assert schedule.owner_of_slot(300) == 0

    def test_slot_start_end(self):
        schedule = TdmSchedule((0, 1), 50)
        assert schedule.slot_start(3) == 150
        assert schedule.slot_end(3) == 200

    def test_slot_of_cycle(self):
        schedule = TdmSchedule((0, 1), 50)
        assert schedule.slot_of_cycle(0) == 0
        assert schedule.slot_of_cycle(49) == 0
        assert schedule.slot_of_cycle(50) == 1

    def test_next_slot_of_same_phase(self):
        schedule = TdmSchedule((0, 1, 2), 10)
        assert schedule.next_slot_of(1, 1) == 1
        assert schedule.next_slot_of(1, 2) == 4

    def test_next_slot_of_wraps_period(self):
        schedule = TdmSchedule((0, 1, 2), 10)
        assert schedule.next_slot_of(0, 1) == 3

    def test_next_slot_of_multi_slot_core(self):
        schedule = TdmSchedule((0, 1, 1), 10)
        assert schedule.next_slot_of(1, 0) == 1
        assert schedule.next_slot_of(1, 2) == 2
        assert schedule.next_slot_of(1, 3) == 4

    def test_next_slot_start_boundary_inclusive(self):
        schedule = TdmSchedule((0, 1), 50)
        # Ready exactly at its slot start -> uses that slot.
        assert schedule.next_slot_start(0, 100) == 100
        # Ready one cycle in -> next period.
        assert schedule.next_slot_start(0, 101) == 200

    def test_next_slot_of_unknown_core(self):
        with pytest.raises(ScheduleError):
            TdmSchedule((0, 1), 10).next_slot_of(7, 0)

    def test_negative_inputs_rejected(self):
        schedule = TdmSchedule((0, 1), 10)
        with pytest.raises(ScheduleError):
            schedule.owner_of_slot(-1)
        with pytest.raises(ScheduleError):
            schedule.slot_start(-1)
        with pytest.raises(ScheduleError):
            schedule.slot_of_cycle(-1)

    def test_next_slot_start_rejects_negative_from_cycle(self):
        # Floor division would round -1 *down* to candidate slot -1 —
        # either a too-early answer or a confusing slot_start error —
        # so the boundary must be validated at the entry point.
        schedule = TdmSchedule((0, 1), 50)
        with pytest.raises(ScheduleError, match="next_slot_start.*non-negative"):
            schedule.next_slot_start(0, -1)

    def test_slot_end_rejects_negative_slot(self):
        with pytest.raises(ScheduleError, match="slot_end.*non-negative"):
            TdmSchedule((0, 1), 50).slot_end(-1)

    def test_next_slot_start_slot_width_boundaries(self):
        # from_cycle at 0, one before a boundary, and exactly on one:
        # the eligibility rule is "ready <= slot_start uses the slot".
        schedule = TdmSchedule((0, 1), 50)
        assert schedule.next_slot_start(1, 0) == 50
        assert schedule.next_slot_start(1, 49) == 50
        assert schedule.next_slot_start(1, 50) == 50
        assert schedule.next_slot_start(1, 51) == 150


class TestOneSlotFactory:
    def test_default_order(self):
        schedule = one_slot_tdm(4, 50)
        assert schedule.slot_owners == (0, 1, 2, 3)
        assert schedule.is_one_slot

    def test_custom_order(self):
        schedule = one_slot_tdm(3, 10, order=(2, 0, 1))
        assert schedule.slot_owners == (2, 0, 1)

    def test_rejects_non_permutation(self):
        with pytest.raises(ScheduleError):
            one_slot_tdm(3, 10, order=(0, 0, 1))

    def test_rejects_zero_cores(self):
        with pytest.raises(ScheduleError):
            one_slot_tdm(0, 10)


class TestDistance:
    """Definition 4.2 with the paper's worked example (Figure 3)."""

    def test_paper_example(self):
        # Schedule {c_ua, c2, c3, c4} with c_ua = core 0.
        schedule = one_slot_tdm(4, 50)
        assert distance(schedule, 2, 0) == 2  # d_{c_ua}^{c_3} = 2
        assert distance(schedule, 3, 0) == 1  # d_{c_ua}^{c_4} = 1

    def test_self_distance_is_period(self):
        schedule = one_slot_tdm(4, 50)
        for core in range(4):
            assert distance(schedule, core, core) == 4

    def test_corollary_4_3_bounds(self):
        # 1 <= d <= N for every pair.
        schedule = one_slot_tdm(5, 10)
        for i in range(5):
            for j in range(5):
                assert 1 <= distance(schedule, i, j) <= 5

    def test_adjacent(self):
        schedule = one_slot_tdm(4, 10)
        assert distance(schedule, 0, 1) == 1
        assert distance(schedule, 1, 2) == 1
        assert distance(schedule, 3, 0) == 1

    def test_respects_custom_order(self):
        schedule = one_slot_tdm(3, 10, order=(2, 0, 1))
        assert distance(schedule, 2, 0) == 1
        assert distance(schedule, 0, 2) == 2

    def test_requires_one_slot_schedule(self):
        with pytest.raises(ScheduleError):
            distance(TdmSchedule((0, 1, 1), 10), 0, 1)

    def test_unknown_core_rejected(self):
        with pytest.raises(ScheduleError):
            distance(one_slot_tdm(2, 10), 0, 5)
