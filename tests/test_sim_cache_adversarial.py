"""Adversarial result-cache tests: tampered entries never surface.

The threat model is disk-level damage, not just clean version skew: a
flipped byte anywhere in an entry (including ones that break UTF-8), a
write truncated mid-record, or two entries whose payloads were swapped
on disk.  Every case must be *detected* (payload digest, kind/version
stamps, embedded key, event-log fingerprint), *counted* in the
``sim_cache.corruption`` metric, *deleted*, and the run transparently
recomputed with byte-identical output — stale or tampered bytes are
never trusted.
"""

import hashlib
import json

from sim_helpers import small_config, write_trace_of

from repro.obs.collect import collect_metrics
from repro.obs.exporters import metrics_to_jsonl
from repro.sim.cache import (
    SimResultCache,
    _canonical,
    event_log_fingerprint,
    result_cache_key,
)
from repro.sim.export import report_to_dict
from repro.sim.simulator import _simulate_uncached


def _traces(blocks_of=lambda core: [core * 16 + i for i in range(6)]):
    return {core: write_trace_of(blocks_of(core)) for core in range(2)}


def _counter(cache, name):
    return cache.registry.counter(f"sim_cache.{name}").value


def _surfaces(report, config):
    """Every byte surface a recomputed report must reproduce exactly."""
    metrics = collect_metrics(report, config.slot_width)
    return (
        json.dumps(report_to_dict(report), indent=2, sort_keys=True),
        metrics_to_jsonl(metrics),
        [str(event) for event in report.events.all()],
    )


def _populated_cache(tmp_path, config, traces):
    baseline = _simulate_uncached(config, traces)
    cache = SimResultCache(tmp_path)
    path = cache.store(config, traces, None, baseline)
    cache._memo.clear()
    return cache, baseline, path


def _assert_recovers(cache, config, traces, baseline):
    """After a detected defect the run recomputes byte-identically."""
    recomputed = _simulate_uncached(config, traces)
    assert _surfaces(recomputed, config) == _surfaces(baseline, config)
    cache.store(config, traces, None, recomputed)
    cache._memo.clear()
    replayed = cache.lookup(config, traces)
    assert replayed is not None
    assert _surfaces(replayed, config) == _surfaces(baseline, config)


def test_any_flipped_byte_is_detected(tmp_path):
    config = small_config(num_cores=2, record_events=True)
    traces = _traces()
    cache, baseline, path = _populated_cache(tmp_path, config, traces)
    original = path.read_bytes()

    # Sample positions across the whole document — the integrity
    # wrapper, the payload stamps, the report body, the trailing
    # newline — plus both ends.  A flip may break UTF-8, break JSON,
    # or leave valid JSON whose digest no longer matches; all three
    # routes must land in the corruption counter.
    positions = sorted(
        {0, 1, len(original) - 2, len(original) - 1}
        | set(range(2, len(original) - 2, max(1, len(original) // 23)))
    )
    # Include a flip of the high bit, which produces invalid UTF-8
    # inside an ASCII document.
    for flips, position in enumerate(positions, start=1):
        damaged = bytearray(original)
        damaged[position] ^= 0x80 if flips % 2 else 0x01
        path.write_bytes(bytes(damaged))
        cache._memo.clear()
        assert cache.lookup(config, traces) is None, (
            f"flipping byte {position} went undetected"
        )
        assert (
            _counter(cache, "corruption") + _counter(cache, "version_mismatch")
            == flips
        )
        assert not path.exists(), "a damaged entry must be deleted"
        path.write_bytes(original)

    path.unlink()
    _assert_recovers(cache, config, traces, baseline)


def test_truncation_mid_record_is_detected(tmp_path):
    config = small_config(num_cores=2, record_events=True)
    traces = _traces()
    cache, baseline, path = _populated_cache(tmp_path, config, traces)
    original = path.read_bytes()

    cuts = [0, 1, len(original) // 3, len(original) // 2, len(original) - 2]
    for count, cut in enumerate(cuts, start=1):
        path.write_bytes(original[:cut])
        cache._memo.clear()
        assert cache.lookup(config, traces) is None, (
            f"truncation at byte {cut} went undetected"
        )
        assert _counter(cache, "corruption") == count
        assert not path.exists()
        path.write_bytes(original)

    path.unlink()
    _assert_recovers(cache, config, traces, baseline)


def test_swapped_entries_are_detected(tmp_path):
    """Two intact entries with their payloads swapped on disk.

    Each file passes the integrity digest (its bytes are internally
    consistent) — only the embedded-key check can catch that the
    *wrong result* sits under the key's filename.
    """
    config = small_config(num_cores=2, record_events=True)
    traces_a = _traces()
    traces_b = _traces(lambda core: [core * 16 + 2 * i for i in range(8)])
    baseline_a = _simulate_uncached(config, traces_a)
    baseline_b = _simulate_uncached(config, traces_b)
    cache = SimResultCache(tmp_path)
    path_a = cache.store(config, traces_a, None, baseline_a)
    path_b = cache.store(config, traces_b, None, baseline_b)
    assert path_a != path_b

    bytes_a, bytes_b = path_a.read_bytes(), path_b.read_bytes()
    path_a.write_bytes(bytes_b)
    path_b.write_bytes(bytes_a)

    cache._memo.clear()
    assert cache.lookup(config, traces_a) is None
    assert cache.lookup(config, traces_b) is None
    assert _counter(cache, "corruption") == 2
    assert not path_a.exists() and not path_b.exists()

    _assert_recovers(cache, config, traces_a, baseline_a)
    _assert_recovers(cache, config, traces_b, baseline_b)


def _rewrap(payload) -> str:
    """Re-sign a (tampered) payload with a *valid* integrity digest."""
    body = _canonical(payload)
    digest = hashlib.sha256(body.encode()).hexdigest()
    return '{"integrity":"%s","payload":%s}' % (digest, body) + "\n"


def test_resigned_event_tampering_is_caught_by_the_fingerprint(tmp_path):
    """An attacker who re-signs the outer digest still can't edit events.

    The event-log fingerprint is computed over the stored events at
    verification time, so a payload whose events were altered *and*
    whose integrity digest was recomputed to match is still rejected.
    """
    config = small_config(num_cores=2, record_events=True)
    traces = _traces()
    cache, baseline, path = _populated_cache(tmp_path, config, traces)

    document = json.loads(path.read_text())
    payload = document["payload"]
    assert payload["report"]["events"], "scenario must record events"
    payload["report"]["events"][0][0] += 1  # nudge one event's cycle
    path.write_text(_rewrap(payload))

    cache._memo.clear()
    assert cache.lookup(config, traces) is None
    assert _counter(cache, "corruption") == 1
    assert not path.exists()
    _assert_recovers(cache, config, traces, baseline)


def test_resigned_foreign_kind_is_rejected(tmp_path):
    config = small_config(num_cores=2)
    traces = _traces()
    cache, baseline, path = _populated_cache(tmp_path, config, traces)

    document = json.loads(path.read_text())
    payload = document["payload"]
    payload["kind"] = "repro-checkpoint"
    path.write_text(_rewrap(payload))

    cache._memo.clear()
    assert cache.lookup(config, traces) is None
    assert _counter(cache, "corruption") == 1
    _assert_recovers(cache, config, traces, baseline)


def test_verify_sweep_finds_the_same_defects_a_lookup_would(tmp_path):
    config = small_config(num_cores=2, record_events=True)
    traces_good = _traces()
    traces_bad = _traces(lambda core: [core * 16 + 3 * i for i in range(5)])
    cache = SimResultCache(tmp_path)
    good = cache.store(
        config, traces_good, None, _simulate_uncached(config, traces_good)
    )
    bad = cache.store(
        config, traces_bad, None, _simulate_uncached(config, traces_bad)
    )
    damaged = bytearray(bad.read_bytes())
    damaged[len(damaged) // 2] ^= 0x80  # invalid UTF-8 mid-file
    bad.write_bytes(bytes(damaged))

    ok, removed = cache.verify()
    assert ok == [good]
    assert removed == [bad]
    assert _counter(cache, "corruption") == 1
    assert not bad.exists() and good.exists()

    # The surviving entry still replays.
    cache._memo.clear()
    assert cache.lookup(config, traces_good) is not None


def test_corruption_never_counts_as_version_mismatch(tmp_path):
    """The two defect classes are counted apart (distinct remedies)."""
    config = small_config(num_cores=2)
    traces = _traces()
    cache, _, path = _populated_cache(tmp_path, config, traces)
    key = result_cache_key(config, traces)
    assert path == cache.entry_path(key)

    path.write_bytes(b"\xff\xfe not an entry")
    cache._memo.clear()
    cache.lookup(config, traces)
    assert _counter(cache, "corruption") == 1
    assert _counter(cache, "version_mismatch") == 0


def test_event_fingerprint_matches_helper(tmp_path):
    config = small_config(num_cores=2, record_events=True)
    traces = _traces()
    cache, _, path = _populated_cache(tmp_path, config, traces)
    payload = json.loads(path.read_text())["payload"]
    assert payload["event_fingerprint"] == event_log_fingerprint(
        payload["report"]["events"]
    )
