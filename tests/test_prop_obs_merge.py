"""Property tests of the metrics merge algebra.

The parallel campaign's determinism rests on one claim: registry merge
is associative and commutative (up to the canonical row order), so any
worker completion order folds to the same bytes.  These tests state the
algebra directly over generated registries; the end-to-end serial ≡
parallel check lives in test_obs_parallel.py.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, merge_all

# A fixed schema keeps generated registries merge-compatible (a name
# never changes kind or bucket width between registries, which the
# registry itself would reject as a conflict).
COUNTER_NAMES = ("core.requests", "llc.hits", "dram.reads")
GAUGE_NAMES = ("sim.makespan", "llc.hit_rate")
HISTOGRAM_NAMES = (("core.latency", 50), ("pwb.occupancy", 1))
LABEL_SETS = ({}, {"core": 0}, {"core": 1}, {"core": 0, "kind": "req"})

label_sets = st.sampled_from(LABEL_SETS)

counter_updates = st.lists(
    st.tuples(
        st.sampled_from(COUNTER_NAMES), label_sets, st.integers(0, 1_000)
    ),
    max_size=8,
)
gauge_updates = st.lists(
    st.tuples(st.sampled_from(GAUGE_NAMES), label_sets, st.integers(0, 10_000)),
    max_size=8,
)
histogram_updates = st.lists(
    st.tuples(
        st.sampled_from(HISTOGRAM_NAMES), label_sets, st.integers(0, 5_000)
    ),
    max_size=8,
)


@st.composite
def registries(draw):
    registry = MetricsRegistry()
    for name, labels, amount in draw(counter_updates):
        registry.counter(name, **labels).inc(amount)
    for name, labels, value in draw(gauge_updates):
        registry.gauge(name, **labels).set(value)
    for (name, width), labels, value in draw(histogram_updates):
        registry.histogram(name, width, **labels).observe(value)
    return registry


def rows(registry):
    return registry.rows()


@settings(max_examples=60, deadline=None)
@given(registries(), registries())
def test_merge_commutes_up_to_canonical_order(a, b):
    assert rows(a.merged(b)) == rows(b.merged(a))


@settings(max_examples=60, deadline=None)
@given(registries(), registries(), registries())
def test_merge_is_associative(a, b, c):
    assert rows(a.merged(b).merged(c)) == rows(a.merged(b.merged(c)))


@settings(max_examples=40, deadline=None)
@given(registries())
def test_empty_registry_is_the_identity(a):
    empty = MetricsRegistry()
    assert rows(a.merged(empty)) == rows(a)
    assert rows(empty.merged(a)) == rows(a)


@settings(max_examples=40, deadline=None)
@given(st.lists(registries(), max_size=5), st.randoms())
def test_merge_all_is_order_independent(parts, rng):
    baseline = rows(merge_all(parts))
    shuffled = list(parts)
    rng.shuffle(shuffled)
    assert rows(merge_all(shuffled)) == baseline


@settings(max_examples=60, deadline=None)
@given(registries(), registries())
def test_histogram_merge_conserves_buckets(a, b):
    """Merged bucket counts are the per-operand sums — nothing lost."""
    merged = a.merged(b)
    for key, metric in merged:
        if metric.kind != "histogram":
            continue
        name, labels = key
        parts = [
            part.get(name, **dict(labels))
            for part in (a, b)
            if part.get(name, **dict(labels)) is not None
        ]
        assert metric.count == sum(part.count for part in parts)
        assert sum(metric.buckets.values()) == metric.count
        assert metric.value_sum == sum(part.value_sum for part in parts)


@settings(max_examples=60, deadline=None)
@given(registries(), registries())
def test_merge_is_pure(a, b):
    before_a, before_b = rows(a), rows(b)
    a.merged(b)
    assert rows(a) == before_a
    assert rows(b) == before_b
