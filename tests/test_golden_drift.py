"""Golden-drift guard: the regeneration script must be a no-op.

``tests/golden/regen.py`` is the only sanctioned way to update the
golden fixtures, so the script itself is part of the contract: running
it against the current code must reproduce the committed bytes exactly.
If this test fails, either the simulator's output drifted (a bug or an
unflagged behaviour change) or someone edited a fixture by hand.  The
CI ``golden-drift`` step runs the same check via the command line.
"""

import subprocess
import sys
from pathlib import Path

from golden_scenarios import GOLDEN_DIR, SCENARIOS, fixture_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
REGEN = REPO_ROOT / "tests" / "golden" / "regen.py"


def _assert_matches_committed(root: Path) -> None:
    for name in sorted(SCENARIOS):
        for fresh, committed in zip(
            fixture_paths(name, root=root), fixture_paths(name)
        ):
            assert fresh.exists(), f"regen did not write {fresh.name}"
            assert fresh.read_bytes() == committed.read_bytes(), (
                f"{committed.name} drifted: regen.py no longer "
                "reproduces the committed fixture"
            )


def test_regen_reproduces_committed_fixtures(tmp_path):
    from golden.regen import regenerate

    regenerate(tmp_path)
    _assert_matches_committed(tmp_path)


def test_regen_cli_out_flag(tmp_path):
    env_path = f"{REPO_ROOT / 'src'}:{REPO_ROOT / 'tests'}"
    proc = subprocess.run(
        [sys.executable, str(REGEN), "--out", str(tmp_path)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    _assert_matches_committed(tmp_path)
    # The committed fixtures were not touched by --out.
    assert GOLDEN_DIR.exists()


def test_default_regen_targets_committed_directory():
    assert fixture_paths("fig7-ss")[0].parent == GOLDEN_DIR
