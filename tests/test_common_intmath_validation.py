"""Unit tests for integer helpers and validation utilities."""

import pytest

from repro.common.errors import ConfigurationError, ScheduleError
from repro.common.intmath import ceil_div, ilog2, is_power_of_two
from repro.common.validation import (
    require,
    require_in_range,
    require_non_negative,
    require_positive,
    require_power_of_two,
)


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 1024, 2**30])
    def test_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -1, -2, 3, 6, 12, 100])
    def test_non_powers(self, value):
        assert not is_power_of_two(value)


class TestIlog2:
    @pytest.mark.parametrize("value,expected", [(1, 0), (2, 1), (64, 6), (4096, 12)])
    def test_exact(self, value, expected):
        assert ilog2(value) == expected

    @pytest.mark.parametrize("value", [0, 3, -4])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ValueError):
            ilog2(value)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(7, 2) == 4

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    def test_negative_numerator_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 2)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_default_error(self):
        with pytest.raises(ConfigurationError, match="boom"):
            require(False, "boom")

    def test_raises_custom_error(self):
        with pytest.raises(ScheduleError):
            require(False, "boom", ScheduleError)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(3, "x") == 3

    @pytest.mark.parametrize("value", [0, -1])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ConfigurationError):
            require_positive(value, "x")

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            require_positive(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            require_positive(1.5, "x")

    def test_error_names_parameter(self):
        with pytest.raises(ConfigurationError, match="num_sets"):
            require_positive(0, "num_sets")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_non_negative(-1, "x")


class TestRequirePowerOfTwo:
    def test_accepts(self):
        assert require_power_of_two(16, "x") == 16

    def test_rejects(self):
        with pytest.raises(ConfigurationError):
            require_power_of_two(12, "x")


class TestRequireInRange:
    def test_accepts_bounds(self):
        assert require_in_range(1, 1, 5, "x") == 1
        assert require_in_range(5, 1, 5, "x") == 5

    @pytest.mark.parametrize("value", [0, 6])
    def test_rejects_outside(self, value):
        with pytest.raises(ConfigurationError):
            require_in_range(value, 1, 5, "x")

    def test_rejects_non_int(self):
        with pytest.raises(ConfigurationError):
            require_in_range("3", 1, 5, "x")
