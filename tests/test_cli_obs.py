"""CLI observability tests: stats subcommand, --metrics flag, error paths."""

import json

import pytest

from repro.cli import main


class TestStatsCommand:
    def test_prints_metric_table(self, capsys):
        assert main(["stats", "--requests", "40"]) == 0
        out = capsys.readouterr().out
        assert "sim.slots.total" in out
        assert "core.latency{" in out
        assert "llc.hit_rate" in out

    def test_metrics_export(self, tmp_path, capsys):
        target = tmp_path / "metrics.jsonl"
        assert main(
            ["stats", "P(1,16)", "--requests", "40", "--metrics", str(target)]
        ) == 0
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        assert any(row["name"] == "sim.slots.total" for row in rows)
        assert f"metrics written to {target}" in capsys.readouterr().out

    def test_trace_export(self, tmp_path, capsys):
        target = tmp_path / "trace.jsonl"
        assert main(
            ["stats", "--requests", "40", "--trace", str(target)]
        ) == 0
        lines = target.read_text().splitlines()
        assert lines, "trace file is empty"
        assert json.loads(lines[0])["kind"]
        assert f"{len(lines)} events traced to {target}" in capsys.readouterr().out

    def test_record_metrics_adds_occupancy_series(self, capsys):
        assert main(["stats", "--requests", "40", "--record-metrics"]) == 0
        out = capsys.readouterr().out
        assert "pwb.occupancy{" in out
        assert "prb.occupancy{" in out

    def test_bad_trace_path_is_a_usage_error(self, tmp_path, capsys):
        target = tmp_path / "missing" / "trace.jsonl"
        assert main(["stats", "--requests", "40", "--trace", str(target)]) == 2
        assert "cannot open trace sink" in capsys.readouterr().err


class TestMetricsFlag:
    def test_simulate_single_run_metrics(self, tmp_path):
        target = tmp_path / "m.csv"
        assert main([
            "simulate", "P(1,16)", "--suite", "fig7",
            "--requests", "40", "--metrics", str(target),
        ]) == 0
        assert target.read_text().startswith("name,labels,type,field,value")

    def test_simulate_sweep_metrics_aggregate_by_seed(self, tmp_path):
        target = tmp_path / "m.jsonl"
        assert main([
            "simulate", "P(1,16)", "--suite", "fig7", "--requests", "30",
            "--seeds", "1", "2", "--metrics", str(target),
        ]) == 0
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        seeds = {row["labels"].get("seed") for row in rows}
        assert seeds == {"1", "2"}

    def test_fig7_metrics_prometheus(self, tmp_path):
        target = tmp_path / "m.prom"
        assert main(["fig7", "--requests", "40", "--metrics", str(target)]) == 0
        text = target.read_text()
        assert "# TYPE repro_core_latency histogram" in text
        assert 'config="SS(1,16,4)"' in text

    def test_compare_metrics(self, tmp_path):
        target = tmp_path / "m.jsonl"
        assert main([
            "compare", "SS(1,16,4)", "P(1,16)",
            "--requests", "30", "--metrics", str(target),
        ]) == 0
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        configs = {row["labels"].get("config") for row in rows}
        assert configs == {"SS(1,16,4)", "P(1,16)"}


class TestErrorPaths:
    def test_unsupported_suffix_is_a_usage_error(self, tmp_path, capsys):
        assert main([
            "simulate", "P(1,16)", "--suite", "fig7",
            "--requests", "30", "--metrics", str(tmp_path / "m.xyz"),
        ]) == 2
        assert "unsupported metrics format" in capsys.readouterr().err

    def test_missing_parent_dir_is_a_usage_error(self, tmp_path, capsys):
        assert main([
            "simulate", "P(1,16)", "--suite", "fig7", "--requests", "30",
            "--metrics", str(tmp_path / "no" / "m.jsonl"),
        ]) == 2
        assert "cannot write metrics" in capsys.readouterr().err

    def test_seeds_conflict_with_json_export(self, tmp_path, capsys):
        assert main([
            "simulate", "P(1,16)", "--suite", "fig7", "--requests", "30",
            "--seeds", "1", "2", "--json", str(tmp_path / "r.json"),
        ]) == 2
        err = capsys.readouterr().err
        assert "--json" in err and "--seeds" in err

    def test_seeds_conflict_with_csv_export(self, tmp_path, capsys):
        assert main([
            "simulate", "P(1,16)", "--suite", "fig7", "--requests", "30",
            "--seeds", "1", "--csv", str(tmp_path / "r.csv"),
        ]) == 2
        assert "--csv" in capsys.readouterr().err

    def test_empty_seed_sweep_is_a_usage_error(self):
        # nargs="+" makes a bare --seeds an argparse usage error.
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "P(1,16)", "--seeds"])
        assert excinfo.value.code == 2
