"""Property-based test of the LLC entry lifecycle against a mirror model.

Drives the :class:`PartitionedLlc` with random—but protocol-legal—
operation sequences while a plain-dict mirror tracks what *should* be
resident, pending and owned.  Catches lifecycle bugs (double frees,
stale indexes, lost owners) that scripted tests can miss.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import EntryState
from repro.llc.llc import PartitionedLlc, WritebackOutcome
from repro.llc.partition import PartitionMap, PartitionSpec

CORES = (0, 1)
WAYS = 2
BLOCKS = list(range(8))


def make_llc():
    partition = PartitionSpec("shared", [0], (0, WAYS), CORES)
    return PartitionedLlc(1, WAYS, PartitionMap([partition], 1, WAYS))


operations = st.lists(
    st.tuples(
        st.sampled_from(["request", "writeback"]),
        st.sampled_from(CORES),
        st.sampled_from(BLOCKS),
    ),
    min_size=1,
    max_size=150,
)


class Mirror:
    """What the LLC should contain, tracked independently."""

    def __init__(self) -> None:
        self.valid: dict[int, set] = {}     # block -> owners
        self.pending: dict[int, set] = {}   # block -> awaited writers
        self.free = WAYS


@given(ops=operations)
@settings(max_examples=100)
def test_lifecycle_matches_mirror(ops):
    llc = make_llc()
    mirror = Mirror()
    for op, core, block in ops:
        if op == "request":
            if block in mirror.pending:
                continue  # own-block-pending: the engine would wait
            if llc.lookup(core, block) is not None:
                assert block in mirror.valid
                llc.add_owner(core, block)
                mirror.valid[block].add(core)
                continue
            assert block not in mirror.valid
            if mirror.free == 0:
                victim = llc.choose_victim(core, block)
                if victim is None:
                    continue  # everything pending; a real engine waits
                owners = set(victim.owners)
                freed = llc.begin_eviction(victim, dirty_owners=owners)
                assert victim.block in mirror.valid
                del mirror.valid[victim.block]
                if owners:
                    assert not freed
                    mirror.pending[victim.block] = owners
                else:
                    assert freed
                    mirror.free += 1
            if mirror.free > 0:
                llc.allocate(core, block)
                mirror.valid[block] = {core}
                mirror.free -= 1
        else:  # writeback
            outcome = llc.complete_writeback(core, block)
            if block in mirror.pending and core in mirror.pending[block]:
                mirror.pending[block].discard(core)
                if mirror.pending[block]:
                    assert outcome is WritebackOutcome.PENDING
                else:
                    assert outcome is WritebackOutcome.FREED
                    del mirror.pending[block]
                    mirror.free += 1
            elif block in mirror.valid:
                assert outcome is WritebackOutcome.UPDATED
            else:
                assert outcome is WritebackOutcome.DRAM_DIRECT

        # Mirror and LLC agree after every step.
        llc.validate()
        assert llc.occupancy() == len(mirror.valid)
        assert llc.pending_evictions() == len(mirror.pending)
        assert sorted(llc.resident_blocks()) == sorted(mirror.valid)
        for resident, owners in mirror.valid.items():
            assert llc.directory.owners_of(resident) == frozenset(owners)


@given(ops=operations)
@settings(max_examples=50)
def test_states_partition_the_ways(ops):
    """FREE + VALID + PENDING always account for every way."""
    llc = make_llc()
    for op, core, block in ops:
        if op == "request" and llc.probe(core, block) is None:
            if llc.block_is_pending(block):
                continue
            if llc.free_entry(core, block) is None:
                victim = llc.choose_victim(core, block)
                if victim is not None:
                    llc.begin_eviction(victim, dirty_owners=set(victim.owners))
            if llc.free_entry(core, block) is not None:
                llc.allocate(core, block)
        elif op == "writeback":
            llc.complete_writeback(core, block)
        states = [llc.entry(0, way).state for way in range(WAYS)]
        assert len(states) == WAYS
        assert all(isinstance(state, EntryState) for state in states)
        assert (
            llc.occupancy() + llc.pending_evictions()
            + sum(1 for s in states if s is EntryState.FREE)
            == WAYS
        )
