"""Edge-case tests for the engine, configuration corners and failure paths."""

import dataclasses

import pytest

from repro.bus.arbiter import ArbitrationPolicy
from repro.bus.schedule import TdmSchedule
from repro.common.errors import ConfigurationError
from repro.sim.simulator import Simulator, simulate
from repro.workloads.adversarial import conflict_storm_traces
from repro.workloads.trace import MemoryTrace

from sim_helpers import (
    private_partitions,
    read_trace_of,
    shared_partition,
    small_config,
    write_trace_of,
)


class TestTimedOutRuns:
    def test_slot_cap_reports_timeout(self):
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=1)],
            llc_sets=1,
            llc_ways=1,
            arbitration=ArbitrationPolicy.REQUEST_FIRST,  # livelocks
            max_slots=500,
        )
        traces = {0: write_trace_of([0, 2, 4]), 1: write_trace_of([1, 3, 5])}
        report = simulate(config, traces)
        assert report.timed_out
        assert report.total_slots == 500
        assert report.starved_cores()

    def test_starved_core_report_fields(self):
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=1)],
            llc_sets=1,
            llc_ways=1,
            arbitration=ArbitrationPolicy.REQUEST_FIRST,
            max_slots=300,
        )
        traces = {0: write_trace_of([0, 2]), 1: write_trace_of([1, 3])}
        report = simulate(config, traces)
        for core in report.starved_cores():
            core_report = report.core_reports[core]
            assert core_report.outstanding_block is not None
            assert core_report.outstanding_attempts > 0
            assert not core_report.completed

    def test_execution_time_of_unfinished_core_raises(self):
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=1)],
            llc_sets=1,
            llc_ways=1,
            arbitration=ArbitrationPolicy.REQUEST_FIRST,
            max_slots=300,
        )
        traces = {0: write_trace_of([0, 2]), 1: write_trace_of([1, 3])}
        report = simulate(config, traces)
        starved = report.starved_cores()[0]
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError):
            report.execution_time(starved)


class TestDrainBehaviour:
    def test_drain_disabled_leaves_pwb_entries(self):
        config = dataclasses.replace(
            small_config(
                num_cores=2,
                partitions=[shared_partition(2, ways=1)],
                llc_sets=1,
                llc_ways=1,
            ),
            drain_writebacks=False,
        )
        # Core 1's line gets evicted for core 0 and its write-back may
        # still be queued when both traces end.
        traces = {1: write_trace_of([0]), 0: write_trace_of([2])}
        sim = Simulator(config, traces, start_cycles={0: 60})
        # Do not run the facade's inclusivity check: with draining off,
        # the run legitimately ends with in-flight write-backs.
        report = sim.engine.run()
        assert not report.timed_out

    def test_drain_enabled_empties_pwbs(self):
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=1)],
            llc_sets=1,
            llc_ways=1,
        )
        traces = {1: write_trace_of([0]), 0: write_trace_of([2])}
        sim = Simulator(config, traces, start_cycles={0: 60})
        sim.run()
        assert all(pwb.is_empty for pwb in sim.system.pwbs.values())


class TestScheduleVariants:
    def test_non_1s_tdm_with_private_partitions_is_fine(self):
        """Multi-slot schedules only endanger *shared* partitions."""
        config = small_config(
            num_cores=2,
            partitions=private_partitions(2, sets_per_core=1, ways=4),
            llc_sets=2,
            llc_ways=4,
            schedule=TdmSchedule((0, 1, 1), 50),
        )
        traces = {0: write_trace_of([0, 2, 4]), 1: write_trace_of([1, 3, 5])}
        report = simulate(config, traces)
        assert not report.timed_out
        assert report.starved_cores() == []

    def test_unfair_schedule_speeds_up_favoured_core(self):
        fair = small_config(
            num_cores=2,
            partitions=private_partitions(2, sets_per_core=1, ways=4),
            llc_sets=2,
            llc_ways=4,
        )
        unfair = small_config(
            num_cores=2,
            partitions=private_partitions(2, sets_per_core=1, ways=4),
            llc_sets=2,
            llc_ways=4,
            schedule=TdmSchedule((0, 0, 0, 1), 50),
        )
        traces = {0: write_trace_of(list(range(0, 40, 2))), 1: write_trace_of([1])}
        fair_time = simulate(fair, traces).execution_time(0)
        unfair_time = simulate(unfair, traces).execution_time(0)
        assert unfair_time < fair_time

    def test_permuted_slot_order_changes_nothing_for_private(self):
        base = small_config(
            num_cores=3,
            partitions=private_partitions(3, sets_per_core=1, ways=4),
            llc_sets=3,
            llc_ways=4,
        )
        permuted = dataclasses.replace(base, schedule_order=(2, 0, 1))
        traces = {core: write_trace_of([core]) for core in range(3)}
        first = simulate(base, traces)
        second = simulate(permuted, traces)
        # Completion still happens for everyone; latencies shift by at
        # most one period because only the phase changed.
        for core in range(3):
            delta = abs(
                first.execution_time(core) - second.execution_time(core)
            )
            assert delta <= base.period_cycles


class TestMixedAccessTypes:
    def test_instruction_fetches_flow_through(self):
        from repro.common.types import AccessType
        from sim_helpers import trace_of_blocks

        config = small_config(
            num_cores=1,
            partitions=[shared_partition(1, ways=4)],
            llc_sets=1,
            llc_ways=4,
        )
        trace = trace_of_blocks([0, 1, 0, 1], access=AccessType.INSTR)
        report = simulate(config, {0: trace})
        assert report.core_reports[0].completed
        # Instruction lines are clean: no DRAM write-backs at all.
        assert report.dram_writes == 0

    def test_reads_produce_no_writebacks(self):
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=1)],
            llc_sets=1,
            llc_ways=1,
        )
        traces = {0: read_trace_of([0, 2, 4]), 1: read_trace_of([1, 3, 5])}
        report = simulate(config, traces)
        assert report.dram_writes == 0
        assert report.llc_back_invalidations == 0

    def test_empty_system_zero_slots(self):
        config = small_config(num_cores=2)
        report = simulate(config, {})
        assert report.total_slots == 0
        assert report.makespan == 0


class TestRecordEventsOff:
    def test_no_events_recorded_but_results_identical(self):
        traces = conflict_storm_traces(
            cores=[0, 1], partition_sets=1, lines_per_core=6, repeats=5
        )
        base = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=2)],
            llc_sets=1,
            llc_ways=2,
        )
        with_events = simulate(base, traces)
        without_events = simulate(
            dataclasses.replace(base, record_events=False), traces
        )
        assert len(without_events.events) == 0
        assert with_events.makespan == without_events.makespan
        assert with_events.observed_wcl() == without_events.observed_wcl()
