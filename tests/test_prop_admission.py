"""Property-based tests of the admission planner."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.admission import PlatformSpec, TaskSpec, plan_admission
from repro.llc.partition import PartitionMap

PLATFORM = PlatformSpec(num_cores=8, llc_sets=32, llc_ways=16, slot_width=50)


def tasksets():
    task = st.tuples(
        st.integers(min_value=100, max_value=100_000),   # budget
        st.integers(min_value=64, max_value=64_000),     # footprint
        st.booleans(),                                   # allow sharing
    )
    return st.lists(task, min_size=1, max_size=8).map(
        lambda raw: [
            TaskSpec(
                name=f"t{core}",
                core=core,
                latency_budget_cycles=budget,
                footprint_bytes=footprint,
                allow_sharing=sharing,
            )
            for core, (budget, footprint, sharing) in enumerate(raw)
        ]
    )


@given(tasks=tasksets())
@settings(max_examples=80)
def test_plan_always_fits_the_llc(tasks):
    plan = plan_admission(tasks, PLATFORM)
    assert plan.sets_used <= PLATFORM.llc_sets
    assert all(partition.num_sets >= 1 for partition in plan.partitions)


@given(tasks=tasksets())
@settings(max_examples=80)
def test_partitions_are_a_valid_disjoint_map(tasks):
    plan = plan_admission(tasks, PLATFORM)
    # PartitionMap's constructor enforces disjointness and coverage.
    pmap = PartitionMap(plan.partitions, PLATFORM.llc_sets, PLATFORM.llc_ways)
    assert set(pmap.cores) == {task.core for task in tasks}


@given(tasks=tasksets())
@settings(max_examples=80)
def test_every_task_has_a_verdict(tasks):
    plan = plan_admission(tasks, PLATFORM)
    assert set(plan.verdicts) == {task.name for task in tasks}


@given(tasks=tasksets())
@settings(max_examples=80)
def test_isolation_requests_honoured(tasks):
    plan = plan_admission(tasks, PLATFORM)
    for task in tasks:
        if not task.allow_sharing:
            assert plan.verdicts[task.name].shared_with == ()


@given(tasks=tasksets())
@settings(max_examples=80)
def test_admitted_tasks_really_fit_their_budget(tasks):
    plan = plan_admission(tasks, PLATFORM)
    for verdict in plan.verdicts.values():
        if verdict.admitted:
            assert verdict.bound_cycles <= verdict.task.latency_budget_cycles
        else:
            assert verdict.bound_cycles > verdict.task.latency_budget_cycles


@given(tasks=tasksets())
@settings(max_examples=80)
def test_feasibility_matches_verdicts(tasks):
    plan = plan_admission(tasks, PLATFORM)
    assert plan.feasible == all(v.admitted for v in plan.verdicts.values())


@given(tasks=tasksets())
@settings(max_examples=40)
def test_shared_partitions_have_sequencers(tasks):
    plan = plan_admission(tasks, PLATFORM)
    for partition in plan.partitions:
        if partition.is_shared:
            assert partition.sequencer
        else:
            assert not partition.sequencer
